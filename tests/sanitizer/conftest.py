"""Sanitizer tests install and configure sanitizers explicitly.

A ``REPRO_SANITIZE``/``REPRO_ORACLE`` set in the outer environment (e.g.
the CI job that runs the whole suite with checkers on) would auto-install
a sanitizer on every machine these tests build, tripping the
double-install guard — so the environment is cleared here and individual
tests opt back in via monkeypatch.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _pristine_sanitizer_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_ORACLE", raising=False)
