"""State fingerprinting: determinism, sensitivity, and parallel == serial."""

from __future__ import annotations

import os

import pytest

from repro.config import skylake_i7_6700k
from repro.errors import InvariantViolation
from repro.experiments.runner import derive_seeds, run_trials
from repro.sanitizer import capture_state, fingerprint_state, machine_fingerprint
from repro.system.machine import Machine


def build_touched(seed: int, accesses: int = 24) -> Machine:
    machine = Machine(skylake_i7_6700k(seed=seed))
    for index in range(accesses):
        machine.hierarchy.access(index % machine.config.cores, 0x40000 + index * 64)
        machine.mee.access(machine.physical.protected_base + index * 512)
    return machine


def _fingerprint_trial(seed: int) -> dict:
    """Module-level so pool workers can import it."""
    return {"seed": seed, "fingerprint": build_touched(seed).fingerprint()}


def _pid_stamped_trial(seed: int) -> dict:
    """Deliberately process-dependent — parallel and serial runs differ."""
    return {"seed": seed, "fingerprint": os.getpid()}


class TestFingerprintBasics:
    def test_same_seed_same_fingerprint(self):
        assert build_touched(3).fingerprint() == build_touched(3).fingerprint()

    def test_different_seed_differs(self):
        assert build_touched(3).fingerprint() != build_touched(4).fingerprint()

    def test_different_history_differs(self):
        assert (
            build_touched(3, accesses=24).fingerprint()
            != build_touched(3, accesses=25).fingerprint()
        )

    def test_fingerprint_is_pure(self):
        machine = build_touched(9)
        assert machine.fingerprint() == machine.fingerprint()

    def test_matches_module_level_function(self):
        machine = build_touched(5)
        assert machine.fingerprint() == machine_fingerprint(machine)

    def test_state_dict_is_canonical(self):
        machine = build_touched(5)
        assert fingerprint_state(capture_state(machine)) == machine.fingerprint()

    def test_unencodable_state_rejected(self):
        with pytest.raises(TypeError):
            fingerprint_state({"bad": object()})


class TestParallelEqualsSerial:
    """Acceptance: REPRO_JOBS=4 fingerprints are identical to serial."""

    def test_pool_trials_match_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        seeds = derive_seeds(2024, 6)
        parallel = run_trials(_fingerprint_trial, seeds)
        serial = [_fingerprint_trial(seed) for seed in seeds]
        assert parallel == serial

    def test_verify_fingerprints_passes_on_deterministic_trials(self):
        seeds = derive_seeds(2024, 4)
        results = run_trials(
            _fingerprint_trial, seeds, jobs=4, verify_fingerprints=True
        )
        assert [r["seed"] for r in results] == seeds

    def test_verify_fingerprints_catches_divergence(self):
        with pytest.raises(InvariantViolation) as excinfo:
            run_trials(
                _pid_stamped_trial,
                derive_seeds(7, 4),
                jobs=2,
                verify_fingerprints=True,
            )
        assert excinfo.value.checker == "fingerprint"

    def test_verify_is_a_no_op_when_serial(self):
        seeds = derive_seeds(7, 3)
        # Serial execution *is* the reference; nothing to cross-check.
        results = run_trials(_pid_stamped_trial, seeds, jobs=1, verify_fingerprints=True)
        assert len(results) == 3
