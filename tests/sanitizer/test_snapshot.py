"""Snapshot/restore: versioning, corruption detection, crash-resume."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import skylake_i7_6700k
from repro.errors import SnapshotError
from repro.experiments.runner import run_trials_robust, TrialFailure
from repro.sanitizer import (
    SNAPSHOT_VERSION,
    MachineSnapshot,
    attach_differential_oracle,
)
from repro.system.machine import Machine


def build_machine(seed: int = 42) -> Machine:
    return Machine(skylake_i7_6700k(seed=seed))


def touch(machine: Machine, index: int) -> None:
    """One deterministic unit of architectural mutation."""
    machine.hierarchy.access(index % machine.config.cores, 0x20000 + index * 64)
    machine.mee.access(
        machine.physical.protected_base + (index * 512) % (1 << 20),
        write=index % 4 == 0,
    )


class TestSnapshotRoundtrip:
    def test_restore_reproduces_fingerprint(self):
        source = build_machine()
        for index in range(40):
            touch(source, index)
        snapshot = source.save_state()
        target = build_machine()
        target.load_state(snapshot)
        assert target.fingerprint() == source.fingerprint()

    def test_restore_then_identical_future(self):
        # The real acceptance property: a restored machine doesn't just
        # look identical, it *behaves* identically from there on.
        source = build_machine()
        for index in range(30):
            touch(source, index)
        snapshot = source.save_state()
        target = build_machine()
        target.load_state(snapshot)
        for index in range(30, 60):
            touch(source, index)
            touch(target, index)
        assert target.fingerprint() == source.fingerprint()

    def test_snapshot_survives_json(self):
        source = build_machine()
        for index in range(20):
            touch(source, index)
        wire = json.dumps(source.save_state().to_dict())
        target = build_machine()
        target.load_state(json.loads(wire))
        assert target.fingerprint() == source.fingerprint()

    def test_snapshot_metadata(self):
        snapshot = build_machine(seed=9).save_state()
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.seed == 9
        assert snapshot.to_dict()["__machine_snapshot__"] is True


class TestSnapshotRejection:
    def test_version_mismatch(self):
        machine = build_machine()
        snapshot = dataclasses.replace(machine.save_state(), version=99)
        with pytest.raises(SnapshotError, match="version"):
            machine.load_state(snapshot)

    def test_seed_mismatch(self):
        snapshot = build_machine(seed=1).save_state()
        with pytest.raises(SnapshotError, match="seed"):
            build_machine(seed=2).load_state(snapshot)

    def test_corrupt_payload_caught_by_fingerprint(self):
        source = build_machine()
        for index in range(20):
            touch(source, index)
        data = source.save_state().to_dict()
        # Flip one counter deep inside the payload; the schema stays valid
        # so only the fingerprint check can catch it.
        data["state"]["scheduler"]["total_ops"] += 1
        with pytest.raises(SnapshotError, match="fingerprint"):
            build_machine().load_state(data)

    def test_malformed_payload(self):
        machine = build_machine()
        with pytest.raises(SnapshotError):
            machine.load_state({"__machine_snapshot__": True, "version": 1})
        with pytest.raises(SnapshotError):
            MachineSnapshot.from_dict("not a dict")

    def test_oracle_machine_refused(self):
        machine = build_machine()
        snapshot = machine.save_state()
        shadowed = build_machine()
        attach_differential_oracle(shadowed)
        with pytest.raises(SnapshotError, match="oracle"):
            shadowed.load_state(snapshot)


# -- crash-resume through run_trials_robust ---------------------------------

TRIAL_UNITS = 36
CRASH_AT = 20


def _resumable_trial(seed: int, snapshot=None) -> dict:
    """A chunked trial that checkpoints mid-way and dies on first attempt.

    With no slot (reference mode) it just runs to completion.  With a slot
    it saves a machine snapshot at unit CRASH_AT and crashes; the retry
    finds the slot, rebuilds the machine from the seed, restores, and
    finishes only the remaining units.
    """
    machine = build_machine(seed=seed)
    start = 0
    payload = snapshot.load() if snapshot is not None else None
    if payload is not None:
        machine.load_state(payload)
        start = payload["progress"]["next_unit"]
    for index in range(start, TRIAL_UNITS):
        touch(machine, index)
        if index + 1 == CRASH_AT and snapshot is not None and payload is None:
            snapshot.save(machine.save_state(), progress={"next_unit": index + 1})
            raise RuntimeError("simulated mid-trial crash")
    return {"seed": seed, "fingerprint": machine.fingerprint(), "resumed": start > 0}


class TestCrashResume:
    def test_killed_trial_resumes_to_bit_identical_result(self, tmp_path):
        seeds = [101, 202]
        results = run_trials_robust(
            _resumable_trial,
            seeds,
            jobs=1,
            max_attempts=2,
            snapshot_dir=str(tmp_path),
        )
        reference = [_resumable_trial(seed) for seed in seeds]
        for got, want in zip(results, reference):
            assert not isinstance(got, TrialFailure)
            assert got["resumed"], "retry did not use the snapshot"
            assert got["fingerprint"] == want["fingerprint"]
        # Completed trials clear their slots.
        assert list(tmp_path.glob("trial-*.json")) == []

    def test_corrupt_slot_restarts_from_scratch(self, tmp_path):
        slot_path = tmp_path / "trial-0000-101.json"
        slot_path.write_text('{"__machine_snapshot__": true, "ver')
        with pytest.warns(RuntimeWarning, match="truncated"):
            [result] = run_trials_robust(
                _resumable_trial,
                [101],
                jobs=1,
                max_attempts=2,
                snapshot_dir=str(tmp_path),
            )
        assert result["fingerprint"] == _resumable_trial(101)["fingerprint"]

    def test_snapshot_dir_requires_snapshot_parameter(self, tmp_path):
        def no_snapshot_kwarg(seed):
            return seed

        with pytest.raises(ValueError, match="snapshot"):
            run_trials_robust(
                no_snapshot_kwarg, [1], jobs=1, snapshot_dir=str(tmp_path)
            )
