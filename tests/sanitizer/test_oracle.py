"""Differential oracle: reference model, live shadowing, trace replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheGeometry, skylake_i7_6700k
from repro.errors import ConfigurationError, OracleDivergence, SimulationError
from repro.sanitizer import (
    DifferentialCache,
    ReferenceCache,
    attach_differential_oracle,
    replay_trace,
)
from repro.system.machine import Machine

GEOMETRY = CacheGeometry(size_bytes=8 * 64 * 4, ways=4, line_bytes=64, policy="lru")


def address_stream(seed: int, count: int = 400, footprint: int = 64):
    rng = np.random.default_rng(seed)
    return [int(addr) * 64 for addr in rng.integers(0, footprint, size=count)]


class TestReferenceCache:
    def test_miss_then_hit(self):
        reference = ReferenceCache(GEOMETRY)
        hit, evicted = reference.access(0x1000)
        assert not hit and evicted is None
        hit, _ = reference.access(0x1040)
        assert not hit
        assert reference.access(0x1000) == (True, None)
        assert reference.probe(0x1000)
        assert len(reference) == 2

    def test_eviction_returns_victim(self):
        reference = ReferenceCache(GEOMETRY)
        set_span = GEOMETRY.num_sets * GEOMETRY.line_bytes
        lines = [way * set_span for way in range(GEOMETRY.ways + 1)]
        for line in lines[:-1]:
            reference.access(line)
        hit, evicted = reference.access(lines[-1])
        assert not hit
        assert evicted == lines[0]  # LRU victim

    def test_invalidate_and_clear(self):
        reference = ReferenceCache(GEOMETRY)
        reference.access(0x1000)
        assert reference.invalidate(0x1000)
        assert not reference.invalidate(0x1000)
        reference.access(0x1000)
        reference.clear()
        assert len(reference) == 0

    def test_random_policy_refused(self):
        with pytest.raises(ConfigurationError):
            ReferenceCache(
                CacheGeometry(size_bytes=8 * 64 * 4, ways=4, policy="random")
            )


class TestDifferentialCache:
    @pytest.mark.parametrize("policy", ["lru", "plru", "rrip"])
    def test_mixed_workload_never_diverges(self, policy):
        geometry = CacheGeometry(size_bytes=8 * 64 * 4, ways=4, policy=policy)
        cache = DifferentialCache(geometry)
        rng = np.random.default_rng(17)
        for addr in address_stream(17):
            op = rng.integers(0, 5)
            if op == 0:
                cache.probe(addr)
            elif op == 1:
                cache.fill(addr)
            elif op == 2:
                cache.invalidate(addr)
            elif op == 3 and rng.integers(0, 40) == 0:
                cache.clear()
            else:
                cache.access(addr)
        assert cache.ops_checked > 300

    def test_seeded_divergence_is_caught(self):
        cache = DifferentialCache(GEOMETRY, name="llc")
        cache.access(0x1000)
        # Corrupt the *reference* side so the next probe disagrees.
        cache._ref.invalidate(0x1000)
        with pytest.raises(OracleDivergence) as excinfo:
            cache.probe(0x1000)
        assert excinfo.value.checker == "oracle"
        assert excinfo.value.dump["cache"] == "llc"
        assert excinfo.value.dump["op"] == "probe"

    def test_divergence_is_an_invariant_violation(self):
        from repro.errors import InvariantViolation

        assert issubclass(OracleDivergence, InvariantViolation)


class TestTraceReplay:
    def test_recorded_trace_replays_clean(self):
        cache = DifferentialCache(GEOMETRY, record_trace=True)
        for addr in address_stream(23, count=200):
            cache.access(addr)
        cache.clear()
        for addr in address_stream(24, count=50):
            cache.access(addr)
        assert replay_trace(GEOMETRY, cache.trace) == []

    def test_tampered_trace_reports_divergence(self):
        cache = DifferentialCache(GEOMETRY, record_trace=True)
        for addr in address_stream(23, count=50):
            cache.access(addr)
        op, addr, (hit, evicted) = cache.trace[10]
        cache.trace[10] = (op, addr, (not hit, evicted))
        divergences = replay_trace(GEOMETRY, cache.trace)
        assert [d["index"] for d in divergences] == [10]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(GEOMETRY, [("defrag", 0x1000, None)])


class TestMachineAttachment:
    def test_attach_replaces_every_cache(self):
        machine = Machine(skylake_i7_6700k(seed=6))
        attach_differential_oracle(machine)
        for cache in (*machine.hierarchy.l1, *machine.hierarchy.l2):
            assert isinstance(cache, DifferentialCache)
        assert isinstance(machine.hierarchy.llc, DifferentialCache)
        assert isinstance(machine.mee.cache, DifferentialCache)

    def test_shadowed_machine_runs_clean(self):
        machine = Machine(skylake_i7_6700k(seed=6))
        attach_differential_oracle(machine)
        for index in range(64):
            machine.hierarchy.access(index % machine.config.cores, 0x7000 + index * 64)
            machine.mee.access(machine.physical.protected_base + index * 512)
        assert machine.hierarchy.llc.ops_checked > 0
        assert machine.mee.cache.ops_checked > 0

    def test_used_machine_refused(self):
        machine = Machine(skylake_i7_6700k(seed=6))
        machine.hierarchy.access(0, 0x1000)
        with pytest.raises(SimulationError):
            attach_differential_oracle(machine)

    def test_oracle_env_installs_on_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "1")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        machine = Machine(skylake_i7_6700k(seed=6))
        assert isinstance(machine.hierarchy.llc, DifferentialCache)
