"""The invariant engine: configuration, cadences, and seeded corruptions.

The mutation tests are the sanitizer's own test oracle: each one corrupts
exactly one structure (a cache tag, a tree counter, a clock, ...) and
asserts the *corresponding* checker fires with a typed
:class:`InvariantViolation` — proving the checkers detect real damage,
not just that they pass on healthy machines.
"""

from __future__ import annotations

import pytest

from repro.config import skylake_i7_6700k
from repro.errors import InvariantViolation, SimulationError
from repro.sanitizer import Sanitizer, SanitizerConfig
from repro.sanitizer.invariants import SANITIZE_ENV_VAR
from repro.sim.ops import Busy, Label
from repro.system.machine import Machine
from repro.units import PAGE_SIZE


def touched_machine(seed: int = 77) -> Machine:
    """A machine with populated caches, holder map, and MEE tree."""
    machine = Machine(skylake_i7_6700k(seed=seed))
    for index in range(32):
        machine.hierarchy.access(index % machine.config.cores, 0x10000 + index * 64)
    base = machine.physical.protected_base
    for index in range(16):
        machine.mee.access(base + index * 512, write=index % 3 == 0)
    return machine


def first_populated_set(cache):
    for set_index, tags, lookup, policy in cache.iter_set_states():
        if lookup:
            return set_index, tags, lookup, policy
    raise AssertionError("cache is empty")


class TestConfigFromEnvironment:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        assert SanitizerConfig.from_environment() is None

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "0")
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        assert SanitizerConfig.from_environment() is None

    def test_one_enables_phase_boundaries_only(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        config = SanitizerConfig.from_environment()
        assert config.phase_boundaries
        assert config.every_n_events is None
        assert not config.differential_oracle

    def test_integer_sets_event_cadence(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "5000")
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        config = SanitizerConfig.from_environment()
        assert config.every_n_events == 5000

    def test_oracle_env(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        monkeypatch.setenv("REPRO_ORACLE", "1")
        config = SanitizerConfig.from_environment()
        assert config.differential_oracle

    def test_unknown_checker_rejected(self, machine):
        with pytest.raises(ValueError):
            Sanitizer(machine, SanitizerConfig(checkers=("cache", "vibes")))

    def test_nonpositive_cadence_rejected(self, machine):
        with pytest.raises(ValueError):
            Sanitizer(machine, SanitizerConfig(every_n_events=0))


class TestCleanMachines:
    def test_fresh_machine_passes_all_checkers(self, machine):
        assert Sanitizer(machine).check() == 5

    def test_busy_machine_passes_all_checkers(self):
        machine = touched_machine()
        assert machine.sanitize() == 5

    def test_checker_subset(self):
        machine = touched_machine()
        assert machine.sanitize(checkers=("cache", "mee")) == 2

    def test_checks_are_read_only(self):
        machine = touched_machine()
        before = machine.fingerprint()
        for _ in range(3):
            machine.sanitize()
        assert machine.fingerprint() == before


class TestSeededCorruptions:
    """Corrupt one structure; the matching checker must fire."""

    def test_cache_tag_in_wrong_set(self):
        machine = touched_machine()
        cache = machine.hierarchy.llc
        set_index, tags, lookup, _policy = first_populated_set(cache)
        tag = next(iter(lookup))
        way = lookup[tag]
        tags[way] = tag + cache.geometry.line_bytes  # maps to a different set
        with pytest.raises(InvariantViolation) as excinfo:
            machine.sanitize()
        assert excinfo.value.checker == "cache"
        assert "maps to set" in str(excinfo.value)

    def test_cache_duplicate_tag(self):
        machine = touched_machine()
        cache = machine.hierarchy.llc
        _idx, tags, lookup, _policy = first_populated_set(cache)
        tag = next(iter(lookup))
        free_way = (lookup[tag] + 1) % cache.geometry.ways
        tags[free_way] = tag
        with pytest.raises(InvariantViolation, match="duplicate tag"):
            machine.sanitize(checkers=("cache",))

    def test_cache_lookup_desync(self):
        machine = touched_machine()
        cache = machine.hierarchy.l1[0]
        _idx, _tags, lookup, _policy = first_populated_set(cache)
        lookup.pop(next(iter(lookup)))
        with pytest.raises(InvariantViolation, match="desynced"):
            machine.sanitize(checkers=("cache",))

    def test_rrpv_out_of_range(self):
        machine = touched_machine()
        _idx, _tags, _lookup, policy = first_populated_set(machine.mee.cache)
        policy._rrpv[0] = 9
        with pytest.raises(InvariantViolation, match="RRPV"):
            machine.sanitize(checkers=("cache",))

    def test_hierarchy_missing_holder_record(self):
        machine = touched_machine()
        holders = machine.hierarchy._private_holders
        _idx, _tags, lookup, _policy = first_populated_set(machine.hierarchy.l1[0])
        line = next(iter(lookup))
        holders.pop(line, None)
        with pytest.raises(InvariantViolation) as excinfo:
            machine.sanitize(checkers=("hierarchy",))
        assert excinfo.value.checker == "hierarchy"

    def test_hierarchy_inclusivity_breach(self):
        machine = touched_machine()
        _idx, _tags, lookup, _policy = first_populated_set(machine.hierarchy.l1[0])
        line = next(iter(lookup))
        # Drop the line from the LLC behind the hierarchy's back.
        assert machine.hierarchy.llc.invalidate(line)
        with pytest.raises(InvariantViolation, match="inclusive"):
            machine.sanitize(checkers=("hierarchy",))

    def test_mee_stale_cached_node(self):
        machine = touched_machine()
        _idx, _tags, lookup, _policy = first_populated_set(machine.mee.cache)
        line = next(iter(lookup))
        machine.mee.tree._node_counters[line] = (
            machine.mee.tree._node_counters.get(line, 0) + 7
        )
        with pytest.raises(InvariantViolation) as excinfo:
            machine.sanitize(checkers=("mee",))
        assert excinfo.value.checker == "mee"
        assert "stale or tampered" in str(excinfo.value)

    def test_clock_negative_time(self):
        machine = touched_machine()
        machine.clocks[0].now = -1.0
        with pytest.raises(InvariantViolation, match="non-physical"):
            machine.sanitize(checkers=("clock",))

    def test_clock_runs_backwards(self):
        machine = touched_machine()
        machine.clocks[1].now = 1000.0
        sanitizer = Sanitizer(machine)
        sanitizer.check(checkers=("clock",))
        machine.clocks[1].now = 995.0
        with pytest.raises(InvariantViolation, match="backwards"):
            sanitizer.check(checkers=("clock",))

    def test_clock_dvfs_out_of_bounds(self):
        machine = touched_machine()
        machine.clocks[0].rate_scale = 1e6
        with pytest.raises(InvariantViolation, match="rate scale"):
            machine.sanitize(checkers=("clock",))

    def test_clock_rate_divisor_desync(self):
        machine = touched_machine()
        machine.clocks[0]._rate *= 1.5
        with pytest.raises(InvariantViolation, match="desynced"):
            machine.sanitize(checkers=("clock",))

    def test_scheduler_orphaned_pending_op(self, machine):
        space = machine.new_address_space("w")

        def body():
            yield Busy(10.0)

        process = machine.spawn("w", body(), core=0, space=space)
        machine.run()
        assert process.state.value == "finished"
        process.pending_op = Busy(1.0)
        with pytest.raises(InvariantViolation, match="pending operation"):
            machine.sanitize(checkers=("scheduler",))

    def test_violation_carries_minimized_dump(self):
        machine = touched_machine()
        machine.clocks[0].now = float("inf")
        with pytest.raises(InvariantViolation) as excinfo:
            machine.sanitize(checkers=("clock",))
        assert excinfo.value.dump["core"] == 0


class TestCadences:
    def test_event_cadence_fires(self, machine):
        machine.install_sanitizer(SanitizerConfig(every_n_events=10))
        space = machine.new_address_space("w")

        def body():
            for _ in range(50):
                yield Busy(100.0)

        machine.spawn("w", body(), core=0, space=space)
        machine.run()
        assert machine.sanitizer.events_seen >= 50
        assert machine.sanitizer.checks_run >= 5

    def test_phase_boundaries_fire(self, machine):
        machine.install_sanitizer(SanitizerConfig())
        space = machine.new_address_space("w")

        def body():
            yield Busy(10.0)
            yield Label("phase-1")
            yield Busy(10.0)
            yield Label("phase-2")

        machine.spawn("w", body(), core=0, space=space)
        machine.run()
        assert machine.sanitizer.phases_seen == 2
        assert machine.sanitizer.checks_run >= 2

    def test_double_install_rejected(self, machine):
        machine.install_sanitizer()
        with pytest.raises(SimulationError):
            machine.install_sanitizer()

    def test_env_var_installs_on_construction(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "100")
        machine = Machine(skylake_i7_6700k(seed=5))
        assert machine.sanitizer is not None
        assert machine.sanitizer.config.every_n_events == 100

    def test_sanitized_run_is_bit_identical(self):
        def run(config):
            machine = Machine(skylake_i7_6700k(seed=11))
            if config is not None:
                machine.install_sanitizer(config)
            space = machine.new_address_space("w")

            def body():
                from repro.sim.ops import Access

                region = space.mmap(4 * PAGE_SIZE)
                for index in range(200):
                    yield Access(region.base + (index * 192) % (4 * PAGE_SIZE))
                    if index % 50 == 0:
                        yield Label(f"window-{index}")

            machine.spawn("w", body(), core=0, space=space)
            machine.run()
            return machine.fingerprint()

        plain = run(None)
        sanitized = run(SanitizerConfig(every_n_events=7))
        assert plain == sanitized
