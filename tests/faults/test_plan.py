"""Unit tests for fault plans: validation, determinism, serialization."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    aex_storm,
    dram_spike_train,
    dvfs_jitter,
    epc_pressure,
    migration_shuffle,
    preemption_storm,
    trojan_stalls,
)


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(at_cycle=0.0, kind="meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(at_cycle=-1.0, kind="preempt", duration_cycles=100.0)

    def test_durative_kinds_need_duration(self):
        for kind in ("preempt", "stall", "aex", "dram_spike", "dvfs"):
            with pytest.raises(FaultError):
                FaultEvent(at_cycle=0.0, kind=kind)

    def test_migrate_needs_target(self):
        with pytest.raises(FaultError):
            FaultEvent(at_cycle=0.0, kind="migrate")
        FaultEvent(at_cycle=0.0, kind="migrate", core=0, target_core=1)

    def test_epc_evict_needs_pages(self):
        with pytest.raises(FaultError):
            FaultEvent(at_cycle=0.0, kind="epc_evict", pages=0)

    def test_dvfs_scale_positive(self):
        with pytest.raises(FaultError):
            FaultEvent(at_cycle=0.0, kind="dvfs", duration_cycles=10.0, scale=0.0)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultEvent(
                at_cycle=1.0,
                kind=kind,
                duration_cycles=10.0,
                target_core=1,
                pages=1,
            )


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        late = FaultEvent(at_cycle=500.0, kind="preempt", duration_cycles=1.0)
        early = FaultEvent(at_cycle=10.0, kind="preempt", duration_cycles=1.0)
        plan = FaultPlan(events=(late, early))
        assert [e.at_cycle for e in plan] == [10.0, 500.0]

    def test_len(self):
        assert len(FaultPlan()) == 0
        plan = preemption_storm(
            seed=1, core=0, start_cycle=0.0, duration_cycles=1e6, rate_per_cycle=1e-5
        )
        assert len(plan) == len(plan.events)

    def test_validate_for_rejects_missing_core(self):
        plan = FaultPlan(
            events=(FaultEvent(at_cycle=0.0, kind="preempt", core=7, duration_cycles=1.0),)
        )
        with pytest.raises(FaultError):
            plan.validate_for(cores=4)
        plan.validate_for(cores=8)

    def test_validate_for_rejects_missing_migration_target(self):
        plan = FaultPlan(
            events=(FaultEvent(at_cycle=0.0, kind="migrate", core=0, target_core=9),)
        )
        with pytest.raises(FaultError):
            plan.validate_for(cores=4)

    def test_merged_interleaves(self):
        a = FaultPlan(
            events=(FaultEvent(at_cycle=5.0, kind="preempt", duration_cycles=1.0),),
            label="a",
        )
        b = FaultPlan(
            events=(FaultEvent(at_cycle=2.0, kind="epc_evict", pages=1),), label="b"
        )
        merged = a.merged(b)
        assert [e.at_cycle for e in merged] == [2.0, 5.0]
        assert merged.label == "a + b"

    def test_shifted_moves_every_event(self):
        plan = preemption_storm(
            seed=2, core=1, start_cycle=0.0, duration_cycles=1e6, rate_per_cycle=1e-5
        )
        shifted = plan.shifted(1000.0)
        assert [e.at_cycle for e in shifted] == [e.at_cycle + 1000.0 for e in plan]

    def test_json_roundtrip(self):
        plan = preemption_storm(
            seed=3, core=0, start_cycle=100.0, duration_cycles=1e6, rate_per_cycle=1e-5
        ).merged(dvfs_jitter(seed=3, core=1, start_cycle=0.0, duration_cycles=1e6,
                             rate_per_cycle=1e-6))
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan


class TestStormBuilders:
    def test_same_seed_same_plan(self):
        kwargs = dict(core=0, start_cycle=0.0, duration_cycles=5e6, rate_per_cycle=1e-5)
        assert preemption_storm(seed=9, **kwargs) == preemption_storm(seed=9, **kwargs)

    def test_different_seed_different_plan(self):
        kwargs = dict(core=0, start_cycle=0.0, duration_cycles=5e6, rate_per_cycle=1e-5)
        assert preemption_storm(seed=1, **kwargs) != preemption_storm(seed=2, **kwargs)

    def test_storm_respects_time_bounds(self):
        plan = preemption_storm(
            seed=4, core=0, start_cycle=1000.0, duration_cycles=1e6, rate_per_cycle=1e-4
        )
        assert plan.events, "expected a dense storm"
        assert all(1000.0 <= e.at_cycle < 1000.0 + 1e6 for e in plan)

    def test_stall_band_respected(self):
        plan = preemption_storm(
            seed=4,
            core=0,
            start_cycle=0.0,
            duration_cycles=1e7,
            rate_per_cycle=1e-5,
            stall_min_cycles=5000.0,
            stall_max_cycles=6000.0,
        )
        assert all(5000.0 <= e.duration_cycles <= 6000.0 for e in plan)

    def test_trojan_stalls_count(self):
        plan = trojan_stalls(
            seed=5, core=0, start_cycle=0.0, duration_cycles=1e7, count=4
        )
        assert len(plan) == 4
        assert all(e.kind == "stall" for e in plan)

    def test_every_builder_yields_valid_plans(self):
        common = dict(start_cycle=0.0, duration_cycles=1e7)
        plans = [
            preemption_storm(seed=1, core=0, rate_per_cycle=1e-6, **common),
            trojan_stalls(seed=1, core=0, count=2, **common),
            aex_storm(seed=1, core=1, rate_per_cycle=1e-6, **common),
            migration_shuffle(seed=1, cores=[(0, 1), (1, 0)], count=3, **common),
            epc_pressure(seed=1, burst_rate_per_cycle=1e-6, **common),
            dram_spike_train(seed=1, rate_per_cycle=1e-6, **common),
            dvfs_jitter(seed=1, core=2, rate_per_cycle=1e-6, **common),
        ]
        for plan in plans:
            plan.validate_for(cores=4)  # must not raise
            restored = FaultPlan.from_dict(plan.to_dict())
            assert restored == plan

    def test_zero_rate_means_empty_plan(self):
        plan = aex_storm(
            seed=1, core=0, start_cycle=0.0, duration_cycles=1e7, rate_per_cycle=0.0
        )
        assert len(plan) == 0
