"""Unit tests for the fault injector's machine-state effects."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.ops import Busy
from repro.units import PAGE_SIZE


def busy_body(chunks: int, chunk_cycles: float):
    """A worker burning time in scheduler-visible slices."""

    def body():
        for _ in range(chunks):
            yield Busy(chunk_cycles)

    return body()


def spawn_worker(machine, core: int, chunks: int = 100, chunk_cycles: float = 1000.0):
    space = machine.new_address_space(f"worker-{core}")
    return machine.spawn(f"worker-{core}", busy_body(chunks, chunk_cycles), core=core, space=space)


def plan_of(*events) -> FaultPlan:
    return FaultPlan(events=tuple(events))


class TestInjectorSetup:
    def test_plan_validated_against_machine(self, machine):
        plan = plan_of(
            FaultEvent(at_cycle=0.0, kind="preempt", core=99, duration_cycles=10.0)
        )
        with pytest.raises(FaultError):
            machine.inject_faults(plan)

    def test_empty_plan_is_a_no_op(self, machine):
        injector = machine.inject_faults(FaultPlan())
        spawn_worker(machine, core=0)
        machine.run()
        assert injector.log == []
        assert injector.stolen_cycles() == 0.0


class TestTimeTheft:
    def test_preempt_steals_cycles_from_target_core(self, machine):
        injector = machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=20_000.0, kind="preempt", core=0, duration_cycles=7_500.0
                )
            )
        )
        spawn_worker(machine, core=0, chunks=100, chunk_cycles=1000.0)
        machine.run()
        assert injector.stolen_cycles() == 7_500.0
        assert injector.counts == {"preempt": 1}
        # ~100k cycles of work (crystal skew shifts reference time by ppm)
        # plus the stolen 7.5k slice.
        assert machine.clocks[0].now >= 107_000.0

    def test_untouched_core_unaffected(self, machine):
        machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=20_000.0, kind="preempt", core=0, duration_cycles=50_000.0
                )
            )
        )
        spawn_worker(machine, core=0)
        victim_free = spawn_worker(machine, core=1)
        machine.run()
        assert victim_free.state.value == "finished"
        assert machine.clocks[1].now < machine.clocks[0].now

    def test_aex_flushes_private_l1(self, machine):
        space = machine.new_address_space("p")
        region = space.mmap(PAGE_SIZE)

        def body():
            yield from (Busy(10_000.0) for _ in range(10))

        machine.spawn("t", body(), core=2, space=space)
        # Warm a line into core 2's L1, then fire the AEX.
        machine.hierarchy.access(2, 0x1000)
        assert machine.hierarchy.l1[2].probe(0x1000)
        injector = machine.inject_faults(
            plan_of(FaultEvent(at_cycle=30_000.0, kind="aex", core=2, duration_cycles=8_000.0))
        )
        machine.run()
        assert injector.counts == {"aex": 1}
        assert not machine.hierarchy.l1[2].probe(0x1000)


class TestMigration:
    def test_processes_repinned_with_penalty(self, machine):
        injector = machine.inject_faults(
            plan_of(
                FaultEvent(at_cycle=25_000.0, kind="migrate", core=0, target_core=3)
            )
        )
        worker = spawn_worker(machine, core=0, chunks=200, chunk_cycles=1000.0)
        machine.run()
        assert worker.clock is machine.clocks[3]
        assert injector.counts == {"migrate": 1}
        # The target clock carried the worker past the migration point.
        assert machine.clocks[3].now > 25_000.0


class TestDurativeFaults:
    def test_dram_spike_reverts_stressors(self, machine):
        baseline = machine.dram.active_stressors
        injector = machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=10_000.0,
                    kind="dram_spike",
                    duration_cycles=30_000.0,
                    magnitude=3,
                )
            )
        )
        spawn_worker(machine, core=0)
        machine.run()
        assert injector.counts == {"dram_spike": 1}
        assert machine.dram.active_stressors == baseline

    def test_dvfs_scale_applied_and_reverted(self, machine):
        injector = machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=10_000.0,
                    kind="dvfs",
                    core=1,
                    duration_cycles=40_000.0,
                    scale=0.8,
                )
            )
        )
        spawn_worker(machine, core=1, chunks=200, chunk_cycles=1000.0)
        machine.run()
        assert injector.counts == {"dvfs": 1}
        assert machine.clocks[1].rate_scale == 1.0

    def test_dvfs_slows_the_core(self, machine):
        # Same workload on two cores; core 1 spends most of it re-clocked
        # slower, so its reference-time position ends later.
        machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=1_000.0,
                    kind="dvfs",
                    core=1,
                    duration_cycles=1e9,
                    scale=0.5,
                )
            )
        )
        spawn_worker(machine, core=0, chunks=50, chunk_cycles=1000.0)
        spawn_worker(machine, core=1, chunks=50, chunk_cycles=1000.0)
        machine.run()
        assert machine.clocks[1].now > machine.clocks[0].now * 1.5


class TestEPCEviction:
    def test_scrubs_metadata_without_pager(self, machine):
        # Paging is off by default: the fault models *other* tenants'
        # paging traffic by scrubbing random protected frames.
        injector = machine.inject_faults(
            plan_of(FaultEvent(at_cycle=5_000.0, kind="epc_evict", pages=16))
        )
        spawn_worker(machine, core=0)
        machine.run()
        assert injector.counts == {"epc_evict": 1}
        assert "16 page(s)" in injector.log[0].detail


class TestDeterminism:
    def test_replay_is_bit_identical(self):
        from repro.config import skylake_i7_6700k
        from repro.system.machine import Machine

        def one_run():
            machine = Machine(skylake_i7_6700k(seed=77))
            injector = machine.inject_faults(
                plan_of(
                    FaultEvent(at_cycle=9_000.0, kind="preempt", core=0, duration_cycles=4_000.0),
                    FaultEvent(at_cycle=22_000.0, kind="dvfs", core=1, duration_cycles=30_000.0, scale=0.9),
                    FaultEvent(at_cycle=40_000.0, kind="epc_evict", pages=4),
                )
            )
            space = machine.new_address_space("w")
            machine.spawn("w0", busy_body(80, 1000.0), core=0, space=space)
            machine.spawn("w1", busy_body(80, 1000.0), core=1, space=space)
            machine.run()
            return (
                [clock.now for clock in machine.clocks],
                [(entry.at_cycle, entry.kind, entry.detail) for entry in injector.log],
            )

        assert one_run() == one_run()


class TestNoEffectFaults:
    """A fault that hits nothing must be visible, never a silent no-op."""

    def _migrate_plan(self, at=50_000.0):
        return plan_of(
            FaultEvent(at_cycle=at, kind="migrate", core=0, target_core=1)
        )

    def test_migrate_with_no_live_process_records_typed_error(self, machine):
        # Nothing ever runs on core 0, so the migrate has nothing to move.
        injector = machine.inject_faults(self._migrate_plan())
        spawn_worker(machine, core=1)
        machine.run()
        assert len(injector.errors) == 1
        assert isinstance(injector.errors[0], FaultError)
        assert "no effect" in str(injector.errors[0])
        # The no-op is also visible in the log, under its own kind.
        assert injector.counts.get("migrate_noop") == 1
        assert "migrate" not in injector.counts

    def test_migrate_after_worker_finished_records_error(self, machine):
        # The worker completes ~100k cycles of work; the migrate lands
        # well after, finding only a finished process.
        injector = machine.inject_faults(
            plan_of(
                FaultEvent(
                    at_cycle=500_000.0, kind="migrate", core=0, target_core=1
                )
            )
        )
        spawn_worker(machine, core=0, chunks=10, chunk_cycles=1000.0)
        machine.run()
        assert [type(error) for error in injector.errors] == [FaultError]

    def test_strict_mode_raises(self, machine):
        machine.inject_faults(self._migrate_plan(), strict=True)
        spawn_worker(machine, core=1)
        with pytest.raises(FaultError, match="no effect"):
            machine.run()

    def test_effective_migrate_reports_no_error(self, machine):
        injector = machine.inject_faults(self._migrate_plan(), strict=True)
        spawn_worker(machine, core=0)  # live target for the migrate
        machine.run()
        assert injector.errors == []
        assert injector.counts.get("migrate") == 1
