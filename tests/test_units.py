"""Unit tests for repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_cache_line_is_64(self):
        assert units.CACHE_LINE == 64

    def test_page_holds_eight_chunks(self):
        assert units.CHUNKS_PER_PAGE == 8
        assert units.CHUNKS_PER_PAGE * units.CHUNK_SIZE == units.PAGE_SIZE

    def test_versions_node_has_eight_counters(self):
        assert units.COUNTERS_PER_VERSIONS_NODE == 8

    def test_hugepage_is_512_pages(self):
        assert units.HUGEPAGE_SIZE == 512 * units.PAGE_SIZE


class TestAlignment:
    def test_align_down_exact(self):
        assert units.align_down(4096, 4096) == 4096

    def test_align_down_rounds(self):
        assert units.align_down(4097, 4096) == 4096

    def test_align_up_exact(self):
        assert units.align_up(8192, 4096) == 8192

    def test_align_up_rounds(self):
        assert units.align_up(4097, 4096) == 8192

    def test_align_up_zero(self):
        assert units.align_up(0, 64) == 0

    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([64, 512, 4096]))
    def test_align_pair_brackets_value(self, value, alignment):
        down = units.align_down(value, alignment)
        up = units.align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 1 << 30])
    def test_powers(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100, 4097])
    def test_non_powers(self, value):
        assert not units.is_power_of_two(value)
