"""Unit tests for repro.system.workload."""

import pytest

from repro.mem.paging import MappedRegion
from repro.system.workload import stride_access_pattern, stride_reader
from repro.units import KIB, PAGE_SIZE


def region(size=64 * KIB):
    return MappedRegion(base=0x100000, size=size, protected=True, hugepage=False)


class TestStridePattern:
    def test_length(self):
        assert len(stride_access_pattern(region(), 512, 10)) == 10

    def test_stride_respected(self):
        addrs = stride_access_pattern(region(), 4096, 4)
        assert [a - addrs[0] for a in addrs] == [0, 4096, 8192, 12288]

    def test_stays_in_region(self):
        target = region(16 * KIB)
        for addr in stride_access_pattern(target, 4096, 100):
            assert target.base <= addr < target.end

    def test_wraps_with_offset_shift(self):
        target = region(8 * KIB)
        addrs = stride_access_pattern(target, 4096, 5)
        # Third lap restarts shifted by 64 B.
        assert addrs[2] != addrs[0]

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            stride_access_pattern(region(), 0, 1)


class TestStrideReader:
    def test_collects_latencies(self, enclave_setup):
        machine, space, enclave = enclave_setup
        target = enclave.alloc(64 * PAGE_SIZE)
        out = []
        machine.spawn(
            "reader",
            stride_reader(target, 512, 50, latencies_out=out),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        assert len(out) == 50
        assert all(latency > 0 for latency in out)

    def test_returns_latencies_as_result(self, enclave_setup):
        machine, space, enclave = enclave_setup
        target = enclave.alloc(16 * PAGE_SIZE)
        process = machine.spawn(
            "reader",
            stride_reader(target, 4096, 10),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        assert len(process.result) == 10

    def test_no_flush_mode_hits_on_chip(self, enclave_setup):
        machine, space, enclave = enclave_setup
        target = enclave.alloc(PAGE_SIZE)
        out = []
        machine.spawn(
            "reader",
            stride_reader(target, 64, 100, flush=False, latencies_out=out),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        # The second lap over the page re-hits L1 (4 cycles) without flushes.
        assert min(out) < 10
