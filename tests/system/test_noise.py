"""Unit tests for repro.system.noise."""

import numpy as np

from repro.system.noise import (
    ambient_system_noise,
    llc_memory_stressor,
    mee_stride_stressor,
)
from repro.units import MIB, PAGE_SIZE


class TestLLCMemoryStressor:
    def test_registers_contention_while_running(self, machine):
        space = machine.new_address_space("stress")
        region = space.mmap(1 * MIB)
        seen = []

        def observer():
            from repro.sim.ops import Busy

            for _ in range(5):
                yield Busy(20_000)
                seen.append(machine.dram.active_stressors)

        machine.spawn(
            "stressor",
            llc_memory_stressor(machine.dram, region, 150_000),
            core=0,
            space=space,
        )
        machine.spawn("observer", observer(), core=1, space=space)
        machine.run()
        assert max(seen) == 1
        assert machine.dram.active_stressors == 0  # unregistered at exit

    def test_never_touches_mee(self, machine):
        space = machine.new_address_space("stress")
        region = space.mmap(1 * MIB)
        machine.spawn(
            "stressor",
            llc_memory_stressor(machine.dram, region, 100_000),
            core=0,
            space=space,
        )
        machine.run()
        assert machine.mee.stats.accesses == 0

    def test_returns_access_count(self, machine):
        space = machine.new_address_space("stress")
        region = space.mmap(1 * MIB)
        process = machine.spawn(
            "stressor",
            llc_memory_stressor(machine.dram, region, 80_000),
            core=0,
            space=space,
        )
        machine.run()
        assert process.result > 0


class TestMEEStrideStressor:
    def test_fills_mee_cache(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(1 * MIB)
        machine.spawn(
            "mee-noise",
            mee_stride_stressor(region, 512, 200_000),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        assert machine.mee.stats.accesses > 100

    def test_4k_stride_misses_more_levels_than_512(self, machine):
        space = machine.new_address_space("p")
        enclave = machine.create_enclave("e", space)
        region = enclave.alloc(2 * MIB)
        machine.spawn(
            "noise-512",
            mee_stride_stressor(region, 512, 150_000),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        counts_512 = list(machine.mee.stats.hit_level_counts)
        # 512 B stride within warmed pages: mostly L0 hits (level 1).
        assert counts_512[1] > counts_512[4] or counts_512[4] > 0


class TestAmbientNoise:
    def test_emits_bursts(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(64 * PAGE_SIZE)
        process = machine.spawn(
            "ambient",
            ambient_system_noise(
                region, 600_000, np.random.default_rng(0), mean_gap_cycles=100_000, burst_pages=4
            ),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        assert process.result >= 1
