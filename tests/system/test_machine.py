"""Unit/integration tests for repro.system.machine — the operation executor."""

import pytest

from repro.errors import EnclaveError, SimulationError
from repro.mem.hierarchy import AccessLevel
from repro.sim.ops import Access, Busy, Fence, Flush, Label, Rdtsc, ReadTimer, WriteOp
from repro.units import PAGE_SIZE


def run_ops(machine, ops_and_sinks, space, enclave=None, core=0):
    """Run a body yielding the given ops, collecting OpResults.

    Tracing is enabled for the run so each result carries its
    ``AccessOutcome`` — the disabled-tracing fast path returns latency only.
    """
    results = []

    def body():
        for op in ops_and_sinks:
            result = yield op
            results.append(result)

    machine.spawn("t", body(), core=core, space=space, enclave=enclave)
    with machine.trace.section():
        machine.run()
    return results


class TestGeneralMemoryPath:
    def test_first_access_pays_memory_latency(self, machine):
        space = machine.new_address_space("p")
        region = space.mmap(PAGE_SIZE)
        results = run_ops(machine, [Access(region.base)], space)
        assert results[0].latency > 300
        assert results[0].value.level is AccessLevel.MEMORY
        assert results[0].value.mee is None

    def test_second_access_hits_l1(self, machine):
        space = machine.new_address_space("p")
        region = space.mmap(PAGE_SIZE)
        results = run_ops(machine, [Access(region.base)] * 2, space)
        assert results[1].value.level is AccessLevel.L1
        assert results[1].latency == 4

    def test_flush_restores_memory_latency(self, machine):
        space = machine.new_address_space("p")
        region = space.mmap(PAGE_SIZE)
        results = run_ops(
            machine, [Access(region.base), Flush(region.base), Access(region.base)], space
        )
        assert results[2].value.level is AccessLevel.MEMORY

    def test_unmapped_address_raises(self, machine):
        from repro.errors import AddressError

        space = machine.new_address_space("p")
        with pytest.raises(AddressError):
            run_ops(machine, [Access(0xDEAD0000)], space)


class TestProtectedMemoryPath:
    def test_protected_access_goes_through_mee(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        results = run_ops(machine, [Access(region.base)], space, enclave=enclave)
        outcome = results[0].value
        assert outcome.mee is not None
        assert outcome.mee_hit_level == 4  # cold walk to root

    def test_versions_hit_latency_near_480(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        ops = [Access(region.base), Flush(region.base), Access(region.base)]
        results = run_ops(machine, ops, space, enclave=enclave)
        assert results[2].value.mee_hit_level == 0
        assert 400 <= results[2].latency <= 650

    def test_clflush_does_not_touch_mee_cache(self, enclave_setup):
        # Challenge 1: clflush empties the hierarchy, never the MEE cache.
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        run_ops(machine, [Access(region.base), Flush(region.base)], space, enclave=enclave)
        assert machine.mee.versions_cached(space.translate(region.base))

    def test_non_enclave_access_to_protected_faults(self, machine):
        space = machine.new_address_space("victim")
        enclave = machine.create_enclave("victim-enclave", space)
        region = enclave.alloc(PAGE_SIZE)
        attacker_space = machine.new_address_space("attacker")
        # Map the attacker's view by translating through victim space is
        # impossible; instead run a non-enclave process in the victim's
        # own space (same mapping, no enclave credentials).
        outcomes = []

        def body():
            try:
                yield Access(region.base)
                outcomes.append("ok")
            except EnclaveError:
                outcomes.append("fault")

        machine.spawn("intruder", body(), core=0, space=space, enclave=None)
        machine.run()
        assert outcomes == ["fault"]

    def test_cross_enclave_access_faults(self, machine):
        space = machine.new_address_space("a")
        enclave_a = machine.create_enclave("a-enclave", space)
        enclave_b = machine.create_enclave("b-enclave", space)
        region = enclave_a.alloc(PAGE_SIZE)
        outcomes = []

        def body():
            try:
                yield Access(region.base)
                outcomes.append("ok")
            except EnclaveError:
                outcomes.append("fault")

        machine.spawn("b-proc", body(), core=0, space=space, enclave=enclave_b)
        machine.run()
        assert outcomes == ["fault"]

    def test_enclave_can_read_non_enclave_memory(self, enclave_setup):
        # Challenge 4's enabler: direct access to untrusted memory.
        machine, space, enclave = enclave_setup
        plain = space.mmap(PAGE_SIZE)
        results = run_ops(machine, [Access(plain.base)], space, enclave=enclave)
        assert results[0].value.mee is None

    def test_write_access_supported(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        results = run_ops(machine, [WriteOp(region.base)], space, enclave=enclave)
        assert results[0].value.mee is not None


class TestTimersAndMisc:
    def test_rdtsc_native(self, machine):
        space = machine.new_address_space("p")
        results = run_ops(machine, [Rdtsc(), Busy(1000), Rdtsc()], space)
        assert results[2].value - results[0].value >= 1000

    def test_rdtsc_faults_in_enclave(self, enclave_setup):
        machine, space, enclave = enclave_setup
        outcomes = []

        def body():
            try:
                yield Rdtsc()
                outcomes.append("ok")
            except EnclaveError:
                outcomes.append("fault")

        machine.spawn("t", body(), core=0, space=space, enclave=enclave)
        machine.run()
        assert outcomes == ["fault"]

    def test_rdtsc_via_ocall_allowed_in_enclave(self, enclave_setup):
        machine, space, enclave = enclave_setup
        results = run_ops(machine, [Rdtsc(via_ocall=True)], space, enclave=enclave)
        assert results[0].value >= 0

    def test_read_timer_everywhere(self, enclave_setup):
        machine, space, enclave = enclave_setup
        results = run_ops(machine, [ReadTimer(), Busy(2000), ReadTimer()], space, enclave=enclave)
        delta = results[2].value - results[0].value
        assert 1900 <= delta <= 2300

    def test_read_timer_value_slightly_stale(self, enclave_setup):
        machine, space, enclave = enclave_setup
        results = run_ops(machine, [Busy(10_000), ReadTimer()], space, enclave=enclave)
        clock_now = machine.clocks[0].now
        assert results[1].value <= clock_now
        assert clock_now - results[1].value <= 200

    def test_fence_and_label_costs(self, machine):
        space = machine.new_address_space("p")
        results = run_ops(machine, [Fence(), Label("x")], space)
        assert results[0].latency == machine.config.hierarchy.mfence_cycles
        assert results[1].latency == 0.0

    def test_unknown_operation_rejected(self, machine):
        space = machine.new_address_space("p")

        def body():
            yield "not-an-op"

        machine.spawn("bad", body(), core=0, space=space)
        with pytest.raises(SimulationError):
            machine.run()


class TestProcessManagement:
    def test_duplicate_space_name_rejected(self, machine):
        machine.new_address_space("p")
        with pytest.raises(SimulationError):
            machine.new_address_space("p")

    def test_duplicate_enclave_name_rejected(self, machine):
        space = machine.new_address_space("p")
        machine.create_enclave("e", space)
        with pytest.raises(SimulationError):
            machine.create_enclave("e", space)

    def test_bad_core_rejected(self, machine):
        space = machine.new_address_space("p")

        def body():
            yield Busy(1)

        with pytest.raises(SimulationError):
            machine.spawn("t", body(), core=99, space=space)

    def test_spawn_fast_forwards_idle_core(self, machine):
        space = machine.new_address_space("p")

        def long_body():
            yield Busy(1_000_000)

        machine.spawn("long", long_body(), core=0, space=space)
        machine.run()

        def late_body():
            yield Busy(1)

        process = machine.spawn("late", late_body(), core=1, space=space)
        # Within clock-skew tolerance of the busy process's million cycles.
        assert process.clock.now >= 0.999e6

    def test_now_is_max_clock(self, machine):
        space = machine.new_address_space("p")

        def body():
            yield Busy(5000)

        machine.spawn("t", body(), core=2, space=space)
        machine.run()
        assert machine.now >= 5000
