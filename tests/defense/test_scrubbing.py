"""Tests for the hardware MEE-cache scrubbing defense."""

import pytest

from repro.defense.scrubbing import CacheScrubber
from repro.sim.ops import Access, Flush
from repro.units import PAGE_SIZE


class TestCacheScrubber:
    def test_scrubs_resident_lines(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(32 * PAGE_SIZE)

        def warm():
            for page in range(32):
                yield Access(region.base + page * PAGE_SIZE)
                yield Flush(region.base + page * PAGE_SIZE)

        machine.spawn("warm", warm(), core=0, space=space, enclave=enclave)
        machine.run()
        resident_before = len(machine.mee.cache)
        scrubber = CacheScrubber(machine=machine, period_cycles=5_000, lines_per_scrub=16)
        process = machine.spawn(
            "scrub", scrubber.body(200_000), core=1, space=space, enclave=None
        )
        machine.run()
        assert process.result > 0
        assert len(machine.mee.cache) < resident_before

    def test_scrubbed_line_reverifies_cleanly(self, enclave_setup):
        # Invalidating a node only forces a re-walk; integrity still holds.
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        results = []

        def body():
            first = yield Access(region.base)
            yield Flush(region.base)
            # Hardware scrub of this line's versions node:
            machine.mee.cache.invalidate(
                machine.layout.versions_line(space.translate(region.base))
            )
            second = yield Access(region.base)
            results.append((first.value.mee_hit_level, second.value.mee_hit_level))

        machine.spawn("t", body(), core=0, space=space, enclave=enclave)
        with machine.trace.section():
            machine.run()
        first_level, second_level = results[0]
        assert first_level == 4  # cold walk
        assert second_level >= 1  # versions was scrubbed -> re-walk, no error

    def test_scrub_rate_property(self):
        scrubber = CacheScrubber(machine=None, period_cycles=10_000, lines_per_scrub=20)
        assert scrubber.scrub_rate_lines_per_kcycle == pytest.approx(2.0)

    def test_zero_duration_noop(self, enclave_setup):
        machine, space, enclave = enclave_setup
        scrubber = CacheScrubber(machine=machine)
        process = machine.spawn(
            "scrub", scrubber.body(0), core=0, space=space, enclave=None
        )
        machine.run()
        assert process.result == 0
