"""Tests for the noise-injection defense."""

import pytest

from repro.defense.noise_injection import NoiseInjector
from repro.units import KIB


class TestNoiseInjector:
    def test_body_issues_accesses(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(256 * KIB)
        injector = NoiseInjector(region=region, period_cycles=5000, accesses_per_burst=4)
        process = machine.spawn(
            "injector", injector.body(300_000), core=0, space=space, enclave=enclave
        )
        machine.run()
        assert process.result > 0
        assert machine.mee.stats.accesses >= process.result

    def test_stronger_injector_issues_more(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(256 * KIB)
        weak = NoiseInjector(region=region, period_cycles=50_000)
        strong = NoiseInjector(region=region, period_cycles=5_000, seed=1)
        weak_proc = machine.spawn(
            "weak", weak.body(400_000), core=0, space=space, enclave=enclave
        )
        strong_proc = machine.spawn(
            "strong", strong.body(400_000), core=1, space=space, enclave=enclave
        )
        machine.run()
        assert strong_proc.result > weak_proc.result

    def test_duty_cycle_monotone_in_period(self):
        region = object.__new__(type("R", (), {}))  # duty_cycle ignores region
        fast = NoiseInjector(region=None, period_cycles=4_000)
        slow = NoiseInjector(region=None, period_cycles=40_000)
        assert fast.duty_cycle > slow.duty_cycle
        assert 0.0 < slow.duty_cycle < 1.0
