"""Tests for the MEE-activity covert-channel detector."""

import numpy as np
import pytest

from repro.defense.detector import MEEActivityDetector


def synthetic_channel_events(bits=120, window=15000, hot_set=55):
    """Events mimicking the channel's fingerprint."""
    events = []
    rng = np.random.default_rng(0)
    for i in range(bits):
        bit = i % 3 == 0  # '100100...'
        time = i * window
        if bit:
            # trojan eviction burst at window start...
            events.append((time + 300, hot_set, 0, (hot_set, hot_set, hot_set)))
            # ...and the spy's probe misses near window end, refilling.
            events.append((time + window - 1200, hot_set, 1, (hot_set,)))
        else:
            events.append((time + window - 1200, hot_set, 0, ()))
        # occasional unrelated background access in a random set
        if i % 5 == 0:
            background_set = int(rng.integers(0, 128))
            events.append(
                (time + 7000 + rng.uniform(-2000, 2000), 33, 4, (background_set,))
            )
    return events


def synthetic_benign_events(count=400):
    """Poisson-ish accesses spread over many sets."""
    rng = np.random.default_rng(1)
    events = []
    time = 0.0
    for _ in range(count):
        time += rng.exponential(900)
        set_index = int(rng.integers(0, 128))
        events.append((time, set_index | 1, int(rng.integers(0, 5)), (set_index,)))
    return events


class TestDetectorScoring:
    def test_flags_channel_fingerprint(self):
        detector = MEEActivityDetector()
        report = detector.analyze_events(synthetic_channel_events())
        assert report.flagged
        assert report.set_concentration > 0.5
        assert report.lattice_score > 0.7

    def test_benign_not_flagged(self):
        detector = MEEActivityDetector()
        report = detector.analyze_events(synthetic_benign_events())
        assert not report.flagged
        assert report.set_concentration < 0.3

    def test_empty_events(self):
        report = MEEActivityDetector().analyze_events([])
        assert not report.flagged
        assert report.events == 0

    def test_too_few_evictions_not_flagged(self):
        events = synthetic_channel_events(bits=6)
        report = MEEActivityDetector().analyze_events(events)
        assert not report.flagged

    def test_summary_contains_verdict(self):
        report = MEEActivityDetector().analyze_events(synthetic_channel_events())
        assert "SUSPECTED" in report.summary()

    def test_aperiodic_concentrated_traffic_not_flagged(self):
        # Concentration alone must not trigger: hammer one set at random
        # times without alternation.
        rng = np.random.default_rng(2)
        events = []
        time = 0.0
        for _ in range(200):
            time += rng.exponential(5000) + 500
            events.append((time, 55, 0, (55,)))
        report = MEEActivityDetector().analyze_events(events)
        assert not report.flagged


class TestDetectorOnMachine:
    def test_extract_events_reads_trace(self, enclave_setup):
        machine, space, enclave = enclave_setup
        from repro.sim.ops import Access, Flush

        region = enclave.alloc(8 * 4096)
        machine.trace.enabled = True

        def body():
            for page in range(8):
                yield Access(region.base + page * 4096)
                yield Flush(region.base + page * 4096)

        machine.spawn("t", body(), core=0, space=space, enclave=enclave)
        machine.run()
        events = MEEActivityDetector.extract_events(machine)
        machine.trace.enabled = False
        assert len(events) == 8
        for _, versions_set, hit_level, _ in events:
            assert versions_set % 2 == 1
            assert 0 <= hit_level <= 4
