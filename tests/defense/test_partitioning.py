"""Tests for MEE-cache way partitioning (defense)."""

import pytest

from repro.config import skylake_i7_6700k
from repro.core.channel import CovertChannel
from repro.defense.partitioning import (
    SHARED_DOMAIN,
    WayPartitionPolicy,
    install_way_partitioning,
)
from repro.errors import ChannelError, ConfigurationError
from repro.system.machine import Machine
from repro.units import PAGE_SIZE


class TestWayPartitionPolicy:
    def test_assignments_respected(self):
        policy = WayPartitionPolicy(8, {"a": (0, 1), "b": (2, 3, 4)})
        assert policy.ways_for("a") == (0, 1)
        assert policy.ways_for("b") == (2, 3, 4)

    def test_unknown_domain_gets_all_ways(self):
        policy = WayPartitionPolicy(8, {"a": (0, 1)})
        assert policy.ways_for("ghost") == tuple(range(8))
        assert policy.ways_for(None) == tuple(range(8))
        assert policy.ways_for(SHARED_DOMAIN) == tuple(range(8))

    def test_overlapping_assignments_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionPolicy(8, {"a": (0, 1), "b": (1, 2)})

    def test_out_of_range_way_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionPolicy(8, {"a": (8,)})


class TestPartitionedCacheBehaviour:
    @pytest.fixture()
    def partitioned(self, machine):
        space = machine.new_address_space("part-proc")
        enclave_a = machine.create_enclave("enclave-a", space)
        enclave_b = machine.create_enclave("enclave-b", space)
        region_a = enclave_a.alloc(64 * PAGE_SIZE)
        region_b = enclave_b.alloc(64 * PAGE_SIZE)
        cache = install_way_partitioning(
            machine, {"enclave-a": (0, 1, 2, 3), "enclave-b": (4, 5, 6, 7)}
        )
        return machine, space, enclave_a, enclave_b, region_a, region_b, cache

    def test_cache_installed_on_engine(self, partitioned):
        machine, *_, cache = partitioned
        assert machine.mee.cache is cache

    def test_fills_stay_in_owner_ways(self, partitioned):
        machine, space, enclave_a, _, region_a, _, cache = partitioned
        from repro.sim.ops import Access, Flush

        def body():
            for page in range(32):
                vaddr = region_a.base + page * PAGE_SIZE
                yield Access(vaddr)
                yield Flush(vaddr)

        machine.spawn("filler", body(), core=0, space=space, enclave=enclave_a)
        machine.run()
        # Every versions line of enclave-a must occupy ways 0..3 only.
        for page in range(32):
            paddr = space.translate(region_a.base + page * PAGE_SIZE)
            line = machine.layout.versions_line(paddr)
            set_index = cache.set_index_of(line)
            lookup = cache._sets[set_index].lookup
            if line in lookup:
                assert lookup[line] in (0, 1, 2, 3)

    def test_cross_domain_eviction_impossible(self, partitioned):
        machine, space, enclave_a, enclave_b, region_a, region_b, cache = partitioned
        from repro.sim.ops import Access, Flush

        victim = region_b.base

        def body():
            # Enclave B primes one line...
            yield Access(victim)
            yield Flush(victim)

        machine.spawn("victim", body(), core=0, space=space, enclave=enclave_b)
        machine.run()

        def attacker():
            # ... enclave A floods everything it owns.
            for page in range(64):
                vaddr = region_a.base + page * PAGE_SIZE
                for unit in range(8):
                    yield Access(vaddr + unit * 512)
                    yield Flush(vaddr + unit * 512)

        machine.spawn("attacker", attacker(), core=1, space=space, enclave=enclave_a)
        machine.run()
        victim_line = machine.layout.versions_line(space.translate(victim))
        assert cache.contains(victim_line)


class TestPartitioningDefeatsAttack:
    def test_channel_setup_fails_under_partitioning(self):
        machine = Machine(skylake_i7_6700k(seed=5))
        channel = CovertChannel(machine)
        install_way_partitioning(
            machine, {"trojan-enclave": (0, 1, 2, 3), "spy-enclave": (4, 5, 6, 7)}
        )
        with pytest.raises(ChannelError):
            channel.setup()
