"""Unit tests for repro.sgx.ocall."""

import numpy as np

from repro.config import TimerConfig
from repro.sgx.ocall import OCallModel


def make_model(seed=0):
    return OCallModel(TimerConfig(), np.random.default_rng(seed))


class TestOCallModel:
    def test_cost_within_paper_range(self):
        model = make_model()
        for _ in range(500):
            cost = model.sample_cost()
            assert 8000 <= cost <= 15000

    def test_costs_vary(self):
        model = make_model()
        costs = {model.sample_cost() for _ in range(100)}
        assert len(costs) > 10

    def test_split_cost_sums_to_total_range(self):
        model = make_model()
        for _ in range(200):
            exit_cycles, reentry_cycles = model.split_cost()
            total = exit_cycles + reentry_cycles
            assert 8000 <= total <= 15000
            assert exit_cycles > 0 and reentry_cycles > 0

    def test_split_roughly_balanced(self):
        model = make_model()
        exit_cycles, reentry_cycles = model.split_cost()
        assert 0.4 <= exit_cycles / (exit_cycles + reentry_cycles) <= 0.6

    def test_calls_counted(self):
        model = make_model()
        model.sample_cost()
        model.split_cost()
        assert model.calls == 2
