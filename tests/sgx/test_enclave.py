"""Unit tests for repro.sgx.enclave."""

import numpy as np
import pytest

from repro.errors import EnclaveError, EPCError
from repro.mem.paging import AddressSpace, FrameAllocator
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EnclavePageCache
from repro.units import MIB, PAGE_SIZE


@pytest.fixture()
def setup():
    rng = np.random.default_rng(0)
    general = FrameAllocator(0, 256, rng=rng)
    protected = FrameAllocator(256 * PAGE_SIZE, 256, rng=rng)
    space = AddressSpace(general, protected)
    epc = EnclavePageCache(256 * PAGE_SIZE)
    return space, epc


class TestEnclave:
    def test_alloc_is_protected_4k_pages(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        region = enclave.alloc(3 * PAGE_SIZE)
        assert region.protected
        assert not region.hugepage
        assert epc.usage_of("e") == 3

    def test_alloc_rounds_up_to_pages(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        region = enclave.alloc(1)
        assert region.size == PAGE_SIZE

    def test_hugepages_unavailable(self, setup):
        # Paper Section 3, challenge 3.
        space, epc = setup
        enclave = Enclave("e", space, epc)
        with pytest.raises(EnclaveError):
            enclave.alloc_hugepage(2 * MIB)

    def test_owns(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        region = enclave.alloc(PAGE_SIZE)
        assert enclave.owns(region.base)
        assert not enclave.owns(region.end)

    def test_epc_exhaustion(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        with pytest.raises(EPCError):
            enclave.alloc(257 * PAGE_SIZE)

    def test_destroy_releases_everything(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        region = enclave.alloc(4 * PAGE_SIZE)
        enclave.destroy()
        assert epc.usage_of("e") == 0
        assert space.region_of(region.base) is None

    def test_destroyed_enclave_unusable(self, setup):
        space, epc = setup
        enclave = Enclave("e", space, epc)
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.alloc(PAGE_SIZE)

    def test_repr(self, setup):
        space, epc = setup
        enclave = Enclave("spy", space, epc)
        assert "spy" in repr(enclave)
