"""Unit tests for repro.sgx.timing — the Figure 2 timer mechanisms.

These run the timers against the real machine model so the costs are the
ones the attack experiences.
"""

import pytest

from repro.errors import InstructionNotAvailableError
from repro.sgx.timing import (
    CounterThreadTimer,
    DirectRdtscTimer,
    OCallTimer,
    measured_access,
)
from repro.sim.ops import Access, Busy
from repro.units import PAGE_SIZE


def run_body(machine, body, space, enclave=None, core=0):
    process = machine.spawn("timer-test", body, core=core, space=space, enclave=enclave)
    machine.run()
    return process


class TestDirectRdtsc:
    def test_reads_advance(self, enclave_setup):
        machine, space, enclave = enclave_setup
        values = []

        def body():
            timer = DirectRdtscTimer()
            first = yield from timer.read()
            yield Busy(1000)
            second = yield from timer.read()
            values.append((first, second))

        run_body(machine, body(), space)
        first, second = values[0]
        assert second - first >= 1000

    def test_faults_in_enclave(self, enclave_setup):
        machine, space, enclave = enclave_setup
        outcomes = []

        def body():
            timer = DirectRdtscTimer()
            try:
                yield from timer.read()
                outcomes.append("ok")
            except InstructionNotAvailableError:
                outcomes.append("fault")

        run_body(machine, body(), space, enclave=enclave)
        assert outcomes == ["fault"]


class TestOCallTimer:
    def test_works_in_enclave_with_heavy_cost(self, enclave_setup):
        machine, space, enclave = enclave_setup
        values = []

        def body():
            timer = OCallTimer(machine.ocall)
            first = yield from timer.read()
            second = yield from timer.read()
            values.append(second - first)

        run_body(machine, body(), space, enclave=enclave)
        # Two OCALLs back to back: the gap includes one full round trip.
        assert values[0] >= 7000

    def test_overhead_estimate_in_range(self, machine):
        timer = OCallTimer(machine.ocall)
        assert 8000 <= timer.overhead_estimate() <= 15000


class TestCounterThreadTimer:
    def test_works_in_enclave_cheaply(self, enclave_setup):
        machine, space, enclave = enclave_setup
        values = []

        def body():
            timer = CounterThreadTimer()
            first = yield from timer.read()
            yield Busy(500)
            second = yield from timer.read()
            values.append(second - first)

        run_body(machine, body(), space, enclave=enclave)
        # ~500 busy + ~50 read cost +- staleness.
        assert 400 <= values[0] <= 700

    def test_overhead_estimate(self):
        assert CounterThreadTimer(50).overhead_estimate() == 50.0


class TestMeasuredAccess:
    def test_separates_hit_from_miss(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(2 * PAGE_SIZE)
        samples = {"cold": [], "hit": []}

        def body():
            timer = CounterThreadTimer()
            cold = yield from measured_access(timer, region.base)
            samples["cold"].append(cold)
            for _ in range(5):
                warm = yield from measured_access(timer, region.base)
                samples["hit"].append(warm)

        run_body(machine, body(), space, enclave=enclave)
        assert min(samples["cold"]) > max(samples["hit"])

    def test_flush_keeps_access_at_memory(self, enclave_setup):
        # With flush_after, every measurement sees main-memory latency.
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        latencies = []

        def body():
            timer = CounterThreadTimer()
            for _ in range(6):
                value = yield from measured_access(timer, region.base, flush_after=True)
                latencies.append(value)

        run_body(machine, body(), space, enclave=enclave)
        # All accesses (after the first) are versions hits ~480+timer cost,
        # never on-chip cache hits (~10-100).
        assert all(latency > 300 for latency in latencies[1:])

    def test_without_flush_hits_on_chip(self, enclave_setup):
        machine, space, enclave = enclave_setup
        region = enclave.alloc(PAGE_SIZE)
        latencies = []

        def body():
            timer = CounterThreadTimer()
            yield Access(region.base)
            for _ in range(3):
                value = yield from measured_access(timer, region.base, flush_after=False)
                latencies.append(value)

        run_body(machine, body(), space, enclave=enclave)
        assert min(latencies) < 300
