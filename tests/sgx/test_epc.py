"""Unit tests for repro.sgx.epc."""

import pytest

from repro.errors import EPCError
from repro.sgx.epc import EnclavePageCache
from repro.units import MIB, PAGE_SIZE


class TestEnclavePageCache:
    def test_capacity(self):
        epc = EnclavePageCache(128 * MIB)
        assert epc.total_pages == 32768
        assert epc.free_pages == 32768

    def test_reserve_and_release(self):
        epc = EnclavePageCache(1 * MIB)
        epc.reserve("a", 100)
        assert epc.usage_of("a") == 100
        assert epc.free_pages == 256 - 100
        assert epc.release("a") == 100
        assert epc.free_pages == 256

    def test_reserve_accumulates(self):
        epc = EnclavePageCache(1 * MIB)
        epc.reserve("a", 10)
        epc.reserve("a", 20)
        assert epc.usage_of("a") == 30

    def test_oversubscription_rejected(self):
        epc = EnclavePageCache(1 * MIB)
        with pytest.raises(EPCError):
            epc.reserve("a", 257)

    def test_multiple_enclaves_share_budget(self):
        epc = EnclavePageCache(1 * MIB)
        epc.reserve("a", 200)
        with pytest.raises(EPCError):
            epc.reserve("b", 100)
        epc.reserve("b", 56)

    def test_negative_reserve_rejected(self):
        epc = EnclavePageCache(1 * MIB)
        with pytest.raises(EPCError):
            epc.reserve("a", -1)

    def test_unaligned_size_rejected(self):
        with pytest.raises(EPCError):
            EnclavePageCache(PAGE_SIZE + 1)

    def test_release_unknown_enclave(self):
        assert EnclavePageCache(1 * MIB).release("ghost") == 0
