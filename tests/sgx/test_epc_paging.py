"""Tests for EPC oversubscription (EWB/ELDU paging)."""

import dataclasses

import pytest

from repro.config import skylake_i7_6700k
from repro.errors import EPCError
from repro.sgx.epc_paging import EPCPager
from repro.sim.ops import Access, Flush
from repro.system.machine import Machine
from repro.units import PAGE_SIZE


class TestEPCPagerUnit:
    def test_first_touch_faults(self):
        pager = EPCPager(resident_limit=4)
        extra, evicted = pager.touch(0x1000)
        assert extra == pager.eldu_cycles
        assert evicted is None
        assert pager.stats.faults == 1

    def test_resident_touch_free(self):
        pager = EPCPager(resident_limit=4)
        pager.touch(0x1000)
        extra, evicted = pager.touch(0x1800)  # same page
        assert extra == 0.0 and evicted is None

    def test_lru_eviction_on_overflow(self):
        pager = EPCPager(resident_limit=2)
        pager.touch(0 * PAGE_SIZE)
        pager.touch(1 * PAGE_SIZE)
        pager.touch(0 * PAGE_SIZE)  # page 1 becomes LRU
        extra, evicted = pager.touch(2 * PAGE_SIZE)
        assert evicted == 1 * PAGE_SIZE
        assert extra == pager.eldu_cycles + pager.ewb_cycles
        assert pager.stats.writebacks == 1

    def test_is_resident(self):
        pager = EPCPager(resident_limit=1)
        pager.touch(0)
        assert pager.is_resident(100)
        pager.touch(PAGE_SIZE)
        assert not pager.is_resident(100)

    def test_drop(self):
        pager = EPCPager(resident_limit=2)
        pager.touch(0)
        assert pager.drop(0)
        assert not pager.drop(0)
        assert pager.resident_pages == 0

    def test_limit_validated(self):
        with pytest.raises(EPCError):
            EPCPager(resident_limit=0)

    def test_peak_tracked(self):
        pager = EPCPager(resident_limit=8)
        for page in range(5):
            pager.touch(page * PAGE_SIZE)
        assert pager.stats.resident_peak == 5


def paged_machine(limit_pages: int, seed: int = 0) -> Machine:
    config = skylake_i7_6700k(seed=seed)
    paging = dataclasses.replace(config.paging, epc_resident_limit_pages=limit_pages)
    return Machine(dataclasses.replace(config, paging=paging))


class TestMachineIntegration:
    def test_paging_disabled_by_default(self, machine):
        assert machine.pager is None

    def test_thrashing_costs_fault_latency(self):
        machine = paged_machine(limit_pages=4)
        space = machine.new_address_space("p")
        enclave = machine.create_enclave("e", space)
        region = enclave.alloc(16 * PAGE_SIZE)
        latencies = []

        def body():
            for lap in range(2):
                for page in range(16):
                    result = yield Access(region.base + page * PAGE_SIZE)
                    latencies.append(result.latency)
                    yield Flush(region.base + page * PAGE_SIZE)

        machine.spawn("thrash", body(), core=0, space=space, enclave=enclave)
        machine.run()
        # With only 4 resident pages, every access in the 16-page loop
        # faults: latencies include the ~40k-cycle ELDU cost.
        assert min(latencies) > 30_000
        assert machine.pager.stats.faults == 32

    def test_working_set_within_limit_no_faults_after_warmup(self):
        machine = paged_machine(limit_pages=8)
        space = machine.new_address_space("p")
        enclave = machine.create_enclave("e", space)
        region = enclave.alloc(4 * PAGE_SIZE)
        latencies = []

        def body():
            for lap in range(3):
                for page in range(4):
                    result = yield Access(region.base + page * PAGE_SIZE)
                    latencies.append(result.latency)
                    yield Flush(region.base + page * PAGE_SIZE)

        machine.spawn("warm", body(), core=0, space=space, enclave=enclave)
        machine.run()
        assert machine.pager.stats.faults == 4  # cold faults only
        assert max(latencies[4:]) < 10_000

    def test_evicted_page_metadata_scrubbed(self):
        machine = paged_machine(limit_pages=1)
        space = machine.new_address_space("p")
        enclave = machine.create_enclave("e", space)
        region = enclave.alloc(2 * PAGE_SIZE)
        observed = []

        def body():
            yield Access(region.base)
            yield Flush(region.base)
            observed.append(machine.mee.versions_cached(space.translate(region.base)))
            yield Access(region.base + PAGE_SIZE)  # evicts page 0 from EPC
            observed.append(machine.mee.versions_cached(space.translate(region.base)))

        machine.spawn("t", body(), core=0, space=space, enclave=enclave)
        machine.run()
        assert observed == [True, False]


class TestEvictBurstEdgeCases:
    def test_burst_on_empty_pager(self):
        pager = EPCPager(resident_limit=4)
        assert pager.evict_burst(3) == []
        assert pager.stats.writebacks == 0

    def test_zero_count_burst(self):
        pager = EPCPager(resident_limit=4)
        pager.touch(0 * PAGE_SIZE)
        assert pager.evict_burst(0) == []
        assert pager.is_resident(0)

    def test_burst_larger_than_resident_set(self):
        # Asking for more pages than are resident evicts everything and
        # stops — no phantom writebacks, no error.
        pager = EPCPager(resident_limit=8)
        for page in range(3):
            pager.touch(page * PAGE_SIZE)
        evicted = pager.evict_burst(100)
        assert evicted == [0 * PAGE_SIZE, 1 * PAGE_SIZE, 2 * PAGE_SIZE]
        assert pager.stats.writebacks == 3
        for page in range(3):
            assert not pager.is_resident(page * PAGE_SIZE)

    def test_repeated_bursts_drain_once(self):
        pager = EPCPager(resident_limit=8)
        pager.touch(0)
        assert pager.evict_burst(5) == [0]
        assert pager.evict_burst(5) == []
        assert pager.stats.writebacks == 1

    def test_burst_evicts_lru_first(self):
        pager = EPCPager(resident_limit=8)
        for page in range(4):
            pager.touch(page * PAGE_SIZE)
        pager.touch(0)  # page 0 becomes most recent
        assert pager.evict_burst(2) == [1 * PAGE_SIZE, 2 * PAGE_SIZE]

    def test_export_restore_preserves_lru_order(self):
        source = EPCPager(resident_limit=8)
        for page in range(4):
            source.touch(page * PAGE_SIZE)
        source.touch(0)
        clone = EPCPager(resident_limit=8)
        clone.restore_state(source.export_state())
        assert clone.evict_burst(2) == source.evict_burst(2)
        assert clone.stats.writebacks == source.stats.writebacks
