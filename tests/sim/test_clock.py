"""Unit tests for repro.sim.clock."""

import numpy as np
import pytest

from repro.sim.clock import CoreClock, InterruptModel


def quiet_clock(core_id=0, skew=0.0):
    return CoreClock(
        core_id,
        skew=skew,
        interrupts=InterruptModel(rate_per_cycle=0.0),
        rng=np.random.default_rng(0),
    )


class TestCoreClock:
    def test_advance_without_skew(self):
        clock = quiet_clock()
        elapsed = clock.advance(1000)
        assert elapsed == pytest.approx(1000.0)
        assert clock.now == pytest.approx(1000.0)

    def test_positive_skew_runs_fast(self):
        # A fast core finishes its cycles in less reference time.
        clock = quiet_clock(skew=1e-4)
        clock.advance(1_000_000)
        assert clock.now < 1_000_000

    def test_negative_skew_runs_slow(self):
        clock = quiet_clock(skew=-1e-4)
        clock.advance(1_000_000)
        assert clock.now > 1_000_000

    def test_tsc_is_integer_reference_time(self):
        clock = quiet_clock()
        clock.advance(123.7)
        assert clock.tsc() == 123

    def test_uninterruptible_advance_never_stretched(self):
        clock = CoreClock(
            0,
            interrupts=InterruptModel(rate_per_cycle=1.0, duration_cycles=1000),
            rng=np.random.default_rng(0),
        )
        elapsed = clock.advance(100, interruptible=False)
        assert elapsed == pytest.approx(100.0)
        assert clock.interrupt_cycles == 0.0


class TestInterruptModel:
    def test_zero_rate_never_stretches(self):
        model = InterruptModel(rate_per_cycle=0.0)
        assert model.stretch(1e9, np.random.default_rng(0)) == 0.0

    def test_high_rate_stretches(self):
        model = InterruptModel(rate_per_cycle=1e-3, duration_cycles=100.0)
        extra = model.stretch(1e6, np.random.default_rng(0))
        assert extra > 0.0

    def test_stretch_scales_with_duration(self):
        model = InterruptModel(rate_per_cycle=1e-4, duration_cycles=500.0)
        rng = np.random.default_rng(1)
        short = np.mean([model.stretch(1e4, rng) for _ in range(200)])
        long = np.mean([model.stretch(1e6, rng) for _ in range(200)])
        assert long > short

    def test_expected_stretch_matches_rate(self):
        model = InterruptModel(rate_per_cycle=1e-5, duration_cycles=1000.0)
        rng = np.random.default_rng(2)
        samples = [model.stretch(1e6, rng) for _ in range(500)]
        # Expectation = rate * cycles * duration = 10 * 1000 = 10000.
        assert np.mean(samples) == pytest.approx(10_000, rel=0.2)

    def test_interrupt_cycles_accounted(self):
        clock = CoreClock(
            0,
            interrupts=InterruptModel(rate_per_cycle=1e-3, duration_cycles=100.0),
            rng=np.random.default_rng(3),
        )
        clock.advance(1e6)
        assert clock.interrupt_cycles > 0
        assert clock.now > 1e6
