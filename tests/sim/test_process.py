"""Unit tests for repro.sim.process."""

import numpy as np
import pytest

from repro.errors import ProcessError
from repro.sim.clock import CoreClock, InterruptModel
from repro.sim.ops import Busy, OpResult
from repro.sim.process import ProcessState, SimProcess


def make_clock():
    return CoreClock(0, interrupts=InterruptModel(rate_per_cycle=0.0), rng=np.random.default_rng(0))


def simple_body(results):
    got = yield Busy(10)
    results.append(got)
    return "done"


class TestSimProcess:
    def test_rejects_non_generator(self):
        with pytest.raises(ProcessError):
            SimProcess("p", lambda: None, make_clock())

    def test_initial_state_ready(self):
        process = SimProcess("p", simple_body([]), make_clock())
        assert process.state is ProcessState.READY
        assert not process.in_enclave

    def test_step_yields_operations_then_finishes(self):
        results = []
        process = SimProcess("p", simple_body(results), make_clock())
        op = process.step(None)
        assert isinstance(op, Busy)
        op2 = process.step(OpResult(latency=10.0))
        assert op2 is None
        assert process.state is ProcessState.FINISHED
        assert process.result == "done"
        assert results == [OpResult(latency=10.0)]

    def test_op_count_increments(self):
        process = SimProcess("p", simple_body([]), make_clock())
        process.step(None)
        assert process.op_count == 1

    def test_exception_marks_failed(self):
        def bad_body():
            yield Busy(1)
            raise ValueError("boom")

        process = SimProcess("p", bad_body(), make_clock())
        process.step(None)
        with pytest.raises(ValueError):
            process.step(OpResult(latency=1.0))
        assert process.state is ProcessState.FAILED
        assert isinstance(process.failure, ValueError)

    def test_throw_delivers_into_generator(self):
        caught = []

        def catching_body():
            try:
                yield Busy(1)
            except RuntimeError as exc:
                caught.append(exc)
            return "recovered"

        process = SimProcess("p", catching_body(), make_clock())
        process.step(None)
        op = process.throw(RuntimeError("fault"))
        assert op is None
        assert process.state is ProcessState.FINISHED
        assert process.result == "recovered"
        assert len(caught) == 1

    def test_throw_uncaught_marks_failed(self):
        def body():
            yield Busy(1)

        process = SimProcess("p", body(), make_clock())
        process.step(None)
        with pytest.raises(RuntimeError):
            process.throw(RuntimeError("fault"))
        assert process.state is ProcessState.FAILED

    def test_enclave_flag(self):
        process = SimProcess("p", simple_body([]), make_clock(), enclave=object())
        assert process.in_enclave

    def test_repr_contains_name_and_state(self):
        process = SimProcess("spy", simple_body([]), make_clock())
        text = repr(process)
        assert "spy" in text and "ready" in text
