"""Unit tests for the operation dataclasses."""

from repro.sim.ops import (
    Access,
    Busy,
    Fence,
    Flush,
    Label,
    OpResult,
    Rdtsc,
    ReadTimer,
    WriteOp,
)


class TestOperations:
    def test_access_defaults(self):
        op = Access(0x1000)
        assert op.vaddr == 0x1000
        assert op.size == 8

    def test_operations_are_frozen(self):
        import dataclasses

        for op in (Access(0), WriteOp(0), Flush(0), Fence(), Busy(1), Rdtsc(), ReadTimer(), Label("x")):
            assert dataclasses.is_dataclass(op)
            try:
                object.__getattribute__(op, "__dataclass_params__")
            except AttributeError:
                pass
            assert type(op).__dataclass_params__.frozen

    def test_rdtsc_ocall_flag(self):
        assert not Rdtsc().via_ocall
        assert Rdtsc(via_ocall=True).via_ocall

    def test_opresult_defaults(self):
        result = OpResult(latency=5.0)
        assert result.latency == 5.0
        assert result.value is None

    def test_label_payload(self):
        label = Label("window", payload={"index": 3})
        assert label.payload["index"] == 3

    def test_equality_semantics(self):
        assert Access(0x10) == Access(0x10)
        assert Flush(0x10) != Flush(0x20)
