"""Unit tests for repro.sim.trace."""

from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_disabled_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "p", "access", 42)
        assert len(recorder) == 0

    def test_enabled_records(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", 42)
        assert len(recorder) == 1
        event = recorder.events[0]
        assert event == TraceEvent(time=1.0, process="p", kind="access", detail=42)

    def test_filter_limits_events(self):
        recorder = TraceRecorder(enabled=True)
        recorder.filter = lambda event: event.kind == "flush"
        recorder.record(1.0, "p", "access", None)
        recorder.record(2.0, "p", "flush", None)
        assert len(recorder) == 1
        assert recorder.events[0].kind == "flush"

    def test_of_kind(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", None)
        recorder.record(2.0, "p", "flush", None)
        recorder.record(3.0, "q", "access", None)
        accesses = recorder.of_kind("access")
        assert [event.time for event in accesses] == [1.0, 3.0]

    def test_clear(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", None)
        recorder.clear()
        assert len(recorder) == 0

    def test_repr_of_event(self):
        event = TraceEvent(time=1.5, process="spy", kind="access", detail="x")
        assert "spy" in repr(event)
