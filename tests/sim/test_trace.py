"""Unit tests for repro.sim.trace."""

from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_disabled_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "p", "access", 42)
        assert len(recorder) == 0

    def test_enabled_records(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", 42)
        assert len(recorder) == 1
        event = recorder.events[0]
        assert event == TraceEvent(time=1.0, process="p", kind="access", detail=42)

    def test_filter_limits_events(self):
        recorder = TraceRecorder(enabled=True)
        recorder.filter = lambda event: event.kind == "flush"
        recorder.record(1.0, "p", "access", None)
        recorder.record(2.0, "p", "flush", None)
        assert len(recorder) == 1
        assert recorder.events[0].kind == "flush"

    def test_of_kind(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", None)
        recorder.record(2.0, "p", "flush", None)
        recorder.record(3.0, "q", "access", None)
        accesses = recorder.of_kind("access")
        assert [event.time for event in accesses] == [1.0, 3.0]

    def test_clear(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", None)
        recorder.clear()
        assert len(recorder) == 0

    def test_repr_of_event(self):
        event = TraceEvent(time=1.5, process="spy", kind="access", detail="x")
        assert "spy" in repr(event)


class TestSection:
    def test_enables_inside_and_restores_on_exit(self):
        recorder = TraceRecorder(enabled=False)
        with recorder.section():
            assert recorder.enabled
            recorder.record(1.0, "p", "access", None)
        assert not recorder.enabled
        recorder.record(2.0, "p", "access", None)  # dropped: disabled again
        assert [event.time for event in recorder.events] == [1.0]

    def test_restores_prior_enabled_state(self):
        recorder = TraceRecorder(enabled=True)
        with recorder.section():
            pass
        assert recorder.enabled

    def test_restores_on_exception(self):
        recorder = TraceRecorder(enabled=False)
        recorder.filter = None
        try:
            with recorder.section(filter=lambda event: True):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not recorder.enabled
        assert recorder.filter is None

    def test_filter_installed_and_restored(self):
        outer = lambda event: event.kind == "flush"  # noqa: E731
        recorder = TraceRecorder(enabled=True)
        recorder.filter = outer
        with recorder.section(filter=lambda event: event.kind == "access"):
            recorder.record(1.0, "p", "access", None)
            recorder.record(2.0, "p", "flush", None)
        assert [event.kind for event in recorder.events] == ["access"]
        assert recorder.filter is outer

    def test_clear_drops_prior_events(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "p", "access", None)
        with recorder.section(clear=True):
            recorder.record(2.0, "p", "access", None)
        assert [event.time for event in recorder.events] == [2.0]

    def test_yields_recorder(self):
        recorder = TraceRecorder(enabled=False)
        with recorder.section() as inner:
            assert inner is recorder
