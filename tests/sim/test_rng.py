"""Unit tests for repro.sim.rng."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("dram") is streams.stream("dram")

    def test_deterministic_across_instances(self):
        a = RandomStreams(seed=1).stream("dram").random(5)
        b = RandomStreams(seed=1).stream("dram").random(5)
        assert list(a) == list(b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=1)
        a = streams.stream("dram").random(5)
        b = streams.stream("mee").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("dram").random(5)
        b = RandomStreams(seed=2).stream("dram").random(5)
        assert list(a) != list(b)

    def test_draw_order_does_not_couple_streams(self):
        # Drawing from one stream must not perturb another.
        first = RandomStreams(seed=3)
        first.stream("noise").random(100)
        value_after = first.stream("dram").random(3)
        fresh = RandomStreams(seed=3)
        value_fresh = fresh.stream("dram").random(3)
        assert list(value_after) == list(value_fresh)

    def test_fork_is_deterministic_and_distinct(self):
        base = RandomStreams(seed=1)
        fork_a = base.fork(7).stream("x").random(4)
        fork_b = RandomStreams(seed=1).fork(7).stream("x").random(4)
        assert list(fork_a) == list(fork_b)
        assert list(fork_a) != list(base.stream("x").random(4))

    def test_seed_property(self):
        assert RandomStreams(seed=42).seed == 42
