"""Unit tests for repro.sim.scheduler."""

import numpy as np
import pytest

from repro.errors import EnclaveError, SimulationError
from repro.sim.clock import CoreClock, InterruptModel
from repro.sim.ops import Busy, Label, OpResult
from repro.sim.process import ProcessState, SimProcess
from repro.sim.scheduler import Scheduler


def make_clock(core=0):
    return CoreClock(core, interrupts=InterruptModel(rate_per_cycle=0.0), rng=np.random.default_rng(core))


class RecordingExecutor:
    """Executes Busy/Label, recording (name, op, time) in global order."""

    def __init__(self):
        self.log = []
        self.fail_on = None

    def execute(self, process, operation):
        if self.fail_on is not None and self.fail_on(process, operation):
            raise EnclaveError("injected fault")
        self.log.append((process.name, operation, process.clock.now))
        if isinstance(operation, Label):
            return OpResult(latency=0.0)
        return OpResult(latency=float(operation.cycles))


def busy_loop(name, cycles, count):
    for _ in range(count):
        yield Busy(cycles)
    return name


class TestScheduler:
    def test_single_process_runs_to_completion(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 10, 3), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.state is ProcessState.FINISHED
        assert process.result == "a"
        assert len(executor.log) == 3

    def test_interleaves_by_global_time(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        fast = SimProcess("fast", busy_loop("fast", 10, 6), make_clock(0))
        slow = SimProcess("slow", busy_loop("slow", 35, 2), make_clock(1))
        scheduler.add(fast)
        scheduler.add(slow)
        scheduler.run()
        times = [entry[2] for entry in executor.log]
        assert times == sorted(times)
        names = [entry[0] for entry in executor.log]
        # fast executes several ops before slow's second op
        assert names.count("fast") == 6 and names.count("slow") == 2

    def test_clock_advances_by_latency(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 100, 2), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.clock.now == pytest.approx(200.0)

    def test_run_until_pauses_and_resumes(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 100, 5), make_clock())
        scheduler.add(process)
        scheduler.run(until=250)
        assert process.state is not ProcessState.FINISHED
        scheduler.run()
        assert process.state is ProcessState.FINISHED

    def test_operation_budget_guards_infinite_loops(self):
        def spinner():
            while True:
                yield Busy(1)

        executor = RecordingExecutor()
        scheduler = Scheduler(executor, max_ops=100)
        scheduler.add(SimProcess("spin", spinner(), make_clock()))
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_enclave_error_thrown_into_generator(self):
        def body(caught):
            try:
                yield Busy(1)
            except EnclaveError:
                caught.append(True)
            yield Busy(2)
            return "ok"

        caught = []
        executor = RecordingExecutor()
        executor.fail_on = lambda proc, op: isinstance(op, Busy) and op.cycles == 1
        scheduler = Scheduler(executor)
        process = SimProcess("e", body(caught), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert caught == [True]
        assert process.result == "ok"

    def test_uncaught_enclave_error_propagates(self):
        def body():
            yield Busy(1)

        executor = RecordingExecutor()
        executor.fail_on = lambda proc, op: True
        scheduler = Scheduler(executor)
        process = SimProcess("e", body(), make_clock())
        scheduler.add(process)
        with pytest.raises(EnclaveError):
            scheduler.run()
        assert process.state is ProcessState.FAILED

    def test_label_costs_no_time(self):
        def body():
            yield Label("marker")
            yield Busy(10)

        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", body(), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.clock.now == pytest.approx(10.0)

    def test_total_ops_counted(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        scheduler.add(SimProcess("a", busy_loop("a", 1, 4), make_clock()))
        scheduler.run()
        assert scheduler.total_ops == 4

    def test_processes_property(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 1, 1), make_clock())
        scheduler.add(process)
        assert scheduler.processes == [process]


class TestPendingOperationSlot:
    """Regression: the one-slot lookahead lives on the process itself.

    The scheduler used to stash the looked-ahead operation in a dict keyed
    by ``id(process)`` — ids are reused once an object is garbage
    collected, so a stale entry could be delivered to an unrelated process
    that happened to land on the same id.  Storing the operation in
    ``SimProcess.pending_op`` ties its lifetime to the process.
    """

    def test_pending_op_held_on_process_between_steps(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        a = SimProcess("a", busy_loop("a", 10, 3), make_clock(0))
        b = SimProcess("b", busy_loop("b", 10, 3), make_clock(1))
        scheduler.add(a)
        scheduler.add(b)
        scheduler.run(until=5)
        # Both processes were stepped once and their next op is parked on
        # the process object, not in any scheduler-side registry.
        assert isinstance(a.pending_op, Busy)
        assert isinstance(b.pending_op, Busy)
        assert not hasattr(scheduler, "_pending")

    def test_no_cross_talk_between_generations_of_processes(self):
        # Run many short-lived processes while dropping every reference so
        # ids can be reused; each generation must see only its own ops.
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        for generation in range(50):
            process = SimProcess(f"g{generation}", busy_loop(f"g{generation}", 1, 2), make_clock())
            scheduler.add(process)
            scheduler.run()
            assert process.state is ProcessState.FINISHED
            assert process.result == f"g{generation}"
            assert process.pending_op is None
            del process
        names = [entry[0] for entry in executor.log]
        assert names == [f"g{g}" for g in range(50) for _ in range(2)]

    def test_fresh_process_starts_with_empty_slot(self):
        process = SimProcess("a", busy_loop("a", 1, 1), make_clock())
        assert process.pending_op is None


class TestSingleRunnableFastPath:
    """The heap-free loop for the common one-process tail."""

    def test_lone_process_completes(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("solo", busy_loop("solo", 5, 100), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.state is ProcessState.FINISHED
        assert len(executor.log) == 100
        assert process.clock.now == pytest.approx(500.0)

    def test_spawn_during_fast_loop_restores_interleaving(self):
        # A process added mid-run (by the executor, like Machine.spawn)
        # must not be lost, and global-time order must hold afterwards.
        spawned = SimProcess("child", busy_loop("child", 10, 4), make_clock(1))

        class SpawningExecutor(RecordingExecutor):
            def __init__(self):
                super().__init__()
                self.spawned = False

            def execute(self, process, operation):
                result = super().execute(process, operation)
                if not self.spawned and len(self.log) == 3:
                    self.spawned = True
                    scheduler.add(spawned)
                return result

        executor = SpawningExecutor()
        scheduler = Scheduler(executor)
        parent = SimProcess("parent", busy_loop("parent", 10, 8), make_clock(0))
        scheduler.add(parent)
        scheduler.run()
        assert parent.state is ProcessState.FINISHED
        assert spawned.state is ProcessState.FINISHED
        # The child joins with its clock at 0 while the parent is at 30, so
        # from the spawn point onwards the scheduler must merge by time.
        times = [entry[2] for entry in executor.log]
        assert times[3:] == sorted(times[3:])
        names = [entry[0] for entry in executor.log]
        assert names.count("parent") == 8 and names.count("child") == 4
        assert names[3] == "child"  # child's clock (0) precedes parent's (30)

    def test_budget_enforced_on_fast_path(self):
        def spinner():
            while True:
                yield Busy(1)

        scheduler = Scheduler(RecordingExecutor(), max_ops=100)
        scheduler.add(SimProcess("spin", spinner(), make_clock()))
        with pytest.raises(SimulationError):
            scheduler.run()


class TestPerfAccounting:
    def test_ops_per_second_zero_before_running(self):
        scheduler = Scheduler(RecordingExecutor())
        assert scheduler.ops_per_second == 0.0
        assert scheduler.wall_seconds == 0.0

    def test_wall_clock_and_rate_after_run(self):
        scheduler = Scheduler(RecordingExecutor())
        scheduler.add(SimProcess("a", busy_loop("a", 1, 500), make_clock()))
        scheduler.run()
        assert scheduler.wall_seconds > 0.0
        assert scheduler.ops_per_second == pytest.approx(
            scheduler.total_ops / scheduler.wall_seconds
        )
