"""Unit tests for repro.sim.scheduler."""

import numpy as np
import pytest

from repro.errors import EnclaveError, SimulationError
from repro.sim.clock import CoreClock, InterruptModel
from repro.sim.ops import Busy, Label, OpResult
from repro.sim.process import ProcessState, SimProcess
from repro.sim.scheduler import Scheduler


def make_clock(core=0):
    return CoreClock(core, interrupts=InterruptModel(rate_per_cycle=0.0), rng=np.random.default_rng(core))


class RecordingExecutor:
    """Executes Busy/Label, recording (name, op, time) in global order."""

    def __init__(self):
        self.log = []
        self.fail_on = None

    def execute(self, process, operation):
        if self.fail_on is not None and self.fail_on(process, operation):
            raise EnclaveError("injected fault")
        self.log.append((process.name, operation, process.clock.now))
        if isinstance(operation, Label):
            return OpResult(latency=0.0)
        return OpResult(latency=float(operation.cycles))


def busy_loop(name, cycles, count):
    for _ in range(count):
        yield Busy(cycles)
    return name


class TestScheduler:
    def test_single_process_runs_to_completion(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 10, 3), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.state is ProcessState.FINISHED
        assert process.result == "a"
        assert len(executor.log) == 3

    def test_interleaves_by_global_time(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        fast = SimProcess("fast", busy_loop("fast", 10, 6), make_clock(0))
        slow = SimProcess("slow", busy_loop("slow", 35, 2), make_clock(1))
        scheduler.add(fast)
        scheduler.add(slow)
        scheduler.run()
        times = [entry[2] for entry in executor.log]
        assert times == sorted(times)
        names = [entry[0] for entry in executor.log]
        # fast executes several ops before slow's second op
        assert names.count("fast") == 6 and names.count("slow") == 2

    def test_clock_advances_by_latency(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 100, 2), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.clock.now == pytest.approx(200.0)

    def test_run_until_pauses_and_resumes(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 100, 5), make_clock())
        scheduler.add(process)
        scheduler.run(until=250)
        assert process.state is not ProcessState.FINISHED
        scheduler.run()
        assert process.state is ProcessState.FINISHED

    def test_operation_budget_guards_infinite_loops(self):
        def spinner():
            while True:
                yield Busy(1)

        executor = RecordingExecutor()
        scheduler = Scheduler(executor, max_ops=100)
        scheduler.add(SimProcess("spin", spinner(), make_clock()))
        with pytest.raises(SimulationError):
            scheduler.run()

    def test_enclave_error_thrown_into_generator(self):
        def body(caught):
            try:
                yield Busy(1)
            except EnclaveError:
                caught.append(True)
            yield Busy(2)
            return "ok"

        caught = []
        executor = RecordingExecutor()
        executor.fail_on = lambda proc, op: isinstance(op, Busy) and op.cycles == 1
        scheduler = Scheduler(executor)
        process = SimProcess("e", body(caught), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert caught == [True]
        assert process.result == "ok"

    def test_uncaught_enclave_error_propagates(self):
        def body():
            yield Busy(1)

        executor = RecordingExecutor()
        executor.fail_on = lambda proc, op: True
        scheduler = Scheduler(executor)
        process = SimProcess("e", body(), make_clock())
        scheduler.add(process)
        with pytest.raises(EnclaveError):
            scheduler.run()
        assert process.state is ProcessState.FAILED

    def test_label_costs_no_time(self):
        def body():
            yield Label("marker")
            yield Busy(10)

        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", body(), make_clock())
        scheduler.add(process)
        scheduler.run()
        assert process.clock.now == pytest.approx(10.0)

    def test_total_ops_counted(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        scheduler.add(SimProcess("a", busy_loop("a", 1, 4), make_clock()))
        scheduler.run()
        assert scheduler.total_ops == 4

    def test_processes_property(self):
        executor = RecordingExecutor()
        scheduler = Scheduler(executor)
        process = SimProcess("a", busy_loop("a", 1, 1), make_clock())
        scheduler.add(process)
        assert scheduler.processes == [process]
