"""Unit tests for experiment result dataclasses (no simulation needed)."""

import math

import pytest

from repro.core.metrics import ChannelMetrics
from repro.experiments.figure6 import Figure6Result
from repro.experiments.figure7 import Figure7Result, WindowPoint
from repro.experiments.headline import HeadlineResult


def metrics(bits=100, errors=0, window=15000):
    sent = [0] * bits
    received = [1] * errors + [0] * (bits - errors)
    return ChannelMetrics.from_bits(sent, received, window, 4.2e9)


class TestFigure7Result:
    def _result(self, rates):
        points = tuple(
            WindowPoint(window_cycles=w, metrics=metrics(bits=1000, errors=int(1000 * e), window=w))
            for w, e in rates.items()
        )
        return Figure7Result(points=points, bits_per_window=1000)

    def test_best_point(self):
        result = self._result({7500: 0.3, 10000: 0.05, 15000: 0.01})
        assert result.best_point().window_cycles == 15000

    def test_knee_ratio(self):
        result = self._result({7500: 0.30, 10000: 0.05})
        assert result.knee_ratio() == pytest.approx(6.0)

    def test_knee_ratio_missing_windows(self):
        result = self._result({15000: 0.01})
        assert math.isnan(result.knee_ratio())

    def test_knee_ratio_zero_denominator(self):
        result = self._result({7500: 0.3, 10000: 0.0})
        assert math.isnan(result.knee_ratio())


class TestHeadlineResult:
    def test_bit_rate_band(self):
        result = HeadlineResult(metrics=metrics(window=15000), window_cycles=15000)
        assert result.bit_rate_matches

    def test_bit_rate_mismatch(self):
        result = HeadlineResult(metrics=metrics(window=30000), window_cycles=30000)
        assert not result.bit_rate_matches

    def test_error_band(self):
        good = HeadlineResult(metrics=metrics(bits=1000, errors=17), window_cycles=15000)
        assert good.error_rate_comparable
        bad = HeadlineResult(metrics=metrics(bits=10, errors=5), window_cycles=15000)
        assert not bad.error_rate_comparable


class TestFigure6Result:
    def _channel_result(self, errors, bits=40):
        from repro.core.channel import ChannelResult

        sent = [0] * bits
        received = [1] * errors + [0] * (bits - errors)
        return ChannelResult(
            sent=sent, received=received, probe_times=[500.0] * bits,
            window_cycles=15000, clock_hz=4.2e9,
        )

    def _pp_result(self, errors, bits=40):
        from repro.core.primeprobe import PrimeProbeResult

        sent = [0] * bits
        received = [1] * errors + [0] * (bits - errors)
        return PrimeProbeResult(
            sent=sent, received=received, probe_times=[4000.0] * bits,
            window_cycles=15000, clock_hz=4.2e9, threshold=4100.0,
            idle_probe_times=[4000.0] * 8,
        )

    def test_verdicts(self):
        result = Figure6Result(
            prime_probe=self._pp_result(errors=8), this_work=self._channel_result(errors=0)
        )
        assert result.prime_probe_failed
        assert result.this_work_succeeded

    def test_inverted_verdicts(self):
        result = Figure6Result(
            prime_probe=self._pp_result(errors=0), this_work=self._channel_result(errors=20)
        )
        assert not result.prime_probe_failed
        assert not result.this_work_succeeded
