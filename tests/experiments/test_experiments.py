"""Smoke + shape tests for the per-figure experiment harnesses.

Sizes are scaled down from the benchmark defaults; the assertions check
the *shape* claims of each figure, the same ones EXPERIMENTS.md records.
"""

import pytest

from repro.experiments import (
    ablations,
    algorithm1,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    headline,
)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(seed=11, samples=80)

    def test_rdtsc_faults_in_enclave(self, result):
        assert result.rdtsc_faulted_in_enclave

    def test_ocall_in_paper_range(self, result):
        ocall = next(r for r in result.rows if r.mechanism.startswith("ocall"))
        assert 8000 <= ocall.stats.mean <= 15000

    def test_counter_thread_about_50_cycles(self, result):
        counter = next(r for r in result.rows if "counter" in r.mechanism)
        assert 30 <= counter.stats.mean <= 80

    def test_render(self, result):
        text = figure2.render(result)
        assert "FAULTS" in text and "confirmed" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(seed=11, sizes=(4, 16, 64), trials=30)

    def test_probability_increases(self, result):
        probabilities = result.curve.probabilities
        assert probabilities[-1] > probabilities[0]

    def test_saturates_at_64(self, result):
        assert result.curve.probabilities[-1] >= 0.9

    def test_capacity_inference(self, result):
        assert result.inferred_capacity_bytes == 64 * 1024

    def test_render(self, result):
        assert "64 KB" in figure4.render(result)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(seed=11, accesses_per_stride=300)

    def test_all_levels_observed(self, result):
        assert set(result.level_stats) == {"versions", "level0", "level1", "level2", "root"}

    def test_level_medians_ordered(self, result):
        order = ["versions", "level0", "level1", "level2", "root"]
        medians = [result.level_stats[level].median for level in order]
        assert medians == sorted(medians)

    def test_anchor_values(self, result):
        assert result.versions_hit_estimate == pytest.approx(480, abs=30)
        assert result.versions_miss_estimate == pytest.approx(750, abs=30)
        assert result.hit_miss_gap >= 240

    def test_l2_root_gap_smallest(self, result):
        order = ["versions", "level0", "level1", "level2", "root"]
        medians = [result.level_stats[level].median for level in order]
        gaps = [b - a for a, b in zip(medians, medians[1:])]
        assert gaps[-1] == min(gaps)

    def test_small_strides_mostly_low_levels(self, result):
        # 64 B stride: dominated by versions hits.
        import numpy as np

        small = np.median(result.stride_samples[64])
        large = np.median(result.stride_samples[256 * 1024])
        assert small < large

    def test_render(self, result):
        text = figure5.render(result)
        assert "versions" in text and "gap" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(seed=11, windows=(7500, 10000, 15000), bits_per_window=260)

    def test_error_knee_between_7500_and_10000(self, result):
        rates = {p.window_cycles: p.metrics.error_rate for p in result.points}
        assert rates[7500] > rates[10000] * 3  # paper: 34% vs 5.2%
        assert rates[7500] > 0.15

    def test_window_15000_near_paper_error(self, result):
        rates = {p.window_cycles: p.metrics.error_rate for p in result.points}
        assert rates[15000] < 0.06

    def test_bit_rate_inverse_in_window(self, result):
        rates = [p.metrics.bit_rate for p in result.points]
        assert rates == sorted(rates, reverse=True)

    def test_render(self, result):
        assert "35" in figure7.render(result)


class TestHeadline:
    def test_headline_reproduces(self):
        result = headline.run(seed=12, bits=700)
        assert result.metrics.bit_rate == pytest.approx(35.0, rel=0.01)
        assert result.metrics.error_rate < 0.05
        assert result.bit_rate_matches
        assert result.error_rate_comparable

    def test_render(self):
        result = headline.run(seed=13, bits=200)
        assert "KBps" in headline.render(result)


class TestAlgorithm1Experiment:
    def test_full_geometry_recovered(self):
        result = algorithm1.run(seed=14, capacity_trials=30)
        assert result.capacity_bytes == 64 * 1024
        assert result.associativity == 8
        assert result.num_sets == 128

    def test_render(self):
        result = algorithm1.run(seed=15, capacity_trials=20)
        text = algorithm1.render(result)
        assert "128" in text and "recovered" in text
