"""Unit tests for the parallel trial runner."""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.runner import (
    JOBS_ENV_VAR,
    TrialFailure,
    derive_seeds,
    resolve_jobs,
    run_trials,
    run_trials_robust,
)


def _square(value: int) -> int:
    """Module-level so worker processes can import it."""
    return value * value


def _identify(value: int):
    return (os.getpid(), value)


def _explode_on_odd(seed: int) -> int:
    """Module-level crashing trial for error-handling tests."""
    if seed % 2:
        raise RuntimeError(f"seed {seed} is odd")
    return seed * 10


def _sleep_on_odd(seed: int) -> int:
    if seed % 2:
        time.sleep(60.0)
    return seed * 10


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(42, 8) == derive_seeds(42, 8)

    def test_distinct_within_a_sweep(self):
        seeds = derive_seeds(42, 64)
        assert len(set(seeds)) == 64

    def test_root_seed_matters(self):
        assert derive_seeds(1, 8) != derive_seeds(2, 8)

    def test_prefix_stable(self):
        # Growing a sweep keeps the already-run trials' seeds.
        assert derive_seeds(7, 16)[:8] == derive_seeds(7, 8)

    def test_count_validation(self):
        assert derive_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_zero_means_all_cores(self, monkeypatch):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        assert resolve_jobs(None) == (os.cpu_count() or 1)


class TestRunTrials:
    def test_serial_matches_list_comprehension(self):
        seeds = list(range(10))
        assert run_trials(_square, seeds, jobs=1) == [s * s for s in seeds]

    def test_adaptive_chunking_matches_serial(self):
        # Enough trials that the adaptive default batches them (>1 per
        # chunk); order and values must still match the serial run.
        seeds = list(range(100))
        expected = [s * s for s in seeds]
        assert run_trials(_square, seeds, jobs=2) == expected
        assert run_trials(_square, seeds, jobs=2, chunksize=16) == expected

    def test_parallel_matches_serial_in_order(self):
        seeds = list(range(10))
        assert run_trials(_square, seeds, jobs=4) == [s * s for s in seeds]

    def test_parallel_uses_worker_processes(self):
        results = run_trials(_identify, list(range(8)), jobs=4)
        pids = {pid for pid, _ in results}
        assert os.getpid() not in pids

    def test_single_trial_runs_in_process(self):
        [(pid, _)] = run_trials(_identify, [1], jobs=4)
        assert pid == os.getpid()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        results = run_trials(_identify, list(range(4)))
        assert [value for _, value in results] == [0, 1, 2, 3]
        assert os.getpid() not in {pid for pid, _ in results}

    def test_empty_seed_list(self):
        assert run_trials(_square, [], jobs=4) == []


class TestErrorRecording:
    def test_raise_is_the_default(self):
        with pytest.raises(RuntimeError):
            run_trials(_explode_on_odd, [0, 1, 2], jobs=1)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_square, [1], on_error="ignore")

    def test_record_keeps_the_rest_of_the_sweep_serial(self):
        results = run_trials(_explode_on_odd, [0, 1, 2, 3], jobs=1, on_error="record")
        assert results[0] == 0
        assert results[2] == 20
        for slot, seed in ((1, 1), (3, 3)):
            failure = results[slot]
            assert isinstance(failure, TrialFailure)
            assert failure.seed == seed
            assert failure.error_type == "RuntimeError"
            assert f"seed {seed} is odd" in failure.message
            assert "_explode_on_odd" in failure.traceback

    def test_record_keeps_the_rest_of_the_sweep_parallel(self):
        # The regression this feature exists for: Pool.map re-raising one
        # worker's exception used to lose every completed sibling trial.
        results = run_trials(
            _explode_on_odd, [0, 1, 2, 3, 4, 5], jobs=3, on_error="record"
        )
        assert [r for r in results if not isinstance(r, TrialFailure)] == [0, 20, 40]
        assert [r.seed for r in results if isinstance(r, TrialFailure)] == [1, 3, 5]

    def test_failure_record_roundtrips_through_json(self):
        [failure] = run_trials(_explode_on_odd, [7], jobs=1, on_error="record")
        restored = TrialFailure.from_dict(failure.to_dict())
        assert restored == failure
        assert failure.to_dict()["__trial_failure__"] is True


_WORKER_ATTEMPTS: dict = {}


def _fail_first_attempt(seed: int) -> int:
    """Fails the first time a given worker process sees a seed.

    Succeeding on retry therefore requires the retry round to land in the
    *same* worker process — i.e. the pool must be reused across rounds.
    A fresh pool per round (the old behavior) forks a clean process whose
    attempt count restarts at zero, so every retry fails identically.
    """
    count = _WORKER_ATTEMPTS.get(seed, 0) + 1
    _WORKER_ATTEMPTS[seed] = count
    if count == 1:
        raise RuntimeError(f"flaky first attempt for seed {seed}")
    return seed * 7


class TestRunTrialsRobust:
    def test_matches_run_trials_when_nothing_fails(self):
        seeds = list(range(6))
        assert run_trials_robust(_square, seeds, jobs=1) == [s * s for s in seeds]

    def test_pool_reused_across_retry_rounds(self):
        # timeout_seconds forces the pooled path even at jobs=1; with
        # max_attempts=2 the retry only succeeds if round 2 reaches the
        # same worker process that failed in round 1.
        results = run_trials_robust(
            _fail_first_attempt,
            [3],
            jobs=1,
            timeout_seconds=60.0,
            max_attempts=2,
        )
        assert results == [21]

    def test_retries_exhaust_to_failure_record(self):
        results = run_trials_robust(_explode_on_odd, [1, 2], jobs=1, max_attempts=3)
        failure, ok = results
        assert isinstance(failure, TrialFailure)
        assert failure.attempts == 3
        assert ok == 20

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            run_trials_robust(_square, [1], max_attempts=0)

    def test_timeout_records_timed_out_failure(self):
        results = run_trials_robust(
            _sleep_on_odd, [1, 2], jobs=2, timeout_seconds=2.0, max_attempts=1
        )
        failure, ok = results
        assert isinstance(failure, TrialFailure)
        assert failure.timed_out
        assert failure.error_type == "TrialTimeoutError"
        assert ok == 20

    def test_checkpoint_resume_skips_completed_trials(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        seeds = [0, 2, 4]
        first = run_trials_robust(_square, seeds, jobs=1, checkpoint_path=path)
        assert first == [0, 4, 16]
        # Re-running with a function that would produce *different* values
        # proves the results came from the checkpoint, not a recompute.
        resumed = run_trials_robust(
            _explode_on_odd, seeds, jobs=1, checkpoint_path=path
        )
        assert resumed == first

    def test_checkpoint_persists_failures(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        first = run_trials_robust(
            _explode_on_odd, [1], jobs=1, max_attempts=1, checkpoint_path=path
        )
        resumed = run_trials_robust(
            _square, [1], jobs=1, checkpoint_path=path
        )
        assert isinstance(resumed[0], TrialFailure)
        assert resumed == first

    def test_stale_checkpoint_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        run_trials_robust(_square, [0, 1], jobs=1, checkpoint_path=path)
        # Different seed list: the file must not poison the new sweep.
        results = run_trials_robust(_square, [0, 1, 2], jobs=1, checkpoint_path=path)
        assert results == [0, 1, 4]


class TestCheckpointHardening:
    """A corrupt checkpoint must warn and fall back to a fresh sweep."""

    def _sweep(self, path, seeds=(0, 2, 4)):
        return run_trials_robust(_square, list(seeds), jobs=1, checkpoint_path=path)

    def test_truncated_json_discarded_with_warning(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        self._sweep(path)
        with open(path, "w") as handle:
            handle.write('{"seeds": [0, 2, 4], "resul')
        with pytest.warns(RuntimeWarning, match="truncated"):
            assert self._sweep(path) == [0, 4, 16]

    def test_non_dict_payload_discarded(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        with open(path, "w") as handle:
            handle.write('[1, 2, 3]')
        with pytest.warns(RuntimeWarning, match="layout"):
            assert self._sweep(path) == [0, 4, 16]

    def test_checksum_mismatch_discarded(self, tmp_path):
        import json as json_module

        path = str(tmp_path / "sweep.json")
        self._sweep(path)
        with open(path) as handle:
            data = json_module.load(handle)
        data["results"]["0"] = 999  # tamper without fixing the checksum
        with open(path, "w") as handle:
            json_module.dump(data, handle)
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert self._sweep(path) == [0, 4, 16]

    def test_unknown_version_discarded(self, tmp_path):
        import json as json_module

        path = str(tmp_path / "sweep.json")
        self._sweep(path)
        with open(path) as handle:
            data = json_module.load(handle)
        data["version"] = 99
        with open(path, "w") as handle:
            json_module.dump(data, handle)
        with pytest.warns(RuntimeWarning, match="version"):
            assert self._sweep(path) == [0, 4, 16]

    def test_malformed_trial_records_discarded(self, tmp_path):
        import json as json_module
        from repro.experiments.runner import _checkpoint_checksum

        path = str(tmp_path / "sweep.json")
        seeds = [0, 2, 4]
        results = {"not-an-int": 1}
        with open(path, "w") as handle:
            json_module.dump(
                {
                    "version": 1,
                    "seeds": seeds,
                    "results": results,
                    "checksum": _checkpoint_checksum(seeds, results),
                },
                handle,
            )
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert self._sweep(path) == [0, 4, 16]

    def test_legacy_checkpoint_without_version_still_loads(self, tmp_path):
        import json as json_module

        path = str(tmp_path / "sweep.json")
        with open(path, "w") as handle:
            json_module.dump(
                {"seeds": [0, 2, 4], "results": {"0": 123}}, handle
            )
        # Pre-versioning files (no version/checksum fields) remain usable.
        assert self._sweep(path) == [123, 4, 16]


class TestTrialSnapshotSlot:
    def test_absent_slot_loads_none(self, tmp_path):
        from repro.experiments.runner import TrialSnapshotSlot

        assert TrialSnapshotSlot(str(tmp_path / "missing.json")).load() is None

    def test_save_load_clear_roundtrip(self, tmp_path):
        from repro.experiments.runner import TrialSnapshotSlot

        slot = TrialSnapshotSlot(str(tmp_path / "slot.json"))
        payload = {
            "__machine_snapshot__": True,
            "version": 1,
            "seed": 7,
            "fingerprint": "abc",
            "state": {},
        }
        slot.save(payload, progress={"next_unit": 5})
        loaded = slot.load()
        assert loaded["seed"] == 7
        assert loaded["progress"] == {"next_unit": 5}
        slot.clear()
        slot.clear()  # idempotent
        assert slot.load() is None

    def test_unreadable_slot_warns_and_loads_none(self, tmp_path):
        from repro.experiments.runner import TrialSnapshotSlot

        slot = TrialSnapshotSlot(str(tmp_path / "slot.json"))
        with open(slot.path, "w") as handle:
            handle.write("not json{")
        with pytest.warns(RuntimeWarning, match="truncated"):
            assert slot.load() is None

    def test_foreign_json_warns_and_loads_none(self, tmp_path):
        from repro.experiments.runner import TrialSnapshotSlot

        slot = TrialSnapshotSlot(str(tmp_path / "slot.json"))
        with open(slot.path, "w") as handle:
            handle.write('{"some": "file"}')
        with pytest.warns(RuntimeWarning, match="not a machine"):
            assert slot.load() is None

    def test_slot_is_picklable(self, tmp_path):
        import pickle
        from repro.experiments.runner import TrialSnapshotSlot

        slot = TrialSnapshotSlot(str(tmp_path / "slot.json"))
        assert pickle.loads(pickle.dumps(slot)).path == slot.path
