"""Unit tests for the parallel trial runner."""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import JOBS_ENV_VAR, derive_seeds, resolve_jobs, run_trials


def _square(value: int) -> int:
    """Module-level so worker processes can import it."""
    return value * value


def _identify(value: int):
    return (os.getpid(), value)


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(42, 8) == derive_seeds(42, 8)

    def test_distinct_within_a_sweep(self):
        seeds = derive_seeds(42, 64)
        assert len(set(seeds)) == 64

    def test_root_seed_matters(self):
        assert derive_seeds(1, 8) != derive_seeds(2, 8)

    def test_prefix_stable(self):
        # Growing a sweep keeps the already-run trials' seeds.
        assert derive_seeds(7, 16)[:8] == derive_seeds(7, 8)

    def test_count_validation(self):
        assert derive_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_serial_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestRunTrials:
    def test_serial_matches_list_comprehension(self):
        seeds = list(range(10))
        assert run_trials(_square, seeds, jobs=1) == [s * s for s in seeds]

    def test_parallel_matches_serial_in_order(self):
        seeds = list(range(10))
        assert run_trials(_square, seeds, jobs=4) == [s * s for s in seeds]

    def test_parallel_uses_worker_processes(self):
        results = run_trials(_identify, list(range(8)), jobs=4)
        pids = {pid for pid, _ in results}
        assert os.getpid() not in pids

    def test_single_trial_runs_in_process(self):
        [(pid, _)] = run_trials(_identify, [1], jobs=4)
        assert pid == os.getpid()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        results = run_trials(_identify, list(range(4)))
        assert [value for _, value in results] == [0, 1, 2, 3]
        assert os.getpid() not in {pid for pid, _ in results}

    def test_empty_seed_list(self):
        assert run_trials(_square, [], jobs=4) == []
