"""Tests for the coding sweep: aggregation, rendering, and a smoke run.

The full sweep takes minutes, so the end-to-end runs carry the ``slow``
marker (excluded by default; CI's coding-sweep job runs a trimmed one).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.robustness import (
    CodingFrontierPoint,
    aggregate_coding_point,
    render_coding_frontier,
)
from repro.experiments import coding_sweep


def _arq_dict(
    goodput=8.0,
    delivered=True,
    fer=0.0,
    fec_saves=0,
    arq_saves=0,
    retransmissions=0,
):
    return {
        "goodput_kbps": goodput,
        "delivered": delivered,
        "frame_error_rate": fer,
        "fec_corrected_frames": fec_saves,
        "arq_recovered_frames": arq_saves,
        "retransmissions": retransmissions,
    }


def _fec_dict(residual_ber=0.0, raw_ber=0.01, expansion=1.33):
    return {
        "residual_ber": residual_ber,
        "raw_ber": raw_ber,
        "expansion": expansion,
    }


def _record(fec, arq):
    return {"seed": 1, "stack": "rs", "intensity": 1.0, "fec": fec, "arq": arq}


class TestAggregation:
    def test_empty_trial_set_rejected(self):
        with pytest.raises(ValueError):
            aggregate_coding_point("rs", 1.0, [])

    def test_means_across_trials(self):
        records = [
            _record(_fec_dict(residual_ber=0.0), _arq_dict(goodput=6.0)),
            _record(_fec_dict(residual_ber=0.02), _arq_dict(goodput=8.0)),
        ]
        point = aggregate_coding_point("rs", 1.0, records)
        assert point.trials == 2
        assert point.residual_ber == pytest.approx(0.01)
        assert point.goodput_kbps == pytest.approx(7.0)
        assert point.delivery_rate == pytest.approx(1.0)

    def test_adaptive_has_no_fec_phase(self):
        # The adaptive policy exists only at the ARQ layer; phase-A fields
        # aggregate to NaN rather than a misleading zero.
        records = [_record(None, _arq_dict())]
        point = aggregate_coding_point("adaptive", 1.0, records)
        assert math.isnan(point.residual_ber)
        assert math.isnan(point.raw_ber)
        assert math.isnan(point.expansion)
        assert point.goodput_kbps == pytest.approx(8.0)

    def test_recovery_split_propagates(self):
        records = [
            _record(None, _arq_dict(fec_saves=3, arq_saves=1)),
            _record(None, _arq_dict(fec_saves=1, arq_saves=3)),
        ]
        point = aggregate_coding_point("rs", 3.0, records)
        assert point.fec_corrected_frames == pytest.approx(2.0)
        assert point.arq_recovered_frames == pytest.approx(2.0)

    def test_round_trips_through_dict(self):
        point = aggregate_coding_point("rs", 1.0, [_record(_fec_dict(), _arq_dict())])
        rebuilt = CodingFrontierPoint(**point.to_dict())
        assert rebuilt == point


class TestRendering:
    def _points(self):
        raw = aggregate_coding_point(
            "raw", 1.0, [_record(_fec_dict(residual_ber=0.05, expansion=1.0),
                                 _arq_dict(goodput=10.0))]
        )
        coded = aggregate_coding_point(
            "rs", 1.0, [_record(_fec_dict(residual_ber=0.005), _arq_dict())]
        )
        clean = aggregate_coding_point(
            "rs_interleaved", 1.0,
            [_record(_fec_dict(residual_ber=0.0), _arq_dict())],
        )
        return [raw, coded, clean]

    def test_frontier_table_lists_every_stack(self):
        table = render_coding_frontier(self._points())
        for stack in ("raw", "rs", "rs_interleaved"):
            assert stack in table

    def test_coding_gain_headline(self):
        table = render_coding_frontier(self._points())
        assert "coding gain @ intensity 1" in table
        assert "rs 10x" in table  # 0.05 / 0.005
        assert "rs_interleaved clean" in table  # residual driven to zero

    def test_render_reports_adaptive_verdict(self):
        fixed = aggregate_coding_point(
            "rs", 0.0, [_record(_fec_dict(), _arq_dict(goodput=9.0))]
        )
        adaptive = aggregate_coding_point(
            "adaptive", 0.0, [_record(None, _arq_dict(goodput=8.5))]
        )
        result = coding_sweep.CodingSweepResult(
            root_seed=0,
            trials=1,
            payload_bytes=32,
            stacks=["rs", "adaptive"],
            intensities=[0.0],
            points=[fixed, adaptive],
        )
        text = coding_sweep.render(result)
        assert "adaptive @ intensity 0" in text
        assert "best fixed (rs)" in text


@pytest.mark.slow
class TestSmokeRun:
    def test_tiny_sweep_end_to_end(self):
        result = coding_sweep.run(
            seed=11,
            trials=1,
            stacks=("raw", "rs_interleaved", "adaptive"),
            intensities=(0.0,),
            payload=b"smoke test paylod",
        )
        assert len(result.points) == 3
        assert not result.failures
        for key, cell in result.per_trial.items():
            for record in cell:
                assert record["arq"]["integrity_ok"], key
        # Quiet machine: everything delivers, coded residual is clean.
        for point in result.points:
            assert point.delivery_rate == 1.0
        rendered = coding_sweep.render(result)
        assert "adaptive @ intensity 0" in rendered

    def test_same_seed_same_archive(self):
        kwargs = dict(
            seed=11,
            trials=1,
            stacks=("raw", "rs_interleaved"),
            intensities=(0.0,),
            payload=b"determinism!",
        )
        first = coding_sweep.run(**kwargs)
        second = coding_sweep.run(**kwargs, jobs=2)
        # json round-trip so NaN fields (e.g. time_to_recover on clean
        # runs) compare equal instead of poisoning dict equality.
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
