"""Unit tests for the persistent worker pool and adaptive chunking."""

from __future__ import annotations

import os

import pytest

from repro.experiments.pool import (
    CHUNKS_PER_WORKER,
    MAX_CHUNKSIZE,
    POOL_PERSIST_ENV,
    PoolLease,
    _PERSISTENT,
    persistence_enabled,
    pool_stats,
    resolve_chunksize,
    shutdown_persistent_pool,
)
from repro.experiments.runner import run_trials, run_trials_robust


def _pid_trial(seed: int):
    return (os.getpid(), seed)


def _square(seed: int) -> int:
    return seed * seed


@pytest.fixture(autouse=True)
def _clean_pool_state(monkeypatch):
    """Every test starts and ends without a process-wide pool."""
    monkeypatch.delenv(POOL_PERSIST_ENV, raising=False)
    shutdown_persistent_pool()
    yield
    shutdown_persistent_pool()


class TestPersistenceGate:
    def test_off_by_default(self):
        assert not persistence_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(POOL_PERSIST_ENV, value)
        assert persistence_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "", "2"])
    def test_other_values_stay_off(self, monkeypatch, value):
        monkeypatch.setenv(POOL_PERSIST_ENV, value)
        assert not persistence_enabled()


class TestResolveChunksize:
    def test_explicit_wins(self):
        assert resolve_chunksize(1000, 4, chunksize=7) == 7

    def test_explicit_validated(self):
        with pytest.raises(ValueError):
            resolve_chunksize(10, 2, chunksize=0)

    def test_small_sweeps_stay_at_one(self):
        # The figure sweeps: a handful of long trials — chunking would
        # serialize them onto too few workers.
        assert resolve_chunksize(7, 4) == 1
        assert resolve_chunksize(4 * CHUNKS_PER_WORKER, 4) == 1

    def test_large_sweeps_batch(self):
        assert resolve_chunksize(128, 2) == 128 // (2 * CHUNKS_PER_WORKER)

    def test_capped(self):
        assert resolve_chunksize(10_000_000, 2) == MAX_CHUNKSIZE

    def test_serial_is_one(self):
        assert resolve_chunksize(1000, 1) == 1


class TestPoolLease:
    def test_per_call_lease_tears_down(self):
        lease = PoolLease(2, persist=False)
        pool = lease.pool
        assert pool is lease.pool  # same pool within the lease
        lease.release()
        assert _PERSISTENT["pool"] is None

    def test_persistent_lease_survives_release(self):
        lease = PoolLease(2, persist=True)
        pool = lease.pool
        lease.release()
        assert _PERSISTENT["pool"] is pool
        second = PoolLease(2, persist=True)
        assert second.pool is pool
        second.release()

    def test_jobs_mismatch_rebuilds(self):
        first = PoolLease(2, persist=True)
        pool = first.pool
        first.release()
        second = PoolLease(3, persist=True)
        assert second.pool is not pool
        second.release()

    def test_invalidate_clears_global(self):
        lease = PoolLease(2, persist=True)
        pool = lease.pool
        lease.invalidate()
        assert _PERSISTENT["pool"] is None
        assert lease.pool is not pool  # rebuilt on demand
        lease.release()

    def test_exception_in_with_block_invalidates(self):
        with pytest.raises(RuntimeError):
            with PoolLease(2, persist=True) as lease:
                _ = lease.pool
                raise RuntimeError("sweep crashed")
        assert _PERSISTENT["pool"] is None

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(POOL_PERSIST_ENV, "1")
        assert PoolLease(2).persist
        monkeypatch.delenv(POOL_PERSIST_ENV)
        assert not PoolLease(2).persist

    def test_job_count_validated(self):
        with pytest.raises(ValueError):
            PoolLease(0)


class TestRunTrialsPersistence:
    def test_persistent_pool_reused_across_run_trials(self, monkeypatch):
        monkeypatch.setenv(POOL_PERSIST_ENV, "1")
        before = pool_stats()
        first = run_trials(_pid_trial, list(range(6)), jobs=2)
        second = run_trials(_pid_trial, list(range(6)), jobs=2)
        after = pool_stats()
        assert after["created"] - before["created"] == 1
        assert after["reused"] - before["reused"] >= 1
        # One two-worker pool served both sweeps: at most two distinct
        # worker PIDs across the twelve trials.  (Exact per-sweep PID sets
        # depend on OS scheduling — a one-CPU box may let a single worker
        # drain a whole sweep.)
        pids = {pid for run in (first, second) for pid, _ in run}
        assert len(pids) <= 2

    def test_per_call_pools_when_disabled(self, monkeypatch):
        monkeypatch.delenv(POOL_PERSIST_ENV, raising=False)
        before = pool_stats()
        run_trials(_square, list(range(6)), jobs=2)
        run_trials(_square, list(range(6)), jobs=2)
        after = pool_stats()
        assert after["created"] - before["created"] == 2
        assert _PERSISTENT["pool"] is None

    def test_results_identical_with_and_without_persistence(self, monkeypatch):
        seeds = list(range(12))
        expected = [seed * seed for seed in seeds]
        monkeypatch.setenv(POOL_PERSIST_ENV, "1")
        assert run_trials(_square, seeds, jobs=3) == expected
        monkeypatch.delenv(POOL_PERSIST_ENV)
        assert run_trials(_square, seeds, jobs=3) == expected

    def test_robust_runner_returns_pool_to_global(self, monkeypatch):
        monkeypatch.setenv(POOL_PERSIST_ENV, "1")
        before = pool_stats()
        assert run_trials_robust(
            _square, [1, 2, 3], jobs=2, timeout_seconds=30.0
        ) == [1, 4, 9]
        assert _PERSISTENT["pool"] is not None
        assert run_trials(_square, [4], jobs=2) == [16]  # single trial: serial
        assert run_trials(_square, [4, 5], jobs=2) == [16, 25]
        after = pool_stats()
        assert after["created"] - before["created"] == 1
