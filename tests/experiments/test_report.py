"""Tests for the one-shot report runner."""

from repro.experiments import report


class TestReportPlan:
    def test_plan_covers_every_figure(self):
        plan = report.build_plan(seed=1, quick=True)
        names = [name for name, _ in plan]
        for required in (
            "figure2_timers",
            "figure4_capacity",
            "figure5_latency",
            "figure6_channels",
            "figure7_tradeoff",
            "figure8_noise",
            "headline",
            "algorithm1_geometry",
        ):
            assert required in names

    def test_plan_entries_unique(self):
        plan = report.build_plan(seed=1, quick=False)
        names = [name for name, _ in plan]
        assert len(names) == len(set(names))

    def test_single_runner_produces_text(self, tmp_path):
        plan = dict(report.build_plan(seed=3, quick=True))
        text = plan["figure2_timers"]()
        assert "counter-thread" in text

    def test_run_report_writes_artifacts(self, tmp_path, monkeypatch):
        # Shrink the plan to one cheap experiment to keep the test fast.
        original_plan = report.build_plan

        def tiny_plan(seed, quick):
            full = original_plan(seed, quick)
            return [entry for entry in full if entry[0] == "figure2_timers"]

        monkeypatch.setattr(report, "build_plan", tiny_plan)
        path = report.run_report(seed=2, quick=True, out_dir=str(tmp_path))
        assert path.exists()
        assert (tmp_path / "figure2_timers.txt").exists()
        assert "figure2_timers" in path.read_text()
