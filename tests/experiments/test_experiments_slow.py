"""Slower experiment harness tests (Figures 6 and 8, ablations).

Each figure's *shape claim* is asserted; sizes are trimmed to keep the
suite under control.
"""

import pytest

from repro.experiments import ablations, figure6, figure8


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(seed=21, bits=24, pp_bits=60)

    def test_prime_probe_fails_this_work_succeeds(self, result):
        assert result.prime_probe_failed
        assert result.this_work_succeeded

    def test_probe_cost_asymmetry(self, result):
        # Full-set probe >3500 cycles; single-address probe <1500 cycles.
        assert min(result.prime_probe.probe_times) > 3000
        assert max(result.this_work.probe_times) < 2500

    def test_render(self, result):
        text = figure6.render(result)
        assert "(a)" in text and "(b)" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(seed=22, bit_count=128)

    def test_all_environments_ran(self, result):
        assert set(result.results) == set(figure8.ENVIRONMENTS)
        for channel_result in result.results.values():
            assert len(channel_result.received) == 128

    def test_no_noise_has_few_errors(self, result):
        assert result.error_counts()["no-noise"] <= 5  # paper: 1 of 128

    def test_memory_stress_minimal_impact(self, result):
        counts = result.error_counts()
        assert counts["memory-stress"] <= counts["no-noise"] + 4

    def test_mee_noise_at_least_comparable(self, result):
        # Paper: MEE-stride noise is the only environment that matters
        # (4-5 errors vs 1).  At 128 bits the counts are small; require
        # the combined MEE environments to be no cleaner than no-noise.
        counts = result.error_counts()
        assert counts["mee-512B"] + counts["mee-4KB"] >= counts["no-noise"]

    def test_render(self, result):
        text = figure8.render(result)
        assert "error bits" in text


class TestAblations:
    def test_one_phase_eviction_degrades(self):
        result = ablations.run_two_phase(seed=23, bits=200)
        assert result.one_phase_worse
        assert result.one_phase.error_rate > result.two_phase.error_rate + 0.05

    def test_random_replacement_mitigates(self):
        result = ablations.run_policies(seed=23, bits=120, policies=("rrip", "random"))
        # Either setup fails outright or the channel is much noisier.
        if "random" in result.setup_failures:
            assert True
        else:
            assert (
                result.metrics_by_policy["random"].error_rate
                > result.metrics_by_policy["rrip"].error_rate
            )

    def test_true_lru_attackable(self):
        result = ablations.run_policies(seed=24, bits=120, policies=("lru",))
        assert "lru" not in result.setup_failures
        assert result.metrics_by_policy["lru"].error_rate < 0.15

    def test_tree_plru_fragile_but_not_hardened(self):
        # Across seeds, tree-PLRU sometimes defeats setup and sometimes
        # leaks cleanly — it is not a reliable mitigation.
        outcomes = []
        for seed in (2, 3):
            result = ablations.run_policies(seed=seed, bits=60, policies=("plru",))
            if "plru" in result.setup_failures:
                outcomes.append("failed")
            else:
                outcomes.append(result.metrics_by_policy["plru"].error_rate)
        leaks = [o for o in outcomes if not isinstance(o, str) and o < 0.15]
        assert leaks, f"PLRU never leaked across seeds: {outcomes}"

    def test_repetition_code_cleans_noisy_window(self):
        result = ablations.run_coding(seed=25, data_bits=120, windows=(10000,))
        by_scheme = {row[0]: row for row in result.rows}
        raw_residual = by_scheme["raw"][3]
        repetition_residual = by_scheme["repetition3"][3]
        assert repetition_residual <= raw_residual

    def test_renders(self):
        two_phase = ablations.run_two_phase(seed=26, bits=60)
        assert "eviction sweep" in ablations.render_two_phase(two_phase)
        coding = ablations.run_coding(seed=26, data_bits=40, windows=(15000,))
        assert "scheme" in ablations.render_coding(coding)
        policies = ablations.run_policies(seed=26, bits=60, policies=("rrip",))
        assert "rrip" in ablations.render_policies(policies)
