"""Unit tests for the content-addressed trial cache.

The satellite contract this file pins down: same (fn, config, seed) hits
and returns bit-identical results; changed trial-function source, changed
config, or changed seed each miss; a corrupted entry is detected and
recomputed, never silently returned.
"""

from __future__ import annotations

import functools
import importlib.util
import json
import os
import sys

import pytest

from repro.errors import InvariantViolation
from repro.experiments import accounting
from repro.experiments.cache import (
    CACHE_DIR_ENV,
    TrialCache,
    describe_trial_fn,
    resolve_cache,
)
from repro.experiments.runner import TrialFailure, run_trials


def _double(seed: int) -> int:
    return seed * 2


def _configured(seed: int, offset: int = 0, scale: int = 1) -> int:
    return seed * scale + offset


def _structured(seed: int) -> dict:
    return {"seed": seed, "values": [seed, seed + 1], "nested": {"ok": True}}


def _tupled(seed: int):
    # Tuples do not survive a JSON round-trip: forces the pickle codec.
    return (seed, (seed + 1, seed + 2))


def _explode_on_odd(seed: int) -> int:
    if seed % 2:
        raise RuntimeError(f"seed {seed} is odd")
    return seed * 10


def _unencodable(seed: int):
    return lambda: seed  # neither JSON nor pickle can store this


def _write_module(path, body: str):
    path.write_text(body)
    name = path.stem
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def cache(tmp_path) -> TrialCache:
    return TrialCache(str(tmp_path / "cache"))


class TestKeying:
    def test_same_inputs_same_key(self, cache):
        desc = describe_trial_fn(_double)
        assert cache.key(desc, 7) == cache.key(describe_trial_fn(_double), 7)

    def test_changed_seed_misses(self, cache):
        desc = describe_trial_fn(_double)
        assert cache.key(desc, 7) != cache.key(desc, 8)

    def test_changed_config_misses(self, cache):
        one = describe_trial_fn(functools.partial(_configured, offset=1))
        two = describe_trial_fn(functools.partial(_configured, offset=2))
        assert cache.key(one, 7) != cache.key(two, 7)

    def test_changed_source_misses(self, cache, tmp_path):
        # The real invalidation event: the trial function's body is
        # edited between runs, same module, same qualname, same config.
        module_path = tmp_path / "cached_trial_mod.py"
        module = _write_module(module_path, "def trial(seed):\n    return seed * 2\n")
        key_before = cache.key(describe_trial_fn(module.trial), 7)
        module = _write_module(module_path, "def trial(seed):\n    return seed * 3\n")
        key_after = cache.key(describe_trial_fn(module.trial), 7)
        assert key_before != key_after

    def test_tuple_seed_keys(self, cache):
        desc = describe_trial_fn(_double)
        assert cache.key(desc, ("a", 1, (2, 3))) != cache.key(desc, ("a", 1, (2, 4)))

    def test_unencodable_bound_config_is_uncacheable(self):
        assert describe_trial_fn(functools.partial(_configured, offset=object())) is None


class TestHitPath:
    def test_warm_run_hits_and_is_bit_identical(self, cache):
        seeds = list(range(8))
        cold = run_trials(_structured, seeds, jobs=1, cache=cache)
        warm = run_trials(_structured, seeds, jobs=1, cache=cache)
        assert warm == cold
        assert cache.stats.hits == len(seeds)
        assert cache.stats.stores == len(seeds)

    def test_pickle_codec_round_trips_tuples(self, cache):
        cold = run_trials(_tupled, [1, 2], jobs=1, cache=cache)
        warm = run_trials(_tupled, [1, 2], jobs=1, cache=cache)
        assert warm == cold
        assert isinstance(warm[0], tuple)

    def test_incremental_sweep_computes_only_the_delta(self, cache):
        run_trials(_double, list(range(6)), jobs=1, cache=cache)
        assert cache.stats.stores == 6
        grown = run_trials(_double, list(range(8)), jobs=1, cache=cache)
        assert grown == [seed * 2 for seed in range(8)]
        assert cache.stats.hits == 6
        assert cache.stats.stores == 8  # only the two new trials ran

    def test_parallel_and_serial_share_entries(self, cache):
        cold = run_trials(_double, list(range(6)), jobs=2, cache=cache)
        warm = run_trials(_double, list(range(6)), jobs=1, cache=cache)
        assert warm == cold
        assert cache.stats.hits == 6

    def test_failures_are_not_cached(self, cache):
        first = run_trials(
            _explode_on_odd, [0, 1, 2], jobs=1, on_error="record", cache=cache
        )
        assert isinstance(first[1], TrialFailure)
        assert cache.stats.stores == 2  # the two successes only
        second = run_trials(
            _explode_on_odd, [0, 1, 2], jobs=1, on_error="record", cache=cache
        )
        assert cache.stats.hits == 2  # the failure re-ran
        assert isinstance(second[1], TrialFailure)

    def test_unencodable_results_stay_uncached(self, cache):
        results = run_trials(_unencodable, [1, 2], jobs=1, cache=cache)
        assert results[0]() == 1
        assert cache.stats.stores == 0
        assert cache.stats.uncacheable == 2


class TestCorruption:
    def _entry_paths(self, cache):
        paths = []
        for root, _dirs, files in os.walk(cache.directory):
            paths.extend(os.path.join(root, f) for f in files if f.endswith(".json"))
        return sorted(paths)

    def test_truncated_entry_recomputed(self, cache):
        cold = run_trials(_structured, [5], jobs=1, cache=cache)
        [path] = self._entry_paths(cache)
        with open(path, "w") as handle:
            handle.write('{"__trial_cache_entry__": true, "ver')
        again = run_trials(_structured, [5], jobs=1, cache=cache)
        assert again == cold
        assert cache.stats.corrupt == 1
        # The recompute replaced the bad entry with a valid one.
        with open(path) as handle:
            assert json.load(handle)["__trial_cache_entry__"] is True
        run_trials(_structured, [5], jobs=1, cache=cache)
        assert cache.stats.hits == 1

    def test_tampered_payload_detected_by_checksum(self, cache):
        cold = run_trials(_structured, [5], jobs=1, cache=cache)
        [path] = self._entry_paths(cache)
        with open(path) as handle:
            entry = json.load(handle)
        entry["payload"] = entry["payload"].replace("5", "6")
        with open(path, "w") as handle:
            json.dump(entry, handle)
        again = run_trials(_structured, [5], jobs=1, cache=cache)
        assert again == cold  # recomputed, never the tampered value
        assert cache.stats.corrupt == 1

    def test_wrong_version_discarded(self, cache):
        run_trials(_structured, [5], jobs=1, cache=cache)
        [path] = self._entry_paths(cache)
        with open(path) as handle:
            entry = json.load(handle)
        entry["version"] = 99
        with open(path, "w") as handle:
            json.dump(entry, handle)
        run_trials(_structured, [5], jobs=1, cache=cache)
        assert cache.stats.corrupt == 1
        assert cache.stats.hits == 0


class TestVerification:
    def test_verify_full_fraction_passes_on_honest_cache(self, cache):
        run_trials(_structured, list(range(4)), jobs=1, cache=cache)
        results = run_trials(
            _structured, list(range(4)), jobs=1, cache=cache, cache_verify=1.0
        )
        assert results == [_structured(seed) for seed in range(4)]
        assert cache.stats.verified == 4

    def test_verify_detects_stale_entry(self, cache):
        # A checksum-consistent but *wrong* entry (the checksum guards
        # bit rot, not logic changes): verification must catch it.
        desc = describe_trial_fn(_double)
        key = cache.key(desc, 3)
        cache.store(key, 999, desc)
        with pytest.raises(InvariantViolation, match="bit-identical"):
            run_trials(_double, [3], jobs=1, cache=cache, cache_verify=1.0)

    def test_verify_true_samples_at_least_one(self, cache):
        run_trials(_double, list(range(5)), jobs=1, cache=cache)
        run_trials(_double, list(range(5)), jobs=1, cache=cache, cache_verify=True)
        assert cache.stats.verified >= 1

    def test_sampling_is_deterministic(self, cache):
        desc = describe_trial_fn(_double)
        key = cache.key(desc, 1)
        assert cache.selected_for_verify(key, 0.5) == cache.selected_for_verify(key, 0.5)
        assert cache.selected_for_verify(key, 1.0)
        assert not cache.selected_for_verify(key, 0.0)


class TestSizeCap:
    def test_oldest_entries_evicted(self, tmp_path):
        cache = TrialCache(str(tmp_path / "small"), max_bytes=2000)
        desc = describe_trial_fn(_double)
        keys = [cache.key(desc, seed) for seed in range(12)]
        for index, key in enumerate(keys):
            cache.store(key, index, desc)
            os.utime(cache._entry_path(key), (1000 + index, 1000 + index))
        assert cache.stats.evicted > 0
        hit_new, _ = cache.load(keys[-1])
        assert hit_new  # newest survives

    def test_cap_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TrialCache(str(tmp_path), max_bytes=0)


class TestResolveCache:
    def test_env_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache(None) is None

    def test_false_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(False) is None

    def test_env_dir_shared_instance(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "c"))
        first = resolve_cache(None)
        second = resolve_cache(None)
        assert first is second  # stats accumulate across sweeps

    def test_explicit_path(self, tmp_path):
        cache = resolve_cache(str(tmp_path / "explicit"))
        assert isinstance(cache, TrialCache)

    def test_instance_passthrough(self, tmp_path):
        cache = TrialCache(str(tmp_path))
        assert resolve_cache(cache) is cache


class TestAccounting:
    def test_run_trials_records_cache_hits(self, cache):
        accounting.reset()
        run_trials(_double, list(range(4)), jobs=1, cache=cache, label="unit-sweep")
        run_trials(_double, list(range(4)), jobs=1, cache=cache, label="unit-sweep")
        records = accounting.records()
        assert [r.cache_hits for r in records] == [0, 4]
        assert [r.executed for r in records] == [4, 0]
        summary = accounting.summary()["unit-sweep"]
        assert summary["runs"] == 2
        assert summary["cache_hits"] == 4
        assert summary["cache_hit_rate"] == 0.5
        accounting.reset()

    def test_write_perf_baseline_preserves_other_keys(self, tmp_path, cache):
        accounting.reset()
        path = str(tmp_path / "perf_baseline.json")
        with open(path, "w") as handle:
            json.dump({"cache_access_ops_per_second": 123.0}, handle)
        run_trials(_double, [1, 2], jobs=1, cache=cache, label="baseline-sweep")
        data = accounting.write_perf_baseline(path)
        assert data["cache_access_ops_per_second"] == 123.0
        assert data["sweep_accounting"]["baseline-sweep"]["trials"] == 2
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk == data
        accounting.reset()
