"""Tests for the fault sweep: aggregation, rendering, determinism, archive.

The full sweep takes minutes, so the end-to-end runs carry the ``slow``
marker (excluded by default; CI's fault-injection job runs them).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.robustness import (
    RobustnessCurvePoint,
    aggregate_point,
    render_robustness_table,
)
from repro.experiments import fault_sweep


def _metrics_dict(
    delivered_bytes=31,
    payload_bytes=31,
    frames_attempted=4,
    frames_delivered=4,
    retransmissions=0,
    resyncs=0,
    ttr=math.nan,
):
    return {
        "payload_bytes": payload_bytes,
        "delivered_bytes": delivered_bytes,
        "frames_attempted": frames_attempted,
        "frames_delivered": frames_delivered,
        "retransmissions": retransmissions,
        "resyncs": resyncs,
        "elapsed_cycles": 1e6,
        "time_to_recover_cycles": ttr,
        "clock_hz": 4e9,
        "goodput_kbps": delivered_bytes / (1e6 / 4e9) / 1000.0,
        "frame_error_rate": 1.0 - frames_delivered / frames_attempted,
        "delivered": delivered_bytes == payload_bytes,
    }


class TestAggregation:
    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            aggregate_point("fixed", 0.0, [])

    def test_delivery_rate_counts_full_messages(self):
        point = aggregate_point(
            "adaptive",
            2.0,
            [_metrics_dict(), _metrics_dict(delivered_bytes=16), _metrics_dict()],
        )
        assert point.delivery_rate == pytest.approx(2 / 3)
        assert point.trials == 3

    def test_nan_ttr_excluded_from_mean(self):
        point = aggregate_point(
            "fixed",
            5.0,
            [_metrics_dict(ttr=4e6), _metrics_dict(ttr=math.nan)],
        )
        # 4e6 cycles at 4 GHz = 1 ms; the nan trial must not drag it down.
        assert point.time_to_recover_ms == pytest.approx(1.0)

    def test_all_nan_ttr_stays_nan(self):
        point = aggregate_point("fixed", 0.0, [_metrics_dict(), _metrics_dict()])
        assert math.isnan(point.time_to_recover_ms)

    def test_point_roundtrips_to_dict(self):
        point = aggregate_point("adaptive", 8.0, [_metrics_dict()])
        data = point.to_dict()
        assert data["policy"] == "adaptive"
        assert data["intensity"] == 8.0
        assert RobustnessCurvePoint(**data) == point


class TestRendering:
    def _points(self):
        return [
            aggregate_point("adaptive", 2.0, [_metrics_dict()]),
            aggregate_point("fixed", 2.0, [_metrics_dict(delivered_bytes=0)]),
            aggregate_point("adaptive", 0.0, [_metrics_dict()]),
            aggregate_point("fixed", 0.0, [_metrics_dict()]),
        ]

    def test_table_sorted_by_intensity_then_policy(self):
        table = render_robustness_table(self._points())
        rows = [line.split()[0] for line in table.splitlines()[2:]]
        assert rows == ["adaptive", "fixed", "adaptive", "fixed"]

    def test_nan_ttr_rendered_as_dash(self):
        table = render_robustness_table([aggregate_point("fixed", 0.0, [_metrics_dict()])])
        assert table.splitlines()[-1].split()[-1] == "-"

    def test_render_headlines_last_delivering_intensity(self):
        # Saturated rows (nobody delivers) must not steal the headline.
        result = fault_sweep.FaultSweepResult(
            root_seed=0,
            trials=1,
            payload_bytes=31,
            intensities=[0.0, 2.0, 8.0],
            points=[
                aggregate_point("adaptive", 0.0, [_metrics_dict()]),
                aggregate_point("fixed", 0.0, [_metrics_dict()]),
                aggregate_point("adaptive", 2.0, [_metrics_dict()]),
                aggregate_point("fixed", 2.0, [_metrics_dict(delivered_bytes=0)]),
                aggregate_point("adaptive", 8.0, [_metrics_dict(delivered_bytes=0)]),
                aggregate_point("fixed", 8.0, [_metrics_dict(delivered_bytes=0)]),
            ],
        )
        text = fault_sweep.render(result)
        assert "At intensity 2:" in text
        assert "adaptive delivers 100%" in text


class TestArchivedResults:
    def test_archive_matches_current_schema(self):
        with open("results/fault_sweep.json", "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["experiment"] == "fault_sweep"
        assert data["intensities"] == list(fault_sweep.DEFAULT_INTENSITIES)
        points = [RobustnessCurvePoint(**p) for p in data["points"]]
        assert {p.policy for p in points} == {"adaptive", "fixed"}
        # The claim the sweep exists to back: under every non-zero storm
        # the adaptive controller sustains at least the fixed window's
        # delivery rate, and beats it outright somewhere.
        by_cell = {(p.policy, p.intensity): p for p in points}
        stormy = sorted({p.intensity for p in points if p.intensity > 0})
        assert stormy, "archive has no storm rows"
        wins = 0
        for intensity in stormy:
            adaptive = by_cell[("adaptive", intensity)]
            fixed = by_cell[("fixed", intensity)]
            assert adaptive.delivery_rate >= fixed.delivery_rate
            if adaptive.delivery_rate > fixed.delivery_rate:
                wins += 1
        assert wins >= 1
        # ... while matching the fixed window on a quiet machine.
        assert by_cell[("adaptive", 0.0)].delivery_rate == pytest.approx(
            by_cell[("fixed", 0.0)].delivery_rate
        )


@pytest.mark.slow
class TestSweepEndToEnd:
    def test_small_sweep_parallel_matches_serial(self, monkeypatch):
        kwargs = dict(
            seed=11,
            trials=2,
            intensities=(0.0, 5.0),
            payload=b"smoke",
            storm_cycles=40_000_000.0,
        )
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = fault_sweep.run(jobs=1, **kwargs)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = fault_sweep.run(jobs=None, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_channel_survives_preemption_storm(self):
        from repro.core.selfheal import SelfHealingChannel
        from repro.experiments.common import build_ready_channel
        from repro.faults.plan import preemption_storm

        machine, channel = build_ready_channel(seed=3)
        plan = preemption_storm(
            seed=3,
            core=channel.config.trojan_core,
            start_cycle=machine.now,
            duration_cycles=60_000_000.0,
            rate_per_cycle=3e-6,
        )
        machine.inject_faults(plan)
        payload = b"under fire"
        result = SelfHealingChannel(channel).send(payload)
        assert result.recovered == payload
        assert result.metrics.retransmissions > 0  # the storm actually bit
