"""Unit tests for the adaptive timing-window and code-rate controllers."""

import pytest

from repro.core import (
    AdaptiveCodeRateConfig,
    AdaptiveCodeRateController,
    AdaptiveWindowConfig,
    AdaptiveWindowController,
)
from repro.errors import ConfigurationError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = AdaptiveWindowConfig()
        assert config.base_window_cycles == 15_000
        assert config.max_window_cycles == 60_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_window_cycles=0),
            dict(max_window_cycles=10_000),  # below base
            dict(backoff_factor=1.0),
            dict(backoff_after=0),
            dict(recover_factor=1.0),
            dict(recover_factor=0.0),
            dict(recover_after=0),
            dict(quantum_cycles=0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveWindowConfig(**kwargs)


class TestBackoff:
    def test_starts_at_base(self):
        controller = AdaptiveWindowController()
        assert controller.window_cycles == 15_000
        assert not controller.backed_off

    def test_single_failure_does_not_back_off(self):
        # One ambient bit-noise failure clears on retry; the streak
        # requirement keeps it from costing goodput.
        controller = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=2))
        controller.record_frame(False)
        assert controller.window_cycles == 15_000
        controller.record_frame(True)
        controller.record_frame(False)
        assert controller.window_cycles == 15_000

    def test_failure_streak_backs_off(self):
        controller = AdaptiveWindowController(
            AdaptiveWindowConfig(backoff_after=2, backoff_factor=1.6)
        )
        controller.record_frame(False)
        controller.record_frame(False)
        # 15000 * 1.6 = 24000, already a quantum multiple.
        assert controller.window_cycles == 24_000
        assert controller.backed_off

    def test_window_clamped_at_max(self):
        config = AdaptiveWindowConfig(backoff_after=1, max_window_cycles=60_000)
        controller = AdaptiveWindowController(config)
        for _ in range(20):
            controller.record_frame(False)
        assert controller.window_cycles == 60_000

    def test_window_quantized(self):
        config = AdaptiveWindowConfig(backoff_after=1, backoff_factor=1.13)
        controller = AdaptiveWindowController(config)
        controller.record_frame(False)
        assert controller.window_cycles % config.quantum_cycles == 0


class TestRecovery:
    def _backed_off_controller(self):
        controller = AdaptiveWindowController(
            AdaptiveWindowConfig(backoff_after=1, recover_after=2)
        )
        for _ in range(4):
            controller.record_frame(False)
        return controller

    def test_clean_streak_tightens(self):
        controller = self._backed_off_controller()
        widened = controller.window_cycles
        controller.record_frame(True)
        assert controller.window_cycles == widened  # streak not complete
        controller.record_frame(True)
        assert controller.window_cycles < widened

    def test_failure_resets_clean_streak(self):
        controller = self._backed_off_controller()
        widened = controller.window_cycles
        controller.record_frame(True)
        controller.record_frame(False)
        controller.record_frame(True)
        assert controller.window_cycles == widened

    def test_recovery_floors_at_base(self):
        controller = self._backed_off_controller()
        for _ in range(100):
            controller.record_frame(True)
        assert controller.window_cycles == 15_000
        assert not controller.backed_off


class TestDeterminism:
    def test_same_history_same_schedule(self):
        outcomes = [True, False, False, True, True, False, True] * 10

        def schedule():
            controller = AdaptiveWindowController()
            return [controller.record_frame(ok) for ok in outcomes]

        assert schedule() == schedule()

    def test_history_records_window_and_outcome(self):
        controller = AdaptiveWindowController()
        controller.record_frame(True)
        controller.record_frame(False)
        assert controller.history == [(15_000, True), (15_000, False)]

    def test_reset_returns_to_base(self):
        controller = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=1))
        controller.record_frame(False)
        assert controller.backed_off
        controller.reset()
        assert controller.window_cycles == 15_000
        assert controller.history == []
        # Streaks cleared too: a single post-reset failure must not back off
        # with the default two-failure streak.
        controller2 = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=2))
        controller2.record_frame(False)
        controller2.reset()
        controller2.record_frame(False)
        assert not controller2.backed_off


LADDER = ("raw", "secded", "rs", "rs_heavy")


class TestCodeRateConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(harden_after=0),
            dict(relax_after=0),
            dict(load_low_water=0.8, load_high_water=0.5),
            dict(load_low_water=-0.1),
            dict(load_high_water=1.5),
            dict(switch_margin=-0.1),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveCodeRateConfig(**kwargs)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveCodeRateController([])


class TestCodeRateStreaks:
    def test_starts_on_lightest_rung(self):
        controller = AdaptiveCodeRateController(LADDER)
        assert controller.current == "raw"
        assert not controller.hardened

    def test_failure_streak_hardens_one_rung(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=3)
        )
        controller.record_frame(False, 0.0)
        controller.record_frame(False, 0.0)
        assert controller.current == "raw"  # streak incomplete
        controller.record_frame(False, 0.0)
        assert controller.current == "secded"
        assert controller.hardened

    def test_high_load_counts_as_stress_even_when_delivered(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=2, load_high_water=0.75)
        )
        controller.record_frame(True, 0.9)
        controller.record_frame(True, 0.8)
        assert controller.current == "secded"

    def test_mid_band_load_holds_position_and_breaks_streaks(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=2, relax_after=2)
        )
        controller.record_frame(False, 0.0)
        controller.record_frame(True, 0.5)  # mid-band: resets both streaks
        controller.record_frame(False, 0.0)
        assert controller.current == "raw"

    def test_comfort_streak_relaxes_one_rung(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=1, relax_after=2)
        )
        controller.record_frame(False, 0.0)
        controller.record_frame(False, 0.0)
        assert controller.current == "rs"
        controller.record_frame(True, 0.05)
        controller.record_frame(True, 0.05)
        assert controller.current == "secded"

    def test_rungs_clamped_at_both_ends(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=1, relax_after=1)
        )
        for _ in range(10):
            controller.record_frame(False, 1.0)
        assert controller.current == "rs_heavy"
        for _ in range(10):
            controller.record_frame(True, 0.0)
        assert controller.current == "raw"


class TestCodeRateScores:
    def test_jumps_straight_to_best_scoring_rung(self):
        controller = AdaptiveCodeRateController(LADDER)
        controller.record_frame(True, 0.0, scores=[0.1, 0.2, 0.9, 0.3])
        assert controller.current == "rs"

    def test_hysteresis_holds_near_ties(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(switch_margin=0.2)
        )
        # secded at 0.55 does not beat raw's 0.5 by the 20% margin.
        controller.record_frame(True, 0.0, scores=[0.5, 0.55, 0.1, 0.1])
        assert controller.current == "raw"
        # A decisive lead switches immediately.
        controller.record_frame(True, 0.0, scores=[0.5, 0.7, 0.1, 0.1])
        assert controller.current == "secded"

    def test_scores_can_relax_multiple_rungs_at_once(self):
        controller = AdaptiveCodeRateController(LADDER)
        controller.record_frame(False, 1.0, scores=[0.1, 0.1, 0.1, 0.9])
        assert controller.current == "rs_heavy"
        controller.record_frame(True, 0.0, scores=[0.9, 0.2, 0.2, 0.1])
        assert controller.current == "raw"

    def test_scores_reset_streaks(self):
        # Two failures followed by a scores frame must not complete a
        # 3-failure streak on the next plain failure.
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=3)
        )
        controller.record_frame(False, 0.0)
        controller.record_frame(False, 0.0)
        controller.record_frame(True, 0.0, scores=[0.9, 0.1, 0.1, 0.1])
        controller.record_frame(False, 0.0)
        assert controller.current == "raw"

    def test_wrong_score_count_rejected(self):
        controller = AdaptiveCodeRateController(LADDER)
        with pytest.raises(ConfigurationError):
            controller.record_frame(True, 0.0, scores=[0.5, 0.5])


class TestCodeRateDeterminism:
    def test_same_history_same_schedule(self):
        frames = [(False, 1.0), (True, 0.1), (False, 0.9), (True, 0.0)] * 8

        def schedule():
            controller = AdaptiveCodeRateController(
                LADDER, AdaptiveCodeRateConfig(harden_after=2, relax_after=2)
            )
            return [controller.record_frame(ok, load) for ok, load in frames]

        assert schedule() == schedule()

    def test_history_records_rung_outcome_and_load(self):
        controller = AdaptiveCodeRateController(LADDER)
        controller.record_frame(True, 0.3)
        controller.record_frame(False, 2.0)  # load clamps into [0, 1]
        assert controller.history == [(0, True, 0.3), (0, False, 1.0)]

    def test_reset_returns_to_lightest_rung(self):
        controller = AdaptiveCodeRateController(
            LADDER, AdaptiveCodeRateConfig(harden_after=1)
        )
        controller.record_frame(False, 1.0)
        assert controller.hardened
        controller.reset()
        assert controller.current == "raw"
        assert controller.history == []
