"""Unit tests for the adaptive timing-window controller."""

import pytest

from repro.core import AdaptiveWindowConfig, AdaptiveWindowController
from repro.errors import ConfigurationError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = AdaptiveWindowConfig()
        assert config.base_window_cycles == 15_000
        assert config.max_window_cycles == 60_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_window_cycles=0),
            dict(max_window_cycles=10_000),  # below base
            dict(backoff_factor=1.0),
            dict(backoff_after=0),
            dict(recover_factor=1.0),
            dict(recover_factor=0.0),
            dict(recover_after=0),
            dict(quantum_cycles=0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveWindowConfig(**kwargs)


class TestBackoff:
    def test_starts_at_base(self):
        controller = AdaptiveWindowController()
        assert controller.window_cycles == 15_000
        assert not controller.backed_off

    def test_single_failure_does_not_back_off(self):
        # One ambient bit-noise failure clears on retry; the streak
        # requirement keeps it from costing goodput.
        controller = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=2))
        controller.record_frame(False)
        assert controller.window_cycles == 15_000
        controller.record_frame(True)
        controller.record_frame(False)
        assert controller.window_cycles == 15_000

    def test_failure_streak_backs_off(self):
        controller = AdaptiveWindowController(
            AdaptiveWindowConfig(backoff_after=2, backoff_factor=1.6)
        )
        controller.record_frame(False)
        controller.record_frame(False)
        # 15000 * 1.6 = 24000, already a quantum multiple.
        assert controller.window_cycles == 24_000
        assert controller.backed_off

    def test_window_clamped_at_max(self):
        config = AdaptiveWindowConfig(backoff_after=1, max_window_cycles=60_000)
        controller = AdaptiveWindowController(config)
        for _ in range(20):
            controller.record_frame(False)
        assert controller.window_cycles == 60_000

    def test_window_quantized(self):
        config = AdaptiveWindowConfig(backoff_after=1, backoff_factor=1.13)
        controller = AdaptiveWindowController(config)
        controller.record_frame(False)
        assert controller.window_cycles % config.quantum_cycles == 0


class TestRecovery:
    def _backed_off_controller(self):
        controller = AdaptiveWindowController(
            AdaptiveWindowConfig(backoff_after=1, recover_after=2)
        )
        for _ in range(4):
            controller.record_frame(False)
        return controller

    def test_clean_streak_tightens(self):
        controller = self._backed_off_controller()
        widened = controller.window_cycles
        controller.record_frame(True)
        assert controller.window_cycles == widened  # streak not complete
        controller.record_frame(True)
        assert controller.window_cycles < widened

    def test_failure_resets_clean_streak(self):
        controller = self._backed_off_controller()
        widened = controller.window_cycles
        controller.record_frame(True)
        controller.record_frame(False)
        controller.record_frame(True)
        assert controller.window_cycles == widened

    def test_recovery_floors_at_base(self):
        controller = self._backed_off_controller()
        for _ in range(100):
            controller.record_frame(True)
        assert controller.window_cycles == 15_000
        assert not controller.backed_off


class TestDeterminism:
    def test_same_history_same_schedule(self):
        outcomes = [True, False, False, True, True, False, True] * 10

        def schedule():
            controller = AdaptiveWindowController()
            return [controller.record_frame(ok) for ok in outcomes]

        assert schedule() == schedule()

    def test_history_records_window_and_outcome(self):
        controller = AdaptiveWindowController()
        controller.record_frame(True)
        controller.record_frame(False)
        assert controller.history == [(15_000, True), (15_000, False)]

    def test_reset_returns_to_base(self):
        controller = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=1))
        controller.record_frame(False)
        assert controller.backed_off
        controller.reset()
        assert controller.window_cycles == 15_000
        assert controller.history == []
        # Streaks cleared too: a single post-reset failure must not back off
        # with the default two-failure streak.
        controller2 = AdaptiveWindowController(AdaptiveWindowConfig(backoff_after=2))
        controller2.record_frame(False)
        controller2.reset()
        controller2.record_frame(False)
        assert not controller2.backed_off
