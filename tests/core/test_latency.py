"""Unit tests for repro.core.latency — calibration and classification."""

import pytest

from repro.core.latency import (
    ThresholdClassifier,
    calibrate_classifier,
    classifier_from_samples,
)
from repro.sgx.timing import CounterThreadTimer


class TestThresholdClassifier:
    def test_decode(self):
        classifier = ThresholdClassifier(threshold=650, hit_estimate=530, miss_estimate=800)
        assert classifier.decode_bit(500) == 0
        assert classifier.decode_bit(800) == 1
        assert not classifier.is_miss(650)
        assert classifier.is_miss(651)


class TestClassifierFromSamples:
    def test_midpoint(self):
        classifier = classifier_from_samples([500, 520, 510], [800, 790, 810])
        assert classifier.threshold == pytest.approx((510 + 800) / 2)

    def test_median_robust_to_outliers(self):
        classifier = classifier_from_samples([500, 510, 5000], [800, 810, 790])
        assert classifier.hit_estimate == 510

    def test_inverted_samples_rejected(self):
        with pytest.raises(ValueError):
            classifier_from_samples([800, 810], [500, 510])


class TestCalibration:
    def test_calibrates_hit_and_miss_classes(self, enclave_setup):
        machine, space, enclave = enclave_setup
        timer = CounterThreadTimer()
        calibration = calibrate_classifier(machine, space, enclave, timer, samples=32)
        classifier = calibration.classifier
        # Measured values include ~50 cycles of timer overhead.
        assert 450 <= classifier.hit_estimate <= 620
        assert 720 <= classifier.miss_estimate <= 900
        assert calibration.separation >= 200

    def test_sample_counts(self, enclave_setup):
        machine, space, enclave = enclave_setup
        timer = CounterThreadTimer()
        calibration = calibrate_classifier(machine, space, enclave, timer, samples=20)
        assert len(calibration.hit_samples) == 20
        assert len(calibration.miss_samples) == 20

    def test_classifier_separates_channel_classes(self, enclave_setup):
        machine, space, enclave = enclave_setup
        timer = CounterThreadTimer()
        calibration = calibrate_classifier(machine, space, enclave, timer, samples=32)
        classifier = calibration.classifier
        assert classifier.hit_estimate < classifier.threshold < classifier.miss_estimate
