"""Unit tests for repro.core.candidates."""

import pytest

from repro.core.candidates import CandidateAddressSet, allocate_candidate_pages
from repro.errors import ChannelError
from repro.units import PAGE_SIZE


class TestCandidateAddressSet:
    def test_from_region_strides_pages(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(8 * PAGE_SIZE)
        candidates = CandidateAddressSet.from_region(region, unit=3)
        assert len(candidates) == 8
        deltas = [b - a for a, b in zip(candidates.addresses, candidates.addresses[1:])]
        assert all(delta == PAGE_SIZE for delta in deltas)

    def test_unit_offset_applied(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(2 * PAGE_SIZE)
        candidates = CandidateAddressSet.from_region(region, unit=5)
        assert candidates.addresses[0] == region.base + 5 * 512

    def test_bad_unit_rejected(self):
        with pytest.raises(ChannelError):
            CandidateAddressSet(unit=8, addresses=())

    def test_wrong_offset_rejected(self):
        with pytest.raises(ChannelError):
            CandidateAddressSet(unit=3, addresses=(0x1000,))

    def test_subset(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(8 * PAGE_SIZE)
        candidates = CandidateAddressSet.from_region(region, unit=0)
        subset = candidates.subset(3)
        assert len(subset) == 3
        assert subset.addresses == candidates.addresses[:3]

    def test_subset_too_large_rejected(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(2 * PAGE_SIZE)
        candidates = CandidateAddressSet.from_region(region, unit=0)
        with pytest.raises(ChannelError):
            candidates.subset(3)

    def test_count_larger_than_region_rejected(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(2 * PAGE_SIZE)
        with pytest.raises(ChannelError):
            CandidateAddressSet.from_region(region, unit=0, count=3)

    def test_iteration(self, enclave_setup):
        _, _, enclave = enclave_setup
        region = enclave.alloc(4 * PAGE_SIZE)
        candidates = CandidateAddressSet.from_region(region, unit=1)
        assert list(candidates) == list(candidates.addresses)


class TestAllocateCandidatePages:
    def test_allocates_fresh_pages(self, enclave_setup):
        machine, _, enclave = enclave_setup
        before = machine.epc.usage_of(enclave.name)
        candidates = allocate_candidate_pages(enclave, 16, unit=2)
        assert len(candidates) == 16
        assert machine.epc.usage_of(enclave.name) == before + 16

    def test_candidates_map_to_8_sets(self, enclave_setup):
        # The ground-truth property the attack exploits: a fixed unit maps
        # to exactly 8 possible (odd) MEE cache sets across random frames.
        machine, space, enclave = enclave_setup
        candidates = allocate_candidate_pages(enclave, 64, unit=3)
        sets = {
            machine.layout.versions_set(space.translate(vaddr), 128)
            for vaddr in candidates
        }
        assert len(sets) <= 8
        assert all(s % 2 == 1 for s in sets)
