"""Unit + property + integration tests for the framing protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    PREAMBLE,
    SEQ_MODULUS,
    DecodedFrame,
    FrameCodec,
    crc8,
    crc16_ccitt,
)
from repro.errors import ChannelError


class TestCRC16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") = 0x29B1
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_single_byte_change(self):
        assert crc16_ccitt(b"hello") != crc16_ccitt(b"hellp")

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 7), st.data())
    @settings(max_examples=60)
    def test_detects_any_single_bit_flip(self, data, bit, drawer):
        index = drawer.draw(st.integers(0, len(data) - 1))
        flipped = bytearray(data)
        flipped[index] ^= 1 << bit
        assert crc16_ccitt(bytes(flipped)) != crc16_ccitt(data)


class TestFrameCodec:
    def test_roundtrip(self):
        codec = FrameCodec()
        bits = codec.encode(b"secret")
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert frames[0].payload == b"secret"
        assert frames[0].crc_ok
        assert frames[0].start_index == 0

    def test_frame_length_accounting(self):
        codec = FrameCodec()
        assert len(codec.encode(b"abc")) == codec.frame_length_bits(3)

    def test_frame_found_after_idle_prefix(self):
        codec = FrameCodec()
        stream = [0] * 37 + codec.encode(b"x") + [0] * 11
        frames = codec.decode_stream(stream)
        assert len(frames) == 1
        assert frames[0].start_index == 37

    def test_multiple_frames(self):
        codec = FrameCodec()
        stream = codec.encode(b"one") + [0] * 9 + codec.encode(b"two")
        frames = codec.decode_stream(stream)
        assert [f.payload for f in frames] == [b"one", b"two"]

    def test_single_preamble_bit_error_tolerated(self):
        codec = FrameCodec()
        bits = codec.encode(b"ok")
        bits[3] ^= 1
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert frames[0].preamble_errors == 1
        assert frames[0].crc_ok

    def test_payload_corruption_flagged(self):
        codec = FrameCodec()
        bits = codec.encode(b"payload")
        bits[48] ^= 1  # inside the payload (after preamble+length+crc8)
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert not frames[0].crc_ok

    def test_truncated_frame_ignored(self):
        codec = FrameCodec()
        bits = codec.encode(b"long payload")[:-20]
        assert codec.decode_stream(bits) == []

    def test_oversized_payload_rejected(self):
        codec = FrameCodec(max_payload_bytes=4)
        with pytest.raises(ChannelError):
            codec.encode(b"12345")

    def test_corrupt_length_resumes_scan(self):
        codec = FrameCodec(max_payload_bytes=16)
        bits = codec.encode(b"ab")
        # Set length field to an absurd value: bits 16..31 all ones.
        for i in range(16, 32):
            bits[i] = 1
        later = codec.encode(b"cd")
        frames = codec.decode_stream(bits + later)
        payloads = [f.payload for f in frames if f.crc_ok]
        assert b"cd" in payloads

    def test_single_length_bit_flip_caught_by_header_crc(self):
        # The failure mode that motivated the header CRC: one flipped
        # length bit must not send the parser past the end of the stream
        # and swallow a later frame.
        codec = FrameCodec()
        bits = codec.encode(b"ab")
        bits[20] ^= 1  # inside the length field
        later = codec.encode(b"cd")
        frames = codec.decode_stream(bits + [0] * 5 + later)
        payloads = [f.payload for f in frames if f.crc_ok]
        assert b"cd" in payloads

    def test_crc8_known_behaviour(self):
        assert crc8(b"") == 0
        assert crc8(b"\x00") == 0
        assert crc8(b"\x01") != 0
        assert crc8(b"ab") != crc8(b"ba")

    @given(st.binary(max_size=32), st.integers(0, 40))
    @settings(max_examples=60)
    def test_roundtrip_with_random_prefix(self, payload, prefix_len):
        codec = FrameCodec()
        rng = np.random.default_rng(prefix_len)
        # A zero prefix cannot fake the preamble (which starts with ones).
        stream = [0] * prefix_len + codec.encode(payload)
        frames = codec.decode_stream(stream)
        assert any(f.payload == payload and f.crc_ok for f in frames)


class TestSequenceNumbers:
    def test_seq_roundtrip(self):
        codec = FrameCodec(sequence_numbers=True)
        frames = codec.decode_stream(codec.encode(b"chunk", seq=7))
        assert len(frames) == 1
        assert frames[0].seq == 7
        assert frames[0].payload == b"chunk"
        assert frames[0].crc_ok

    def test_seq_wraps_at_modulus(self):
        codec = FrameCodec(sequence_numbers=True)
        frames = codec.decode_stream(codec.encode(b"x", seq=SEQ_MODULUS + 3))
        assert frames[0].seq == 3

    def test_seq_required_iff_enabled(self):
        with pytest.raises(ChannelError):
            FrameCodec(sequence_numbers=True).encode(b"x")
        with pytest.raises(ChannelError):
            FrameCodec(sequence_numbers=False).encode(b"x", seq=1)

    def test_seq_adds_eight_bits_on_the_wire(self):
        plain = FrameCodec()
        seqd = FrameCodec(sequence_numbers=True)
        assert seqd.frame_length_bits(4) == plain.frame_length_bits(4) + 8
        assert len(seqd.encode(b"abcd", seq=0)) == seqd.frame_length_bits(4)

    def test_modes_are_incompatible_on_the_wire(self):
        # A seq-mode receiver must not accept a plain frame as intact.
        plain = FrameCodec()
        seqd = FrameCodec(sequence_numbers=True)
        frames = seqd.decode_stream(plain.encode(b"abcd"))
        assert not any(f.crc_ok for f in frames)


class TestResync:
    """The receiver-side behaviors the self-healing layer relies on."""

    def test_preamble_burst_error_skips_to_next_frame(self):
        # A burst wipes out frame one's preamble beyond the 1-bit lock
        # tolerance; the scan must re-lock on frame two's preamble instead
        # of returning garbage for frame one.
        codec = FrameCodec()
        first = codec.encode(b"lost")
        for i in range(4, 9):  # 5-bit burst inside the preamble
            first[i] ^= 1
        second = codec.encode(b"kept")
        frames = codec.decode_stream(first + [0] * 7 + second)
        assert [f.payload for f in frames if f.crc_ok] == [b"kept"]

    def test_burst_error_mid_frame_does_not_eat_next_frame(self):
        codec = FrameCodec()
        first = codec.encode(b"damaged!")
        for i in range(45, 55):  # burst inside payload: CRC-16 flags it
            first[i] ^= 1
        second = codec.encode(b"clean")
        frames = codec.decode_stream(first + second)
        assert [f.payload for f in frames if f.crc_ok] == [b"clean"]
        assert any(not f.crc_ok for f in frames)

    def test_corrupted_length_with_valid_header_crc_rejected_by_crc16(self):
        # Adversarial case: the length field is corrupted *and* the header
        # CRC-8 recomputed to match, pointing the parser at a bogus payload
        # extent.  The frame CRC-16 still covers the true header bytes, so
        # the mislabeled frame cannot pass as intact.
        codec = FrameCodec(max_payload_bytes=64)
        bits = codec.encode(b"abcdef")
        forged_header = (4).to_bytes(2, "big")  # claim 4 bytes, actually 6
        forged_length_bits = [(4 >> s) & 1 for s in range(15, -1, -1)]
        forged_crc8_bits = [(crc8(forged_header) >> s) & 1 for s in range(7, -1, -1)]
        bits[16:32] = forged_length_bits
        bits[32:40] = forged_crc8_bits
        frames = codec.decode_stream(bits)
        assert frames, "the forged header parses as a frame"
        assert not any(f.crc_ok for f in frames)

    def test_back_to_back_seq_frames_with_flipped_seq(self):
        # Two frames tight against each other; the first one's sequence
        # number takes a bit flip.  The header CRC rejects the first frame
        # at its nominal position and the scan must still deliver the
        # second frame intact.
        codec = FrameCodec(sequence_numbers=True)
        first = codec.encode(b"aaaa", seq=5)
        first[24] ^= 1  # inside the seq field (bits 24..31)
        second = codec.encode(b"bbbb", seq=6)
        frames = codec.decode_stream(first + second)
        intact = [f for f in frames if f.crc_ok]
        assert [(f.payload, f.seq) for f in intact] == [(b"bbbb", 6)]

    def test_interleaved_retransmissions_reordered_by_seq(self):
        # Duplicate + out-of-order delivery: seq numbers let the receiver
        # reassemble without trusting arrival order.
        codec = FrameCodec(sequence_numbers=True)
        stream = (
            codec.encode(b"BBBB", seq=1)
            + [0] * 3
            + codec.encode(b"AAAA", seq=0)
            + [0] * 3
            + codec.encode(b"BBBB", seq=1)
        )
        frames = [f for f in codec.decode_stream(stream) if f.crc_ok]
        by_seq = {}
        for frame in frames:
            by_seq.setdefault(frame.seq, frame.payload)
        assert b"".join(by_seq[s] for s in sorted(by_seq)) == b"AAAABBBB"


class TestProtocolOverChannel:
    def test_frame_delivery_over_real_channel(self, ready_channel):
        _, channel = ready_channel
        codec = FrameCodec()
        secret = b"exfil: 0xC0FFEE"
        # Trojan idles a few windows before the frame (unknown start).
        stream = [0] * 10 + codec.encode(secret)
        result = channel.transmit(stream)
        frames = codec.decode_stream(result.received)
        assert frames, "no frame recovered from the channel"
        best = frames[0]
        if best.crc_ok:
            assert best.payload == secret
        else:
            # Channel noise corrupted the frame; CRC must have caught it.
            assert best.payload != secret or not best.crc_ok
