"""Unit + property + integration tests for the framing protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import PREAMBLE, DecodedFrame, FrameCodec, crc8, crc16_ccitt
from repro.errors import ChannelError


class TestCRC16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") = 0x29B1
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_single_byte_change(self):
        assert crc16_ccitt(b"hello") != crc16_ccitt(b"hellp")

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 7), st.data())
    @settings(max_examples=60)
    def test_detects_any_single_bit_flip(self, data, bit, drawer):
        index = drawer.draw(st.integers(0, len(data) - 1))
        flipped = bytearray(data)
        flipped[index] ^= 1 << bit
        assert crc16_ccitt(bytes(flipped)) != crc16_ccitt(data)


class TestFrameCodec:
    def test_roundtrip(self):
        codec = FrameCodec()
        bits = codec.encode(b"secret")
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert frames[0].payload == b"secret"
        assert frames[0].crc_ok
        assert frames[0].start_index == 0

    def test_frame_length_accounting(self):
        codec = FrameCodec()
        assert len(codec.encode(b"abc")) == codec.frame_length_bits(3)

    def test_frame_found_after_idle_prefix(self):
        codec = FrameCodec()
        stream = [0] * 37 + codec.encode(b"x") + [0] * 11
        frames = codec.decode_stream(stream)
        assert len(frames) == 1
        assert frames[0].start_index == 37

    def test_multiple_frames(self):
        codec = FrameCodec()
        stream = codec.encode(b"one") + [0] * 9 + codec.encode(b"two")
        frames = codec.decode_stream(stream)
        assert [f.payload for f in frames] == [b"one", b"two"]

    def test_single_preamble_bit_error_tolerated(self):
        codec = FrameCodec()
        bits = codec.encode(b"ok")
        bits[3] ^= 1
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert frames[0].preamble_errors == 1
        assert frames[0].crc_ok

    def test_payload_corruption_flagged(self):
        codec = FrameCodec()
        bits = codec.encode(b"payload")
        bits[48] ^= 1  # inside the payload (after preamble+length+crc8)
        frames = codec.decode_stream(bits)
        assert len(frames) == 1
        assert not frames[0].crc_ok

    def test_truncated_frame_ignored(self):
        codec = FrameCodec()
        bits = codec.encode(b"long payload")[:-20]
        assert codec.decode_stream(bits) == []

    def test_oversized_payload_rejected(self):
        codec = FrameCodec(max_payload_bytes=4)
        with pytest.raises(ChannelError):
            codec.encode(b"12345")

    def test_corrupt_length_resumes_scan(self):
        codec = FrameCodec(max_payload_bytes=16)
        bits = codec.encode(b"ab")
        # Set length field to an absurd value: bits 16..31 all ones.
        for i in range(16, 32):
            bits[i] = 1
        later = codec.encode(b"cd")
        frames = codec.decode_stream(bits + later)
        payloads = [f.payload for f in frames if f.crc_ok]
        assert b"cd" in payloads

    def test_single_length_bit_flip_caught_by_header_crc(self):
        # The failure mode that motivated the header CRC: one flipped
        # length bit must not send the parser past the end of the stream
        # and swallow a later frame.
        codec = FrameCodec()
        bits = codec.encode(b"ab")
        bits[20] ^= 1  # inside the length field
        later = codec.encode(b"cd")
        frames = codec.decode_stream(bits + [0] * 5 + later)
        payloads = [f.payload for f in frames if f.crc_ok]
        assert b"cd" in payloads

    def test_crc8_known_behaviour(self):
        assert crc8(b"") == 0
        assert crc8(b"\x00") == 0
        assert crc8(b"\x01") != 0
        assert crc8(b"ab") != crc8(b"ba")

    @given(st.binary(max_size=32), st.integers(0, 40))
    @settings(max_examples=60)
    def test_roundtrip_with_random_prefix(self, payload, prefix_len):
        codec = FrameCodec()
        rng = np.random.default_rng(prefix_len)
        # A zero prefix cannot fake the preamble (which starts with ones).
        stream = [0] * prefix_len + codec.encode(payload)
        frames = codec.decode_stream(stream)
        assert any(f.payload == payload and f.crc_ok for f in frames)


class TestProtocolOverChannel:
    def test_frame_delivery_over_real_channel(self, ready_channel):
        _, channel = ready_channel
        codec = FrameCodec()
        secret = b"exfil: 0xC0FFEE"
        # Trojan idles a few windows before the frame (unknown start).
        stream = [0] * 10 + codec.encode(secret)
        result = channel.transmit(stream)
        frames = codec.decode_stream(result.received)
        assert frames, "no frame recovered from the channel"
        best = frames[0]
        if best.crc_ok:
            assert best.payload == secret
        else:
            # Channel noise corrupted the frame; CRC must have caught it.
            assert best.payload != secret or not best.crc_ok
