"""Tests for the spy's monitor-address discovery."""

import pytest

from repro.core.candidates import allocate_candidate_pages
from repro.core.latency import calibrate_classifier
from repro.core.monitor import find_monitor_address
from repro.core.reverse_engineering import find_eviction_set
from repro.errors import ChannelError
from repro.sgx.timing import CounterThreadTimer


@pytest.fixture(scope="module")
def discovered(request):
    """Machine with trojan eviction set already discovered (module-scoped:
    Algorithm 1 is the expensive step)."""
    from repro.config import skylake_i7_6700k
    from repro.system.machine import Machine

    machine = Machine(skylake_i7_6700k(seed=2024))
    trojan_space = machine.new_address_space("m-trojan")
    spy_space = machine.new_address_space("m-spy")
    trojan_enclave = machine.create_enclave("m-trojan-e", trojan_space)
    spy_enclave = machine.create_enclave("m-spy-e", spy_space)
    timer = CounterThreadTimer()
    calibration = calibrate_classifier(machine, spy_space, spy_enclave, timer, core=1)
    candidates = allocate_candidate_pages(trojan_enclave, 128, unit=3)
    eviction = find_eviction_set(
        machine, trojan_space, trojan_enclave, candidates, timer, calibration.classifier
    )
    return machine, trojan_space, trojan_enclave, spy_space, spy_enclave, timer, calibration, eviction


class TestMonitorSearch:
    def test_finds_monitor_in_trojan_set(self, discovered):
        machine, trojan_space, trojan_enclave, spy_space, spy_enclave, timer, calibration, eviction = discovered
        spy_candidates = allocate_candidate_pages(spy_enclave, 64, unit=3)
        result = find_monitor_address(
            machine,
            spy_space,
            spy_enclave,
            trojan_space,
            trojan_enclave,
            eviction.eviction_set,
            spy_candidates,
            timer,
            calibration.classifier,
        )
        monitor_set = machine.layout.versions_set(spy_space.translate(result.monitor), 128)
        trojan_set = machine.layout.versions_set(
            trojan_space.translate(eviction.eviction_set[0]), 128
        )
        assert monitor_set == trojan_set
        assert max(result.miss_counts) >= 4

    def test_wrong_unit_candidates_rejected(self, discovered):
        # Candidates on a different 512 B unit never share the trojan's set.
        machine, trojan_space, trojan_enclave, spy_space, spy_enclave, timer, calibration, eviction = discovered
        wrong_unit = (3 + 4) % 8
        spy_candidates = allocate_candidate_pages(spy_enclave, 16, unit=wrong_unit)
        with pytest.raises(ChannelError):
            find_monitor_address(
                machine,
                spy_space,
                spy_enclave,
                trojan_space,
                trojan_enclave,
                eviction.eviction_set,
                spy_candidates,
                timer,
                calibration.classifier,
                trials=4,
            )

    def test_eviction_ratio_accessor(self, discovered):
        machine, trojan_space, trojan_enclave, spy_space, spy_enclave, timer, calibration, eviction = discovered
        spy_candidates = allocate_candidate_pages(spy_enclave, 48, unit=3)
        result = find_monitor_address(
            machine,
            spy_space,
            spy_enclave,
            trojan_space,
            trojan_enclave,
            eviction.eviction_set,
            spy_candidates,
            timer,
            calibration.classifier,
        )
        best_index = max(range(len(result.miss_counts)), key=result.miss_counts.__getitem__)
        assert result.eviction_ratio(best_index) >= 0.7
