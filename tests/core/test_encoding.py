"""Unit + property tests for repro.core.encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoding import (
    alternating_bits,
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    pattern_100100,
    random_bits,
    text_to_bits,
)


class TestByteConversion:
    def test_known_value(self):
        assert bytes_to_bits(b"\xa5") == [1, 0, 1, 0, 0, 1, 0, 1]

    def test_empty(self):
        assert bytes_to_bits(b"") == []
        assert bits_to_bytes([]) == b""

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes([2] * 8)

    @given(st.binary(max_size=64))
    def test_roundtrip(self, payload):
        assert bits_to_bytes(bytes_to_bits(payload)) == payload

    @given(st.text(max_size=32))
    def test_text_roundtrip(self, text):
        assert bits_to_text(text_to_bits(text)) == text


class TestPatterns:
    def test_alternating(self):
        assert alternating_bits(6) == [0, 1, 0, 1, 0, 1]
        assert alternating_bits(4, start=1) == [1, 0, 1, 0]

    def test_pattern_100100(self):
        bits = pattern_100100(9)
        assert bits == [1, 0, 0, 1, 0, 0, 1, 0, 0]

    def test_pattern_100100_default_128(self):
        assert len(pattern_100100()) == 128

    def test_random_bits(self):
        bits = random_bits(1000, np.random.default_rng(0))
        assert set(bits) == {0, 1}
        assert 400 < sum(bits) < 600
