"""Tests for the Prime+Probe baseline (paper Section 5.2 / Figure 6a)."""

import numpy as np
import pytest

from repro.config import skylake_i7_6700k
from repro.core.encoding import alternating_bits
from repro.core.primeprobe import PrimeProbeChannel
from repro.errors import ChannelError
from repro.system.machine import Machine


@pytest.fixture(scope="module")
def pp_channel():
    machine = Machine(skylake_i7_6700k(seed=77))
    channel = PrimeProbeChannel(machine)
    channel.setup()
    return machine, channel


class TestPrimeProbeSetup:
    def test_spy_holds_8_way_set(self, pp_channel):
        _, channel = pp_channel
        assert channel.eviction_result.associativity == 8

    def test_conflict_address_in_spy_set(self, pp_channel):
        machine, channel = pp_channel
        spy_set = machine.layout.versions_set(
            channel.spy_space.translate(channel.eviction_result.eviction_set[0]), 128
        )
        trojan_set = machine.layout.versions_set(
            channel.trojan_space.translate(channel.conflict_address), 128
        )
        assert spy_set == trojan_set

    def test_transmit_before_setup_rejected(self):
        machine = Machine(skylake_i7_6700k(seed=78))
        channel = PrimeProbeChannel(machine)
        with pytest.raises(ChannelError):
            channel.transmit([1, 0])


class TestPrimeProbeFailure:
    def test_probe_time_exceeds_3500_cycles(self, pp_channel):
        # Paper: "a probing latency that exceeds 3500 cycles".
        _, channel = pp_channel
        result = channel.transmit(alternating_bits(20))
        assert min(result.probe_times) > 3000
        assert np.median(result.probe_times) > 3500

    def test_probe_noise_swamps_single_eviction_signal(self, pp_channel):
        # The std of idle probes is comparable to the ~270-cycle signal.
        _, channel = pp_channel
        idle = np.array(channel.idle_probe_times)
        assert idle.std() > 100

    def test_communication_unreliable(self, pp_channel):
        # Paper: "proper communication cannot be established".
        _, channel = pp_channel
        result = channel.transmit(alternating_bits(60))
        assert result.metrics.error_rate > 0.05

    def test_records_threshold_and_idle_baseline(self, pp_channel):
        _, channel = pp_channel
        result = channel.transmit(alternating_bits(10))
        assert result.threshold == channel.threshold
        assert len(result.idle_probe_times) == 32
