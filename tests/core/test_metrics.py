"""Unit tests for repro.core.metrics."""

import pytest

from repro.core.metrics import (
    ChannelMetrics,
    binary_entropy,
    bit_error_rate,
    bit_rate_kbps,
)


class TestBinaryEntropy:
    def test_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)


class TestBitRate:
    def test_paper_headline(self):
        # 15000-cycle windows at 4.2 GHz = 35 KBps (paper Section 5.4).
        assert bit_rate_kbps(15000, 4.2e9) == pytest.approx(35.0)

    def test_smallest_window(self):
        assert bit_rate_kbps(5000, 4.2e9) == pytest.approx(105.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            bit_rate_kbps(0, 4.2e9)


class TestBitErrorRate:
    def test_no_errors(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_errors(self):
        assert bit_error_rate([1, 1], [0, 0]) == 1.0

    def test_partial(self):
        assert bit_error_rate([1, 0, 1, 0], [1, 1, 1, 0]) == 0.25

    def test_empty(self):
        assert bit_error_rate([], []) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate([1], [1, 0])


class TestChannelMetrics:
    def test_from_bits_confusion(self):
        metrics = ChannelMetrics.from_bits(
            sent=[0, 0, 1, 1], received=[0, 1, 1, 0], window_cycles=15000, clock_hz=4.2e9
        )
        assert metrics.false_ones == 1
        assert metrics.false_zeros == 1
        assert metrics.errors == 2
        assert metrics.error_rate == 0.5

    def test_goodput_discounts_errors(self):
        metrics = ChannelMetrics.from_bits(
            sent=[0, 1], received=[1, 1], window_cycles=15000, clock_hz=4.2e9
        )
        assert metrics.goodput == pytest.approx(metrics.bit_rate * 0.5)

    def test_zero_bits(self):
        metrics = ChannelMetrics.from_bits([], [], 15000, 4.2e9)
        assert metrics.error_rate == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ChannelMetrics.from_bits([1], [1, 0], 15000, 4.2e9)
