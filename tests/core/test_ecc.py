"""Unit + property tests for repro.core.ecc."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecc import (
    block_repetition_decode,
    block_repetition_encode,
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
    secded84_decode,
    secded84_encode,
)

nibbles = st.lists(st.integers(0, 1), min_size=4, max_size=40).filter(
    lambda bits: len(bits) % 4 == 0
)


class TestHamming74:
    def test_rate(self):
        assert len(hamming74_encode([1, 0, 1, 1])) == 7

    def test_clean_roundtrip(self):
        data = [1, 0, 1, 1, 0, 0, 1, 0]
        decoded, corrections = hamming74_decode(hamming74_encode(data))
        assert decoded == data
        assert corrections == 0

    @given(nibbles)
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        decoded, _ = hamming74_decode(hamming74_encode(data))
        assert decoded == data

    @given(nibbles, st.data())
    @settings(max_examples=100)
    def test_single_error_per_codeword_corrected(self, data, drawer):
        encoded = hamming74_encode(data)
        corrupted = list(encoded)
        for word_start in range(0, len(corrupted), 7):
            flip = drawer.draw(st.integers(0, 6))
            corrupted[word_start + flip] ^= 1
        decoded, corrections = hamming74_decode(corrupted)
        assert decoded == data
        assert corrections == len(data) // 4

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError):
            hamming74_encode([1, 0, 1])
        with pytest.raises(ValueError):
            hamming74_decode([1] * 6)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            hamming74_encode([2, 0, 0, 0])


class TestSecded84:
    def test_rate(self):
        assert len(secded84_encode([1, 0, 1, 1])) == 8

    @given(nibbles)
    @settings(max_examples=50)
    def test_clean_roundtrip(self, data):
        decoded, corrections, erasures = secded84_decode(secded84_encode(data))
        assert decoded == data
        assert corrections == 0
        assert erasures == []

    @given(nibbles, st.data())
    @settings(max_examples=100)
    def test_single_error_per_codeword_corrected(self, data, drawer):
        encoded = secded84_encode(data)
        corrupted = list(encoded)
        for word_start in range(0, len(corrupted), 8):
            flip = drawer.draw(st.integers(0, 7))
            corrupted[word_start + flip] ^= 1
        decoded, corrections, erasures = secded84_decode(corrupted)
        assert decoded == data
        assert corrections == len(data) // 4
        assert erasures == []

    @given(nibbles, st.data())
    @settings(max_examples=100)
    def test_double_error_detected_never_miscorrected(self, data, drawer):
        # The SECDED property Hamming(7,4) lacks: two flips in a word are
        # flagged as an erasure rather than "corrected" into a third
        # wrong bit.
        encoded = secded84_encode(data)
        corrupted = list(encoded)
        hit_words = []
        for word_index, word_start in enumerate(range(0, len(corrupted), 8)):
            flips = drawer.draw(
                st.lists(st.integers(0, 7), min_size=2, max_size=2, unique=True)
            )
            hit_words.append(word_index)
            for flip in flips:
                corrupted[word_start + flip] ^= 1
        _, _, erasures = secded84_decode(corrupted)
        assert erasures == hit_words

    def test_parity_bit_flip_leaves_data_intact(self):
        data = [1, 0, 1, 1]
        encoded = secded84_encode(data)
        encoded[7] ^= 1  # the extended parity bit itself
        decoded, corrections, erasures = secded84_decode(encoded)
        assert decoded == data
        assert corrections == 1
        assert erasures == []

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError):
            secded84_encode([1, 0, 1])
        with pytest.raises(ValueError):
            secded84_decode([1] * 7)


class TestRepetition:
    def test_rate(self):
        assert repetition_encode([1, 0], factor=3) == [1, 1, 1, 0, 0, 0]

    def test_majority_vote_corrects(self):
        encoded = repetition_encode([1, 0], factor=3)
        encoded[0] ^= 1  # one flip in the first group
        encoded[5] ^= 1  # one flip in the second group
        assert repetition_decode(encoded, factor=3) == [1, 0]

    @given(st.lists(st.integers(0, 1), max_size=40), st.sampled_from([1, 3, 5]))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data, factor):
        assert repetition_decode(repetition_encode(data, factor), factor) == data

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20), st.data())
    @settings(max_examples=50)
    def test_minority_flips_always_corrected(self, data, drawer):
        encoded = repetition_encode(data, factor=5)
        corrupted = list(encoded)
        for group in range(len(data)):
            positions = drawer.draw(
                st.lists(st.integers(0, 4), min_size=0, max_size=2, unique=True)
            )
            for position in positions:
                corrupted[group * 5 + position] ^= 1
        assert repetition_decode(corrupted, factor=5) == data

    def test_even_factor_rejected(self):
        with pytest.raises(ValueError):
            repetition_encode([1], factor=2)
        with pytest.raises(ValueError):
            repetition_decode([1, 1], factor=2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            repetition_decode([1, 1], factor=3)


class TestBlockRepetition:
    def test_layout_is_whole_copies(self):
        assert block_repetition_encode([1, 0], copies=3) == [1, 0, 1, 0, 1, 0]

    def test_clean_roundtrip(self):
        data = [1, 0, 0, 1, 1]
        assert block_repetition_decode(block_repetition_encode(data), copies=3) == data

    def test_burst_error_in_one_copy_corrected(self):
        # A burst garbling several adjacent bits lands in a single copy —
        # the property plain per-bit repetition lacks.
        data = [1, 0, 1, 1, 0, 0, 1, 0]
        encoded = block_repetition_encode(data, copies=3)
        for position in range(2, 6):  # burst inside copy 0
            encoded[position] ^= 1
        assert block_repetition_decode(encoded, copies=3) == data

    @given(st.lists(st.integers(0, 1), max_size=30), st.sampled_from([1, 3, 5]))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data, copies):
        encoded = block_repetition_encode(data, copies=copies)
        assert block_repetition_decode(encoded, copies=copies) == data

    def test_even_copies_rejected(self):
        with pytest.raises(ValueError):
            block_repetition_encode([1], copies=2)
        with pytest.raises(ValueError):
            block_repetition_decode([1, 1], copies=2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            block_repetition_decode([1, 1], copies=3)
