"""Tests for the multi-lane channel extension."""

import numpy as np
import pytest

from repro.config import skylake_i7_6700k
from repro.core.encoding import random_bits
from repro.core.multichannel import MultiChannel, lane_window_cycles
from repro.errors import ChannelError
from repro.system.machine import Machine


@pytest.fixture(scope="module")
def two_lane():
    machine = Machine(skylake_i7_6700k(seed=911))
    channel = MultiChannel(machine, lanes=2)
    channel.setup()
    return machine, channel


class TestLaneWindow:
    def test_window_grows_with_lanes(self):
        assert lane_window_cycles(1) < lane_window_cycles(2) < lane_window_cycles(3)

    def test_single_lane_window_near_paper(self):
        assert 10_000 <= lane_window_cycles(1) <= 15_000


class TestMultiChannel:
    def test_lane_bounds(self, machine):
        with pytest.raises(ChannelError):
            MultiChannel(machine, lanes=0)
        with pytest.raises(ChannelError):
            MultiChannel(machine, lanes=9)

    def test_transmit_before_setup_rejected(self, machine):
        channel = MultiChannel(machine, lanes=2)
        with pytest.raises(ChannelError):
            channel.transmit([1, 0])

    def test_setup_builds_disjoint_lanes(self, two_lane):
        machine, channel = two_lane
        assert channel.is_ready
        lane_sets = []
        for lane, eviction_set in enumerate(channel.lane_sets):
            assert len(eviction_set) == 8
            truth = {
                machine.layout.versions_set(channel.trojan_space.translate(v), 128)
                for v in eviction_set
            }
            assert len(truth) == 1
            lane_sets.append(truth.pop())
        assert len(set(lane_sets)) == 2  # the lanes use different sets

    def test_transmission_accuracy(self, two_lane):
        _, channel = two_lane
        bits = random_bits(120, np.random.default_rng(3))
        result = channel.transmit(bits)
        assert result.metrics.error_rate <= 0.08
        assert len(result.received) == len(bits)

    def test_throughput_beats_single_lane(self, two_lane):
        _, channel = two_lane
        result = channel.transmit([1, 0] * 20)
        assert result.metrics.bit_rate > 35.0  # paper's single-lane rate

    def test_odd_length_padding(self, two_lane):
        _, channel = two_lane
        result = channel.transmit([1, 0, 1])  # not a multiple of lanes
        assert len(result.received) == 3

    def test_per_lane_error_accounting(self, two_lane):
        _, channel = two_lane
        bits = random_bits(80, np.random.default_rng(4))
        result = channel.transmit(bits)
        assert sum(result.per_lane_errors) == result.metrics.errors
