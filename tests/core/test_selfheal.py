"""Unit tests for the self-healing delivery layer."""

import math

import pytest

from repro.config import skylake_i7_6700k
from repro.core import SelfHealingChannel, SelfHealingConfig
from repro.core.channel import CovertChannel
from repro.errors import ChannelError
from repro.system.machine import Machine


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(frame_payload_bytes=0),
            dict(max_attempts_per_frame=0),
            dict(guard_windows=-1),
            dict(deadline_slack_windows=0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ChannelError):
            SelfHealingConfig(**kwargs)


class TestConstruction:
    def test_requires_ready_channel(self):
        machine = Machine(skylake_i7_6700k(seed=2))
        channel = CovertChannel(machine)  # no setup()
        with pytest.raises(ChannelError):
            SelfHealingChannel(channel)


class TestQuietDelivery:
    def test_payload_recovered_on_quiet_machine(self, ready_channel):
        machine, channel = ready_channel
        healer = SelfHealingChannel(channel)
        payload = b"mee cache covert channel"
        result = healer.send(payload)
        assert result.recovered == payload
        assert result.delivered
        metrics = result.metrics
        assert metrics.delivered_bytes == len(payload)
        assert metrics.frames_delivered == 3  # 24 bytes / 8-byte frames
        assert metrics.goodput_kbps > 0.0
        # Every attempt record is internally consistent.
        for attempt in result.attempts:
            assert attempt.end_cycle >= attempt.start_cycle
            assert attempt.window_cycles > 0

    def test_empty_payload_is_trivially_delivered(self, ready_channel):
        _, channel = ready_channel
        result = SelfHealingChannel(channel).send(b"")
        assert result.delivered
        assert result.attempts == []
        assert math.isnan(result.metrics.time_to_recover_cycles)

    def test_fixed_window_skips_controller(self, ready_channel):
        _, channel = ready_channel
        config = SelfHealingConfig(fixed_window_cycles=15_000, max_attempts_per_frame=3)
        result = SelfHealingChannel(channel, config).send(b"pinned!!")
        assert result.window_history == []
        assert all(a.window_cycles == 15_000 for a in result.attempts)
