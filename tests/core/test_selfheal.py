"""Unit tests for the self-healing delivery layer."""

import math

import pytest

from repro.config import skylake_i7_6700k
from repro.core import SelfHealingChannel, SelfHealingConfig
from repro.core.channel import CovertChannel
from repro.errors import ChannelError
from repro.system.machine import Machine


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(frame_payload_bytes=0),
            dict(max_attempts_per_frame=0),
            dict(guard_windows=-1),
            dict(deadline_slack_windows=0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ChannelError):
            SelfHealingConfig(**kwargs)


class TestConstruction:
    def test_requires_ready_channel(self):
        machine = Machine(skylake_i7_6700k(seed=2))
        channel = CovertChannel(machine)  # no setup()
        with pytest.raises(ChannelError):
            SelfHealingChannel(channel)


class TestQuietDelivery:
    def test_payload_recovered_on_quiet_machine(self, ready_channel):
        machine, channel = ready_channel
        healer = SelfHealingChannel(channel)
        payload = b"mee cache covert channel"
        result = healer.send(payload)
        assert result.recovered == payload
        assert result.delivered
        metrics = result.metrics
        assert metrics.delivered_bytes == len(payload)
        assert metrics.frames_delivered == 3  # 24 bytes / 8-byte frames
        assert metrics.goodput_kbps > 0.0
        # Every attempt record is internally consistent.
        for attempt in result.attempts:
            assert attempt.end_cycle >= attempt.start_cycle
            assert attempt.window_cycles > 0

    def test_empty_payload_is_trivially_delivered(self, ready_channel):
        _, channel = ready_channel
        result = SelfHealingChannel(channel).send(b"")
        assert result.delivered
        assert result.attempts == []
        assert math.isnan(result.metrics.time_to_recover_cycles)

    def test_fixed_window_skips_controller(self, ready_channel):
        _, channel = ready_channel
        config = SelfHealingConfig(fixed_window_cycles=15_000, max_attempts_per_frame=3)
        result = SelfHealingChannel(channel, config).send(b"pinned!!")
        assert result.window_history == []
        assert all(a.window_cycles == 15_000 for a in result.attempts)


class TestHybridArqCoding:
    def test_adaptive_and_fixed_coding_mutually_exclusive(self):
        with pytest.raises(ChannelError):
            SelfHealingConfig(adaptive_coding=True, coding="rs")

    def test_unknown_coding_profile_rejected(self, ready_channel):
        _, channel = ready_channel
        config = SelfHealingConfig(coding="rs_imaginary")
        with pytest.raises(Exception):
            SelfHealingChannel(channel, config)

    def test_fixed_profile_annotates_every_attempt(self, ready_channel):
        _, channel = ready_channel
        config = SelfHealingConfig(coding="rs_interleaved")
        result = SelfHealingChannel(channel, config).send(b"coded payload 16")
        assert result.recovered == b"coded payload 16"
        assert result.delivered
        for attempt in result.attempts:
            assert attempt.profile == "rs_interleaved"
            assert attempt.fec_corrected >= 0
            assert attempt.fec_erasures >= 0
        # Telemetry flows: one coding/quality record per attempt.
        assert len(result.coding_history) == len(result.attempts)
        assert len(result.quality_history) == len(result.attempts)
        for profile, _delivered, load in result.coding_history:
            assert profile == "rs_interleaved"
            assert 0.0 <= load <= 1.0

    def test_fec_vs_arq_recovery_split_accounted(self, ready_channel):
        _, channel = ready_channel
        config = SelfHealingConfig(coding="rs_interleaved")
        result = SelfHealingChannel(channel, config).send(b"split accounting!")
        metrics = result.metrics
        assert metrics.fec_corrected_frames >= 0
        assert metrics.arq_recovered_frames >= 0
        # A frame recovered by FEC on its first attempt is not also an ARQ
        # recovery, and neither pool can exceed the delivered frames.
        assert (
            metrics.fec_corrected_frames + metrics.arq_recovered_frames
            <= metrics.frames_delivered
        )
        # Frames whose winning attempt was a retry are exactly the ARQ pool.
        winning_retries = sum(
            1
            for attempt in result.attempts
            if attempt.delivered and attempt.attempt > 1
        )
        assert metrics.arq_recovered_frames == winning_retries

    def test_adaptive_coding_walks_the_default_ladder(self, ready_channel):
        from repro.coding import DEFAULT_LADDER

        _, channel = ready_channel
        config = SelfHealingConfig(adaptive_coding=True)
        result = SelfHealingChannel(channel, config).send(b"adaptive ladder!")
        assert result.recovered == b"adaptive ladder!"
        names = {profile.name for profile in DEFAULT_LADDER}
        assert all(attempt.profile in names for attempt in result.attempts)
        # On a quiet machine the controller starts on the lightest rung.
        assert result.attempts[0].profile == DEFAULT_LADDER[0].name

    def test_uncoded_path_reports_raw_profile(self, ready_channel):
        _, channel = ready_channel
        result = SelfHealingChannel(channel).send(b"legacy!!")
        assert all(attempt.profile == "raw" for attempt in result.attempts)
        assert result.coding_history == []
        assert result.quality_history == []
        assert result.metrics.fec_corrected_frames == 0
