"""Integration tests for the paper's Section 4 procedures.

These run the actual attack code against the simulated machine and check
it recovers the ground-truth MEE geometry.
"""

import pytest

from repro.core.candidates import allocate_candidate_pages
from repro.core.latency import calibrate_classifier
from repro.core.reverse_engineering import (
    CapacityCurve,
    capacity_experiment,
    eviction_test,
    find_eviction_set,
    sweep_addresses,
)
from repro.errors import ChannelError
from repro.sgx.timing import CounterThreadTimer


@pytest.fixture()
def attack_setup(enclave_setup):
    machine, space, enclave = enclave_setup
    timer = CounterThreadTimer()
    calibration = calibrate_classifier(machine, space, enclave, timer, samples=48)
    return machine, space, enclave, timer, calibration.classifier


class TestCapacityCurve:
    def test_saturation_and_capacity(self):
        curve = CapacityCurve(sizes=(2, 4, 64), probabilities=(0.1, 0.4, 1.0), trials=10)
        assert curve.saturation_size(0.99) == 64
        assert curve.inferred_capacity_bytes(0.99) == 64 * 1024

    def test_no_saturation_raises(self):
        curve = CapacityCurve(sizes=(2, 4), probabilities=(0.1, 0.4), trials=10)
        with pytest.raises(ChannelError):
            curve.saturation_size(0.99)


class TestEvictionTest:
    def test_self_test_is_hit(self, attack_setup):
        # Empty set: the victim's re-access must be a versions hit.
        machine, space, enclave, timer, classifier = attack_setup
        region = enclave.alloc(4096)
        results = []

        def body():
            elapsed = yield from eviction_test([], region.base, timer)
            results.append(elapsed)

        machine.spawn("et", body(), core=0, space=space, enclave=enclave)
        machine.run()
        assert not classifier.is_miss(results[0])

    def test_sweep_rotation_preserves_coverage(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        region = enclave.alloc(8 * 4096)
        addresses = [region.base + i * 4096 for i in range(8)]
        touched = []

        def body():
            yield from sweep_addresses(addresses, rotation=3)
            touched.append(True)

        machine.spawn("sweep", body(), core=0, space=space, enclave=enclave)
        machine.run()
        for vaddr in addresses:
            assert machine.mee.versions_cached(space.translate(vaddr))


class TestCapacityExperiment:
    def test_curve_monotone_trend_and_saturation(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        curve = capacity_experiment(
            machine, space, enclave, timer, classifier, sizes=(4, 64), trials=25
        )
        small, large = curve.probabilities
        assert large > small
        assert large >= 0.9  # paper: 100% at 64

    def test_inferred_capacity_is_64kb(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        curve = capacity_experiment(
            machine, space, enclave, timer, classifier, sizes=(64,), trials=30
        )
        assert curve.inferred_capacity_bytes(0.9) == 64 * 1024


class TestAlgorithm1:
    def test_recovers_8_way_eviction_set(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        candidates = allocate_candidate_pages(enclave, 128, unit=3)
        result = find_eviction_set(
            machine, space, enclave, candidates, timer, classifier
        )
        assert result.associativity == 8  # the paper's conclusion

    def test_eviction_set_is_one_true_cache_set(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        candidates = allocate_candidate_pages(enclave, 128, unit=5)
        result = find_eviction_set(
            machine, space, enclave, candidates, timer, classifier
        )
        truth = {
            machine.layout.versions_set(space.translate(vaddr), 128)
            for vaddr in result.eviction_set
        }
        assert len(truth) == 1
        test_set = machine.layout.versions_set(space.translate(result.test_address), 128)
        assert truth == {test_set}

    def test_index_set_is_bounded_by_capacity_slice(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        candidates = allocate_candidate_pages(enclave, 128, unit=1)
        result = find_eviction_set(
            machine, space, enclave, candidates, timer, classifier
        )
        # 8 possible sets x 8 ways = 64 resident candidates max (+ noise).
        assert result.index_set_size <= 70

    def test_small_pool_raises(self, attack_setup):
        machine, space, enclave, timer, classifier = attack_setup
        candidates = allocate_candidate_pages(enclave, 8, unit=3)
        with pytest.raises(ChannelError):
            find_eviction_set(machine, space, enclave, candidates, timer, classifier)
