"""Integration tests for the covert channel (Algorithm 2).

Uses the session-scoped ``ready_channel`` fixture: setup (calibration,
Algorithm 1, monitor search) runs once; each test only transmits.
"""

import numpy as np
import pytest

from repro.core.channel import ChannelConfig, CovertChannel, wait_until
from repro.core.encoding import alternating_bits, pattern_100100, random_bits
from repro.errors import ChannelError
from repro.sgx.timing import CounterThreadTimer


class TestSetup:
    def test_setup_products(self, ready_channel):
        _, channel = ready_channel
        assert channel.is_ready
        assert channel.eviction_result.associativity == 8
        assert channel.calibration.separation > 200
        best = max(channel.monitor_result.miss_counts)
        assert best >= channel.config.monitor_trials * 0.7

    def test_monitor_conflicts_with_eviction_set(self, ready_channel):
        machine, channel = ready_channel
        monitor_set = machine.layout.versions_set(
            channel.spy_space.translate(channel.monitor_result.monitor), 128
        )
        trojan_sets = {
            machine.layout.versions_set(channel.trojan_space.translate(vaddr), 128)
            for vaddr in channel.eviction_result.eviction_set
        }
        assert trojan_sets == {monitor_set}

    def test_transmit_before_setup_rejected(self, machine):
        channel = CovertChannel(machine)
        with pytest.raises(ChannelError):
            channel.transmit([1, 0])


class TestTransmission:
    def test_alternating_pattern_decodes(self, ready_channel):
        _, channel = ready_channel
        result = channel.transmit(alternating_bits(40))
        assert result.metrics.error_rate <= 0.1

    def test_probe_times_bimodal(self, ready_channel):
        _, channel = ready_channel
        result = channel.transmit(alternating_bits(40))
        zeros = [t for t, bit in zip(result.probe_times, result.sent) if bit == 0]
        ones = [t for t, bit in zip(result.probe_times, result.sent) if bit == 1]
        assert np.median(ones) - np.median(zeros) > 200

    def test_long_random_payload_low_error(self, ready_channel):
        _, channel = ready_channel
        bits = random_bits(400, np.random.default_rng(5))
        result = channel.transmit(bits)
        assert result.metrics.error_rate < 0.06  # paper: 1.7% typical

    def test_headline_bit_rate(self, ready_channel):
        _, channel = ready_channel
        result = channel.transmit([1, 0, 1], window_cycles=15_000)
        assert result.metrics.bit_rate == pytest.approx(35.0)

    def test_all_zeros_and_all_ones(self, ready_channel):
        _, channel = ready_channel
        zeros = channel.transmit([0] * 30)
        ones = channel.transmit([1] * 30)
        assert zeros.metrics.error_rate <= 0.15
        assert ones.metrics.error_rate <= 0.15

    def test_figure8_pattern(self, ready_channel):
        _, channel = ready_channel
        result = channel.transmit(pattern_100100(60))
        assert result.metrics.error_rate < 0.1

    def test_tiny_window_fails(self, ready_channel):
        # Paper Figure 7: below the ~9000-cycle eviction time the channel
        # degrades sharply.
        _, channel = ready_channel
        good = channel.transmit(random_bits(150, np.random.default_rng(6)), window_cycles=15_000)
        bad = channel.transmit(random_bits(150, np.random.default_rng(6)), window_cycles=6_000)
        assert bad.metrics.error_rate > good.metrics.error_rate + 0.1

    def test_result_records_everything(self, ready_channel):
        _, channel = ready_channel
        payload = [1, 0, 0, 1]
        result = channel.transmit(payload)
        assert result.sent == payload
        assert len(result.received) == 4
        assert len(result.probe_times) == 4
        assert result.window_cycles == channel.config.window_cycles

    def test_error_positions_consistent(self, ready_channel):
        _, channel = ready_channel
        result = channel.transmit(random_bits(100, np.random.default_rng(7)))
        assert len(result.error_positions) == result.metrics.errors

    def test_invalid_bit_rejected(self, ready_channel):
        _, channel = ready_channel
        with pytest.raises(ChannelError):
            channel.transmit([0, 2, 1])


class TestWaitUntil:
    def test_waits_to_target(self, enclave_setup):
        machine, space, enclave = enclave_setup
        timer = CounterThreadTimer()
        results = []

        def body():
            target = machine.now + 30_000
            reached = yield from wait_until(timer, target)
            results.append((target, reached, machine.clocks[0].now))

        machine.spawn("w", body(), core=0, space=space, enclave=enclave)
        machine.run()
        target, reached, now = results[0]
        assert reached >= target
        assert now >= target
        # Must not overshoot wildly (a couple of timer reads + staleness).
        assert now <= target + 5_000

    def test_past_target_returns_immediately(self, enclave_setup):
        machine, space, enclave = enclave_setup
        timer = CounterThreadTimer()
        ops = []

        def body():
            value = yield from wait_until(timer, 0)
            ops.append(value)

        machine.spawn("w", body(), core=0, space=space, enclave=enclave)
        machine.run()
        assert len(ops) == 1
