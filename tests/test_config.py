"""Unit tests for repro.config."""

import pytest

from repro.config import (
    CacheGeometry,
    DRAMConfig,
    MEECacheConfig,
    MEELatencyConfig,
    SystemConfig,
    skylake_i7_6700k,
)
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(64 * 1024, 8, 64)
        assert geometry.num_sets == 128

    def test_num_lines(self):
        geometry = CacheGeometry(64 * 1024, 8, 64)
        assert geometry.num_lines == 1024

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1000, 8, 64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(3 * 8 * 64, 8, 64)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(64 * 1024, 8, 64, policy="mru")

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(-64, 8, 64)

    @pytest.mark.parametrize("policy", ["lru", "plru", "rrip", "random"])
    def test_accepts_all_policies(self, policy):
        CacheGeometry(64 * 1024, 8, 64, policy=policy)


class TestMEECacheConfig:
    def test_paper_geometry_default(self):
        config = MEECacheConfig()
        assert config.size_bytes == 64 * 1024
        assert config.ways == 8
        assert config.num_sets == 128
        assert config.line_bytes == 64

    def test_as_geometry_roundtrip(self):
        config = MEECacheConfig()
        geometry = config.as_geometry()
        assert geometry.num_sets == config.num_sets
        assert geometry.ways == config.ways


class TestMEELatencyConfig:
    def test_versions_hit_anchor(self):
        latency = MEELatencyConfig()
        assert latency.expected_latency(165.0, 0) == pytest.approx(480.0)

    def test_versions_miss_anchor(self):
        latency = MEELatencyConfig()
        assert latency.expected_latency(165.0, 1) == pytest.approx(750.0)

    def test_root_anchor(self):
        latency = MEELatencyConfig()
        assert latency.expected_latency(165.0, 4) == pytest.approx(1160.0)

    def test_monotone_in_level(self):
        latency = MEELatencyConfig()
        values = [latency.expected_latency(165.0, level) for level in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_l2_vs_root_gap_smallest(self):
        # Paper: "the difference between level 2 data hit or accessing the
        # root level is relatively small".
        latency = MEELatencyConfig()
        gaps = [
            latency.expected_latency(165.0, level + 1) - latency.expected_latency(165.0, level)
            for level in range(4)
        ]
        assert gaps[-1] == min(gaps)

    def test_rejects_too_few_levels(self):
        with pytest.raises(ConfigurationError):
            MEELatencyConfig(level_miss_cycles=(100.0,))


class TestDRAMConfig:
    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(access_cycles=-1.0)

    def test_rejects_bad_tail_probability(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(tail_probability=1.5)


class TestSystemConfig:
    def test_preset_matches_paper_platform(self):
        config = skylake_i7_6700k()
        assert config.cores == 4
        assert config.mee_region_bytes == 128 * 1024 * 1024
        assert config.mee_cache.num_sets == 128

    def test_with_seed_changes_only_seed(self):
        config = skylake_i7_6700k(seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert other.mee_cache == config.mee_cache

    def test_with_mee_cache(self):
        config = skylake_i7_6700k()
        other = config.with_mee_cache(MEECacheConfig(policy="lru"))
        assert other.mee_cache.policy == "lru"
        assert config.mee_cache.policy == "rrip"

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(cores=0)

    def test_cycles_to_seconds(self):
        config = skylake_i7_6700k()
        assert config.cycles_to_seconds(4.2e9) == pytest.approx(1.0)

    def test_headline_window_is_35_kbps(self):
        # 4.2e9 / 15000 / 8 / 1000 = 35 KBps: the paper's headline is pure
        # cycle arithmetic at the turbo clock.
        config = skylake_i7_6700k()
        assert config.clock_hz / 15000 / 8 / 1000 == pytest.approx(35.0)
