"""End-to-end integration: the whole attack from a cold machine.

These are the tests that stand in for "does the paper's system work as a
system": reverse-engineer the cache, build the channel, exfiltrate real
payloads.
"""

import numpy as np
import pytest

from repro import (
    CovertChannel,
    Machine,
    bits_to_text,
    skylake_i7_6700k,
    text_to_bits,
)
from repro.core.channel import ChannelConfig
from repro.core.ecc import block_repetition_decode, block_repetition_encode


class TestFullAttack:
    @pytest.mark.parametrize("seed", [101, 202])
    def test_cold_start_to_working_channel(self, seed):
        machine = Machine(skylake_i7_6700k(seed=seed))
        channel = CovertChannel(machine)
        channel.setup()
        assert channel.eviction_result.associativity == 8
        result = channel.transmit([1, 0, 1, 1, 0, 0, 1, 0] * 6)
        assert result.metrics.error_rate <= 0.08

    def test_text_exfiltration(self, ready_channel):
        _, channel = ready_channel
        secret = "sk-4242-secret-token"
        result = channel.transmit(text_to_bits(secret))
        recovered = bits_to_text(result.received)
        # Raw channel: ~1-2% BER; a 160-bit payload sees a handful of bit
        # flips at worst (possibly paired by one OS interrupt).
        assert result.metrics.errors <= 8
        matches = sum(1 for a, b in zip(secret, recovered) if a == b)
        assert matches >= len(secret) - 4

    def test_text_exfiltration_with_repetition_code(self, ready_channel):
        # Block repetition: copies of each bit sit a whole payload apart,
        # so bursty channel errors (stolen time slices) cannot out-vote
        # the clean copies.
        _, channel = ready_channel
        secret = "AES key: 0xDEADBEEF"
        encoded = block_repetition_encode(text_to_bits(secret), copies=5)
        result = channel.transmit(encoded)
        decoded = block_repetition_decode(result.received, copies=5)
        assert bits_to_text(decoded) == secret

    def test_channel_reusable_across_transmissions(self, ready_channel):
        _, channel = ready_channel
        first = channel.transmit([1, 0, 1, 0] * 10)
        second = channel.transmit([0, 1, 1, 0] * 10)
        assert first.metrics.error_rate <= 0.1
        assert second.metrics.error_rate <= 0.1

    def test_different_agreed_units_work(self):
        machine = Machine(skylake_i7_6700k(seed=303))
        channel = CovertChannel(machine, config=ChannelConfig(unit=6))
        channel.setup()
        result = channel.transmit([1, 0] * 20)
        assert result.metrics.error_rate <= 0.1

    def test_determinism_same_seed_same_setup(self):
        first = CovertChannel(Machine(skylake_i7_6700k(seed=404)))
        first.setup()
        second = CovertChannel(Machine(skylake_i7_6700k(seed=404)))
        second.setup()
        assert first.eviction_result.eviction_set == second.eviction_result.eviction_set
        assert first.monitor_result.monitor == second.monitor_result.monitor


class TestCrossEnclaveIsolation:
    def test_channel_works_without_shared_memory(self, ready_channel):
        # Threat model: no shared memory between trojan and spy — their
        # address spaces must not overlap physically.
        machine, channel = ready_channel
        trojan_frames = {
            channel.trojan_space.translate(vaddr) // 4096
            for vaddr in channel.eviction_result.eviction_set
        }
        monitor_frame = channel.spy_space.translate(channel.monitor_result.monitor) // 4096
        assert monitor_frame not in trojan_frames

    def test_signal_carried_only_by_mee_cache(self, ready_channel):
        # The monitor line and the eviction set share an MEE cache set but
        # no LLC interaction is needed: flushes keep data out of the
        # hierarchy, so the only shared state is integrity-tree metadata.
        machine, channel = ready_channel
        monitor_paddr = channel.spy_space.translate(channel.monitor_result.monitor)
        monitor_versions = machine.layout.versions_line(monitor_paddr)
        assert machine.physical.is_metadata(monitor_versions)
