"""End-to-end: the paper's attack under the full sanitizer.

Acceptance for the invariant engine: the covert channel — eviction-set
construction, calibration, and a transmit — runs with every checker and
the differential oracle active, with *zero* invariant violations, and
instrumentation does not change a single simulated bit.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import build_ready_channel
from repro.sanitizer import SanitizerConfig

BITS = [1, 0, 0] * 4


@pytest.fixture(autouse=True)
def _pristine_sanitizer_env(monkeypatch):
    # These tests install sanitizers explicitly; an outer REPRO_SANITIZE
    # (the CI sanitizer job) would auto-install one first and collide.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_ORACLE", raising=False)


def _sanitized_channel(config):
    from repro.config import skylake_i7_6700k
    from repro.core.channel import CovertChannel
    from repro.system.machine import Machine

    machine = Machine(skylake_i7_6700k(seed=321))
    if config is not None:
        machine.install_sanitizer(config)
    channel = CovertChannel(machine)
    channel.setup()
    return machine, channel


class TestSanitizedChannel:
    def test_full_attack_with_all_checkers_and_oracle(self):
        machine, channel = _sanitized_channel(
            SanitizerConfig(every_n_events=20_000, differential_oracle=True)
        )
        result = channel.transmit(list(BITS))
        # The whole pipeline ran under instrumentation without a single
        # InvariantViolation / OracleDivergence (either would have raised).
        assert machine.sanitizer.checks_run > 0
        assert machine.hierarchy.llc.ops_checked > 0
        assert result.sent == list(BITS)

    def test_sanitizer_does_not_perturb_the_channel(self):
        plain_machine, plain_channel = _sanitized_channel(None)
        plain = plain_channel.transmit(list(BITS))
        checked_machine, checked_channel = _sanitized_channel(
            SanitizerConfig(every_n_events=10_000)
        )
        checked = checked_channel.transmit(list(BITS))
        assert checked.received == plain.received
        assert checked.probe_times == plain.probe_times
        assert checked_machine.fingerprint() == plain_machine.fingerprint()

    def test_ready_channel_machine_passes_on_demand_sweep(self):
        machine, channel = build_ready_channel(seed=55)
        channel.transmit([1, 0, 1])
        assert machine.sanitize() == 5
