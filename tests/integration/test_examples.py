"""Smoke tests for the example scripts.

Each example must at least import cleanly and expose ``main``; the
cheapest one runs end to end (the others exercise code paths the
experiment tests already cover, at sizes unsuited to a test suite).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_five_examples_ship(self):
        assert len(EXAMPLE_FILES) >= 5

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None))
        assert module.__doc__, "examples must explain themselves"

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "bit rate" in output
        assert "35.0 KBps" in output
