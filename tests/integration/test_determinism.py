"""Determinism guarantees: same seed ⇒ bit-identical results.

Three layers of protection:

* **golden values** — a small seeded trial is pinned against numbers
  captured from the pre-fast-path simulator (``golden_channel_seed123.json``),
  so hot-path rewrites that silently change simulated behaviour fail here;
* **run-to-run** — two serial runs in one process agree bit for bit;
* **serial vs. parallel** — :func:`repro.experiments.runner.run_trials`
  with ``jobs=4`` returns exactly what the serial loop returns.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.experiments.common import build_ready_channel
from repro.experiments.runner import run_trials

GOLDEN_PATH = Path(__file__).parent / "golden_channel_seed123.json"

GOLDEN_SEED = 123
GOLDEN_BITS = [1, 0, 0] * 10 + [1, 0]


def _run_golden_trial():
    """The pinned trial: 32-bit '100100...' transmit at seed 123."""
    machine, channel = build_ready_channel(seed=GOLDEN_SEED)
    result = channel.transmit(list(GOLDEN_BITS))
    return machine, result


def _snapshot(machine, result) -> dict:
    probe_hash = hashlib.sha256(json.dumps(result.probe_times).encode()).hexdigest()
    return {
        "seed": GOLDEN_SEED,
        "sent": list(result.sent),
        "received": list(result.received),
        "probe_times_sha256": probe_hash,
        "error_rate": result.metrics.error_rate,
        "bit_rate": result.metrics.bit_rate,
        "mee_accesses": machine.mee.stats.accesses,
        "mee_hit_level_counts": list(machine.mee.stats.hit_level_counts),
        "mee_cache_hits": machine.mee.cache.stats.hits,
        "mee_cache_misses": machine.mee.cache.stats.misses,
        "mee_cache_evictions": machine.mee.cache.stats.evictions,
        "llc_hits": machine.hierarchy.llc.stats.hits,
        "llc_misses": machine.hierarchy.llc.stats.misses,
        "total_ops": machine.scheduler.total_ops,
    }


class TestGoldenValues:
    """Pre- vs. post-fast-path: the refactor must not change behaviour."""

    def test_seeded_trial_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        machine, result = _run_golden_trial()
        snapshot = _snapshot(machine, result)
        mismatches = {
            key: (snapshot[key], golden[key])
            for key in golden
            if snapshot[key] != golden[key]
        }
        assert not mismatches, f"golden drift: {mismatches}"


class TestRunToRun:
    def test_two_serial_runs_bit_identical(self):
        machine_a, result_a = _run_golden_trial()
        machine_b, result_b = _run_golden_trial()
        assert result_a.received == result_b.received
        assert result_a.probe_times == result_b.probe_times
        assert result_a.metrics == result_b.metrics
        assert machine_a.mee.stats.hit_level_counts == machine_b.mee.stats.hit_level_counts
        assert machine_a.mee.cache.stats == machine_b.mee.cache.stats
        assert machine_a.scheduler.total_ops == machine_b.scheduler.total_ops


def _transmit_trial(seed: int) -> dict:
    """Module-level (picklable) trial for the parallel identity check."""
    machine, channel = build_ready_channel(seed=seed)
    result = channel.transmit([1, 0] * 8)
    return {
        "received": list(result.received),
        "probe_times": list(result.probe_times),
        "error_rate": result.metrics.error_rate,
        "mee_cache_hits": machine.mee.cache.stats.hits,
        "mee_cache_misses": machine.mee.cache.stats.misses,
    }


class TestSerialVsParallel:
    def test_run_trials_jobs4_bit_identical_to_serial(self):
        seeds = [201, 202]
        serial = [_transmit_trial(seed) for seed in seeds]
        parallel = run_trials(_transmit_trial, seeds, jobs=4)
        assert serial == parallel
