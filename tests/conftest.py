"""Shared fixtures for the test suite.

Expensive fixtures (a fully set-up covert channel) are session-scoped;
tests that need to mutate machine state build their own machines.
"""

from __future__ import annotations

import pytest

from repro.config import skylake_i7_6700k
from repro.core.channel import CovertChannel
from repro.system.machine import Machine


@pytest.fixture()
def machine() -> Machine:
    """A fresh default machine (seed 1234)."""
    return Machine(skylake_i7_6700k(seed=1234))


@pytest.fixture()
def enclave_setup(machine):
    """(machine, space, enclave) with a host address space and an enclave."""
    space = machine.new_address_space("test-proc")
    enclave = machine.create_enclave("test-enclave", space)
    return machine, space, enclave


@pytest.fixture(scope="session")
def ready_channel():
    """A fully set-up covert channel, shared across channel tests.

    Tests using this fixture must only *transmit* (transmissions do not
    invalidate the setup), never re-run setup or tear down enclaves.
    """
    machine = Machine(skylake_i7_6700k(seed=4321))
    channel = CovertChannel(machine)
    channel.setup()
    return machine, channel
