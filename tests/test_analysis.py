"""Unit tests for repro.analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import Histogram, latency_histogram
from repro.analysis.render import render_curve, render_histogram, render_series, render_table
from repro.analysis.stats import summarize


class TestHistogram:
    def test_counts_sum_to_samples(self):
        histogram = latency_histogram([480, 485, 750, 760, 1100], bin_width=50)
        assert histogram.total == 5

    def test_bin_centers_match_edges(self):
        histogram = latency_histogram([0.0, 99.0], bin_width=50, lo=0, hi=100)
        assert histogram.bin_centers() == [25.0, 75.0]

    def test_mode_bin(self):
        histogram = latency_histogram([10, 10, 10, 90], bin_width=50, lo=0, hi=100)
        center, count = histogram.mode_bin()
        assert center == 25.0 and count == 3

    def test_peaks_finds_separated_modes(self):
        samples = [480] * 50 + [750] * 40 + [1100] * 30
        histogram = latency_histogram(samples, bin_width=25)
        peaks = histogram.peaks(min_count=10)
        assert len(peaks) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_histogram([])

    @given(st.lists(st.floats(min_value=0, max_value=2000), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_total_preserved_property(self, samples):
        histogram = latency_histogram(samples, bin_width=25)
        assert histogram.total == len(samples)


class TestSummaryStats:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.median == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_fields(self):
        assert "med=" in str(summarize([1.0, 2.0]))


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_histogram_render_skips_empty_bins(self):
        histogram = latency_histogram([0.0, 99.0], bin_width=10, lo=0, hi=100)
        text = render_histogram(histogram)
        assert len(text.splitlines()) == 2

    def test_curve_render(self):
        text = render_curve([2, 4], [0.5, 1.0], "n", "p")
        assert "0.500" in text and "1.000" in text

    def test_curve_rejects_mismatch(self):
        with pytest.raises(ValueError):
            render_curve([1], [0.1, 0.2], "n", "p")

    def test_series_marks_errors(self):
        text = render_series([100, 200, 300], marks=[1])
        assert "<-- error" in text
        assert text.count("o") >= 2

    def test_series_empty(self):
        assert "empty" in render_series([])
