"""Property-based invariants of the cache core under random op sequences.

Three independent oracles over the same random streams:

* the sanitizer's structural checker (:func:`check_cache`) must hold
  after every single operation;
* the differential reference model must agree with the fast path on
  every outcome (:class:`DifferentialCache` raises on divergence);
* export/restore must be a faithful fork — a restored cache replays an
  arbitrary suffix of operations with outcomes identical to the original.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.mem.cache import SetAssociativeCache
from repro.mem.replacement import make_policy
from repro.sanitizer import DifferentialCache
from repro.sanitizer.invariants import check_cache

POLICIES = ("lru", "plru", "rrip")

def geometry(policy: str) -> CacheGeometry:
    return CacheGeometry(size_bytes=4 * 64 * 4, ways=4, line_bytes=64, policy=policy)


# (op, line index) over a footprint 4x the cache: misses, hits, and
# conflict evictions all occur.
operations = st.lists(
    st.tuples(
        st.sampled_from(["access", "probe", "fill", "invalidate"]),
        st.integers(0, 63),
    ),
    min_size=1,
    max_size=150,
)


def apply(cache, op: str, index: int):
    addr = index * 64
    if op == "access":
        result = cache.access(addr)
        return (result.hit, result.evicted.line_addr if result.evicted else None)
    if op == "probe":
        return cache.probe(addr)
    if op == "fill":
        record = cache.fill(addr)
        return record.line_addr if record is not None else None
    return cache.invalidate(addr)


class TestStructuralInvariants:
    @pytest.mark.parametrize("policy", POLICIES)
    @given(stream=operations)
    @settings(max_examples=25, deadline=None)
    def test_checker_holds_after_every_op(self, policy, stream):
        cache = SetAssociativeCache(geometry(policy))
        for op, index in stream:
            apply(cache, op, index)
            check_cache(cache, name=policy)

    @pytest.mark.parametrize("policy", POLICIES)
    @given(stream=operations)
    @settings(max_examples=25, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, policy, stream):
        cache = SetAssociativeCache(geometry(policy))
        capacity = geometry(policy).num_sets * geometry(policy).ways
        for op, index in stream:
            apply(cache, op, index)
            assert 0 <= len(cache) <= capacity

    @given(stream=operations)
    @settings(max_examples=25, deadline=None)
    def test_fast_path_matches_reference_model(self, stream):
        # DifferentialCache raises OracleDivergence on any disagreement.
        for policy in POLICIES:
            cache = DifferentialCache(geometry(policy))
            for op, index in stream:
                apply(cache, op, index)


class TestExportRestoreFork:
    @pytest.mark.parametrize("policy", POLICIES)
    @given(prefix=operations, suffix=operations)
    @settings(max_examples=25, deadline=None)
    def test_restored_cache_replays_identically(self, policy, prefix, suffix):
        original = SetAssociativeCache(geometry(policy))
        for op, index in prefix:
            apply(original, op, index)
        fork = SetAssociativeCache(geometry(policy))
        fork.restore_state(original.export_state())
        check_cache(fork, name=f"fork-{policy}")
        assert fork.export_state() == original.export_state()
        for op, index in suffix:
            assert apply(fork, op, index) == apply(original, op, index)
        assert fork.export_state() == original.export_state()

    @pytest.mark.parametrize("policy", POLICIES)
    @given(stream=operations)
    @settings(max_examples=15, deadline=None)
    def test_policy_restore_roundtrip(self, policy, stream):
        ways = 4
        source = make_policy(policy, ways)
        for _op, index in stream:
            way = index % ways
            source.fill(way)
            source.touch(way)
        clone = make_policy(policy, ways)
        clone.restore_state(source.export_state())
        assert clone.export_state() == source.export_state()
        # Both agree on every subsequent victim decision.
        for _ in range(8):
            victim = source.victim()
            assert clone.victim() == victim
            source.fill(victim)
            clone.fill(victim)

    def test_restore_rejects_ways_mismatch(self):
        policy = make_policy("rrip", 4)
        with pytest.raises(ConfigurationError):
            policy.restore_state({"rrpv": [0, 1]})
