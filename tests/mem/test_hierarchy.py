"""Unit tests for repro.mem.hierarchy."""

import pytest

from repro.config import CacheGeometry, HierarchyConfig
from repro.mem.hierarchy import AccessLevel, CacheHierarchy


def tiny_hierarchy(cores=2):
    config = HierarchyConfig(
        l1=CacheGeometry(2 * 64 * 2, 2, 64, hit_cycles=4),
        l2=CacheGeometry(4 * 64 * 4, 4, 64, hit_cycles=14),
        llc=CacheGeometry(8 * 64 * 8, 8, 64, hit_cycles=42),
    )
    return CacheHierarchy(config, cores)


class TestAccessPath:
    def test_first_access_is_memory(self):
        hierarchy = tiny_hierarchy()
        assert hierarchy.access(0, 0x1000) is AccessLevel.MEMORY

    def test_second_access_is_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        assert hierarchy.access(0, 0x1000) is AccessLevel.L1

    def test_cross_core_sees_llc(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        assert hierarchy.access(1, 0x1000) is AccessLevel.LLC

    def test_llc_fill_promotes_to_private(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        hierarchy.access(1, 0x1000)
        assert hierarchy.access(1, 0x1000) is AccessLevel.L1

    def test_latency_of_levels(self):
        hierarchy = tiny_hierarchy()
        assert hierarchy.latency_of(AccessLevel.L1) == 4
        assert hierarchy.latency_of(AccessLevel.L2) == 14
        assert hierarchy.latency_of(AccessLevel.LLC) == 42

    def test_latency_of_memory_raises(self):
        hierarchy = tiny_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.latency_of(AccessLevel.MEMORY)


class TestFlush:
    def test_flush_forces_memory_access(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        assert hierarchy.flush(0x1000)
        assert hierarchy.access(0, 0x1000) is AccessLevel.MEMORY

    def test_flush_affects_all_cores(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        hierarchy.access(1, 0x1000)
        hierarchy.flush(0x1000)
        assert hierarchy.access(1, 0x1000) is AccessLevel.MEMORY

    def test_flush_absent_line_returns_false(self):
        assert not tiny_hierarchy().flush(0x5000)


class TestInclusivity:
    def test_llc_eviction_back_invalidates_private_caches(self):
        hierarchy = tiny_hierarchy()
        # Fill one LLC set (8 ways) with lines all mapping to LLC set 0.
        llc_sets = hierarchy.llc.geometry.num_sets
        victim = 0
        hierarchy.access(0, victim)
        assert hierarchy.access(0, victim) is AccessLevel.L1
        for i in range(1, 9):
            hierarchy.access(1, i * llc_sets * 64)
        # victim must be gone from core 0's private caches too.
        assert hierarchy.access(0, victim) is AccessLevel.MEMORY

    def test_back_invalidate_only_visits_holder_cores(self):
        # The holder registry must track exactly the cores that pulled the
        # line into their private caches, so back-invalidation is
        # O(holders) rather than a sweep over every core.
        hierarchy = tiny_hierarchy(cores=4)
        llc_sets = hierarchy.llc.geometry.num_sets
        victim = 0
        hierarchy.access(0, victim)
        hierarchy.access(1, victim)
        before = [
            (hierarchy.l1[core].stats.flushes, hierarchy.l2[core].stats.flushes)
            for core in range(4)
        ]
        for i in range(1, 9):
            hierarchy.access(2, i * llc_sets * 64)
        # Holder cores 0 and 1 lost the line; cores 2 and 3 (never holders
        # of the victim) saw no invalidation traffic for it.
        assert hierarchy.access(0, victim) is AccessLevel.MEMORY
        for core in (2, 3):
            assert hierarchy.l1[core].stats.flushes == before[core][0]
            assert hierarchy.l2[core].stats.flushes == before[core][1]

    def test_holder_registry_survives_repeated_evictions(self):
        # Stale holder entries must not accumulate: cycling many conflicting
        # lines through the LLC keeps private caches consistent throughout.
        hierarchy = tiny_hierarchy(cores=2)
        llc_sets = hierarchy.llc.geometry.num_sets
        for round_index in range(3):
            for i in range(12):
                hierarchy.access(i % 2, (round_index * 12 + i) * llc_sets * 64)
        for core in range(2):
            l1 = hierarchy.l1[core]
            for set_index in range(l1.geometry.num_sets):
                for line in l1.resident_lines(set_index):
                    assert hierarchy.llc.contains(line)

    def test_private_eviction_keeps_llc_copy(self):
        hierarchy = tiny_hierarchy()
        l1_sets = hierarchy.l1[0].geometry.num_sets
        addr = 0x0
        hierarchy.access(0, addr)
        # Four conflicting lines overflow the 2-way L1 set but stay within
        # the L2 and LLC sets, so addr must still be on-chip below L1.
        for i in range(1, 5):
            hierarchy.access(0, addr + i * l1_sets * 64)
        level = hierarchy.access(0, addr)
        assert level in (AccessLevel.L2, AccessLevel.LLC)


class TestFlushCoreEdgeCases:
    def test_flush_empty_core_is_safe(self):
        # A core that never ran anything has empty private caches; flushing
        # it must be a clean no-op, not a crash or a stats lie.
        hierarchy = tiny_hierarchy()
        hierarchy.flush_core(0)
        hierarchy.flush_core(0, include_l2=True)
        assert len(hierarchy.l1[0]) == 0
        assert len(hierarchy.l2[0]) == 0

    def test_repeated_flushes_are_idempotent(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        hierarchy.flush_core(0)
        first = len(hierarchy.l1[0])
        hierarchy.flush_core(0)
        hierarchy.flush_core(0)
        assert first == 0
        assert len(hierarchy.l1[0]) == 0
        # The line survives below L1 — flush_core models AEX pollution of
        # private caches, not a full wbinvd.
        assert hierarchy.llc.contains(0x1000)

    def test_flush_core_leaves_other_cores_alone(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        hierarchy.access(1, 0x2000)
        hierarchy.flush_core(0, include_l2=True)
        assert hierarchy.access(1, 0x2000) is AccessLevel.L1

    def test_flush_core_keeps_sanitizer_invariants(self):
        from repro.sanitizer.invariants import check_hierarchy

        hierarchy = tiny_hierarchy()
        for index in range(16):
            hierarchy.access(index % 2, 0x1000 + index * 64)
        for _ in range(3):
            hierarchy.flush_core(0)
            hierarchy.flush_core(1, include_l2=True)
            check_hierarchy(hierarchy)

    def test_flush_without_l2_keeps_l2_contents(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, 0x1000)
        hierarchy.flush_core(0)  # L1 only
        assert hierarchy.access(0, 0x1000) is AccessLevel.L2
