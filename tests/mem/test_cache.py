"""Unit + property tests for repro.mem.cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheGeometry
from repro.mem.cache import SetAssociativeCache


def small_cache(ways=4, sets=8, policy="lru"):
    geometry = CacheGeometry(ways * sets * 64, ways, 64, policy=policy)
    return SetAssociativeCache(geometry)


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert not first.hit and second.hit

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x103F).hit

    def test_adjacent_line_misses(self):
        cache = small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1040).hit

    def test_contains_does_not_mutate(self):
        cache = small_cache()
        assert not cache.contains(0x1000)
        cache.access(0x1000)
        stats_before = (cache.stats.hits, cache.stats.misses)
        assert cache.contains(0x1000)
        assert (cache.stats.hits, cache.stats.misses) == stats_before

    def test_set_index_wraps(self):
        cache = small_cache(ways=4, sets=8)
        assert cache.set_index_of(0) == cache.set_index_of(8 * 64)

    def test_eviction_on_overflow(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 * 64)
        cache.access(1 * 64)
        result = cache.access(2 * 64)
        assert result.evicted is not None
        assert result.evicted.line_addr == 0  # LRU

    def test_lru_order_respected(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)  # 1 becomes LRU
        result = cache.access(2 * 64)
        assert result.evicted.line_addr == 64

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)

    def test_fill_inserts_without_access_stats(self):
        cache = small_cache()
        accesses_before = cache.stats.accesses
        cache.fill(0x2000)
        assert cache.contains(0x2000)
        assert cache.stats.accesses == accesses_before

    def test_fill_existing_line_no_eviction(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(64)
        assert cache.fill(0) is None

    def test_occupancy_and_resident_lines(self):
        cache = small_cache(ways=4, sets=1)
        for i in range(3):
            cache.access(i * 64)
        assert cache.occupancy(0) == 3
        assert sorted(cache.resident_lines(0)) == [0, 64, 128]

    def test_clear(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.clear()
        assert not cache.contains(0x1000)
        assert len(cache) == 0

    def test_len_counts_lines(self):
        cache = small_cache()
        cache.access(0)
        cache.access(64)
        assert len(cache) == 2


class TestProbe:
    """probe(): the hierarchy's single-pass hit-check-and-touch."""

    def test_probe_miss_leaves_cache_untouched(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0
        assert not cache.contains(0x1000)

    def test_probe_hit_touches_and_counts(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.probe(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.accesses == 2

    def test_probe_hit_refreshes_replacement_state(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 * 64)
        cache.access(1 * 64)
        assert cache.probe(0 * 64)  # line 1 becomes LRU
        result = cache.access(2 * 64)
        assert result.evicted.line_addr == 64

    def test_probe_matches_contains_then_access(self):
        # probe(addr) must be observationally identical to the old
        # contains(addr)+access(addr) double walk on the hit path.
        probed, doubled = small_cache(), small_cache()
        pattern = [0, 64, 0, 128, 64, 0, 9 * 64, 0]
        for addr in pattern:
            probed.access(addr)
            doubled.access(addr)
        for addr in pattern:
            hit = probed.probe(addr)
            if doubled.contains(addr):
                assert doubled.access(addr).hit and hit
            else:
                assert not hit
        assert probed.stats.hits == doubled.stats.hits


class TestStats:
    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_empty(self):
        assert small_cache().stats.hit_rate == 0.0

    def test_eviction_count(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0)
        cache.access(64)
        cache.access(128)
        assert cache.stats.evictions == 2


@st.composite
def access_sequences(draw):
    lines = draw(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    return [line * 64 for line in lines]


class TestProperties:
    @given(access_sequences())
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_ways(self, addresses):
        cache = small_cache(ways=4, sets=4, policy="lru")
        for addr in addresses:
            cache.access(addr)
        for set_index in range(4):
            assert cache.occupancy(set_index) <= 4

    @given(access_sequences(), st.sampled_from(["lru", "plru", "rrip"]))
    @settings(max_examples=50, deadline=None)
    def test_last_access_always_resident(self, addresses, policy):
        cache = small_cache(ways=4, sets=4, policy=policy)
        for addr in addresses:
            cache.access(addr)
        assert cache.contains(addresses[-1])

    @given(access_sequences())
    @settings(max_examples=50, deadline=None)
    def test_working_set_within_ways_never_evicts(self, addresses):
        # Restrict to 4 distinct lines in one set: all must stay resident.
        cache = small_cache(ways=4, sets=1, policy="lru")
        distinct = sorted(set(a % (4 * 64) for a in addresses))
        for addr in addresses:
            cache.access(addr % (4 * 64))
        for line in distinct:
            assert cache.contains(line)

    @given(access_sequences())
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for addr in addresses:
            cache.access(addr)
        assert cache.stats.hits + cache.stats.misses == len(addresses)

    @given(access_sequences())
    @settings(max_examples=50, deadline=None)
    def test_resident_lines_map_to_their_set(self, addresses):
        cache = small_cache(ways=4, sets=4)
        for addr in addresses:
            cache.access(addr)
        for set_index in range(4):
            for line in cache.resident_lines(set_index):
                assert cache.set_index_of(line) == set_index
