"""Unit + property tests for repro.mem.replacement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.replacement import (
    LRUPolicy,
    RandomPolicy,
    RRIPPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        assert policy.victim() == 0

    def test_touch_promotes(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.touch(way)
        policy.touch(0)
        assert policy.victim() == 1

    def test_fill_equals_touch(self):
        policy = LRUPolicy(2)
        policy.fill(0)
        policy.fill(1)
        assert policy.victim() == 0

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=50))
    def test_victim_never_most_recent(self, touches):
        policy = LRUPolicy(8)
        for way in touches:
            policy.touch(way)
        assert policy.victim() != touches[-1] or len(set(touches)) == 1

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=60))
    def test_recency_order_is_permutation(self, touches):
        policy = LRUPolicy(8)
        for way in touches:
            policy.touch(way)
        assert sorted(policy.recency_order()) == list(range(8))


class TestTreePLRUPolicy:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRUPolicy(6)

    def test_victim_avoids_just_touched(self):
        policy = TreePLRUPolicy(8)
        policy.touch(3)
        assert policy.victim() != 3

    def test_all_touched_victim_valid(self):
        policy = TreePLRUPolicy(8)
        for way in range(8):
            policy.touch(way)
        assert 0 <= policy.victim() < 8

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_in_range_and_not_last_touch(self, touches):
        policy = TreePLRUPolicy(8)
        for way in touches:
            policy.touch(way)
        victim = policy.victim()
        assert 0 <= victim < 8
        assert victim != touches[-1]

    def test_bits_length(self):
        assert len(TreePLRUPolicy(8).bits()) == 7


class TestRRIPPolicy:
    def test_fresh_fill_evicted_before_hit_promoted(self):
        # The property the covert channel relies on: a primed (filled)
        # line loses to hit-promoted lines at the first conflicting fill.
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.fill(way)
        for way in range(3):
            policy.touch(way)  # promote all but way 3
        assert policy.victim() == 3

    def test_hit_promoted_survives_first_aging_wave(self):
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.fill(way)
            policy.touch(way)
        victim = policy.victim()  # forces aging of all-zero RRPVs
        assert 0 <= victim < 4

    def test_aging_reaches_untouched_line(self):
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.fill(way)
        policy.touch(0)
        policy.touch(1)
        policy.touch(2)
        # Way 3 still at insert RRPV: it ages to 3 first.
        assert policy.victim() == 3

    def test_victim_deterministic_tie_break(self):
        policy = RRIPPolicy(4)
        for way in range(4):
            policy.fill(way)
        assert policy.victim() == policy.victim()

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7)), min_size=1, max_size=80))
    def test_rrpv_always_in_range(self, ops):
        policy = RRIPPolicy(8)
        for is_fill, way in ops:
            if is_fill:
                policy.fill(way)
            else:
                policy.touch(way)
        policy.victim()
        assert all(0 <= value <= RRIPPolicy.MAX_RRPV + 1 for value in policy.rrpv_values())


class TestRandomPolicy:
    def test_victims_cover_ways(self):
        policy = RandomPolicy(8, rng=np.random.default_rng(0))
        victims = {policy.victim() for _ in range(200)}
        assert victims == set(range(8))

    def test_touch_is_noop(self):
        policy = RandomPolicy(4, rng=np.random.default_rng(0))
        policy.touch(0)
        policy.fill(1)  # must not raise


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("plru", TreePLRUPolicy), ("rrip", RRIPPolicy), ("random", RandomPolicy)],
    )
    def test_dispatch(self, name, cls):
        assert isinstance(make_policy(name, 8), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo", 8)
