"""Unit tests for repro.mem.address."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.mem.address import (
    PhysicalLayout,
    chunk_index,
    chunk_offset_in_page,
    line_index,
    page_index,
    page_offset,
)
from repro.units import CACHE_LINE, MIB, PAGE_SIZE


class TestAddressMath:
    def test_page_index(self):
        assert page_index(0) == 0
        assert page_index(PAGE_SIZE) == 1
        assert page_index(PAGE_SIZE - 1) == 0

    def test_page_offset(self):
        assert page_offset(PAGE_SIZE + 17) == 17

    def test_line_index(self):
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_chunk_index(self):
        assert chunk_index(511) == 0
        assert chunk_index(512) == 1

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_page_decomposition_roundtrip(self, addr):
        assert page_index(addr) * PAGE_SIZE + page_offset(addr) == addr

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_chunk_offset_in_page_range(self, addr):
        assert 0 <= chunk_offset_in_page(addr) < 8


class TestPhysicalLayout:
    def test_regions_are_ordered_and_disjoint(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        assert layout.protected_base == 64 * MIB
        assert layout.meta_base >= layout.protected_base + layout.protected_bytes
        assert layout.l0_base >= layout.meta_base + layout.meta_bytes
        assert layout.l1_base >= layout.l0_base + layout.l0_bytes
        assert layout.l2_base >= layout.l1_base + layout.l1_bytes
        assert layout.total_bytes >= layout.l2_base

    def test_meta_sized_16_lines_per_page(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        assert layout.meta_bytes == layout.protected_pages * 16 * CACHE_LINE

    def test_metadata_bases_preserve_set_parity(self):
        # Bases aligned to 128 lines keep versions odd / PD_Tag even.
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        for base in (layout.meta_base, layout.l0_base, layout.l1_base, layout.l2_base):
            assert (base // CACHE_LINE) % 128 == 0

    def test_is_protected(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        assert not layout.is_protected(0)
        assert layout.is_protected(layout.protected_base)
        assert layout.is_protected(layout.protected_base + layout.protected_bytes - 1)
        assert not layout.is_protected(layout.protected_base + layout.protected_bytes)

    def test_is_metadata(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        assert layout.is_metadata(layout.meta_base)
        assert layout.is_metadata(layout.l2_base)
        assert not layout.is_metadata(layout.protected_base)

    def test_check_rejects_out_of_range(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        with pytest.raises(AddressError):
            layout.check(layout.total_bytes)
        with pytest.raises(AddressError):
            layout.check(-1)

    def test_rejects_unaligned_regions(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PhysicalLayout(general_bytes=100, protected_bytes=128 * MIB)

    def test_protected_pages_count(self):
        layout = PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB)
        assert layout.protected_pages == 32768
