"""Unit tests for repro.mem.dram."""

import numpy as np
import pytest

from repro.config import DRAMConfig
from repro.mem.dram import DRAMModel


def make_dram(**overrides):
    config = DRAMConfig(**overrides)
    return DRAMModel(config, np.random.default_rng(0))


class TestSampling:
    def test_mean_near_nominal(self):
        dram = make_dram(tail_probability=0.0)
        samples = [dram.sample() for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(165.0, rel=0.02)

    def test_floor_enforced(self):
        dram = make_dram(jitter_sigma=200.0, tail_probability=0.0)
        samples = [dram.sample() for _ in range(2000)]
        assert min(samples) >= 0.6 * 165.0

    def test_tail_raises_high_percentiles(self):
        no_tail = make_dram(tail_probability=0.0)
        tail = DRAMModel(
            DRAMConfig(tail_probability=0.2, tail_mean_cycles=500.0),
            np.random.default_rng(0),
        )
        clean = [no_tail.sample() for _ in range(3000)]
        spiky = [tail.sample() for _ in range(3000)]
        assert np.percentile(spiky, 99) > np.percentile(clean, 99) + 100

    def test_sample_many_matches_scalar_distribution(self):
        dram = make_dram()
        vector = dram.sample_many(5000)
        assert vector.shape == (5000,)
        assert np.mean(vector) == pytest.approx(dram.config.access_cycles, rel=0.1)

    def test_fetch_counter(self):
        dram = make_dram()
        dram.sample()
        dram.sample_many(10)
        assert dram.fetches == 11


class TestContention:
    def test_stressors_raise_mean(self):
        dram = make_dram()
        base = dram.mean_latency
        dram.register_stressor()
        dram.register_stressor()
        assert dram.mean_latency == pytest.approx(
            base + 2 * dram.config.contention_cycles_per_stressor
        )

    def test_unregister_restores(self):
        dram = make_dram()
        base = dram.mean_latency
        dram.register_stressor()
        dram.unregister_stressor()
        assert dram.mean_latency == base

    def test_unregister_never_negative(self):
        dram = make_dram()
        dram.unregister_stressor()
        assert dram.active_stressors == 0
