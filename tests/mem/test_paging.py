"""Unit + property tests for repro.mem.paging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, PagingError
from repro.mem.paging import AddressSpace, FrameAllocator, PageTable
from repro.units import HUGEPAGE_SIZE, PAGE_SIZE


def make_space(general=512, protected=512, randomize=True):
    rng = np.random.default_rng(7)
    general_pool = FrameAllocator(0, general, randomize=randomize, rng=rng)
    protected_pool = FrameAllocator(
        general * PAGE_SIZE, protected, randomize=randomize, rng=rng
    )
    return AddressSpace(general_pool, protected_pool), general_pool, protected_pool


class TestFrameAllocator:
    def test_allocates_distinct_frames(self):
        allocator = FrameAllocator(0, 16, rng=np.random.default_rng(0))
        frames = {allocator.allocate() for _ in range(16)}
        assert len(frames) == 16

    def test_exhaustion_raises(self):
        allocator = FrameAllocator(0, 2, rng=np.random.default_rng(0))
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(PagingError):
            allocator.allocate()

    def test_free_allows_reuse(self):
        allocator = FrameAllocator(0, 1, rng=np.random.default_rng(0))
        frame = allocator.allocate()
        allocator.free(frame)
        assert allocator.allocate() == frame

    def test_double_free_rejected(self):
        allocator = FrameAllocator(0, 2, rng=np.random.default_rng(0))
        frame = allocator.allocate()
        allocator.free(frame)
        with pytest.raises(PagingError):
            allocator.free(frame)

    def test_frames_page_aligned(self):
        allocator = FrameAllocator(0, 32, rng=np.random.default_rng(0))
        for _ in range(32):
            assert allocator.allocate() % PAGE_SIZE == 0

    def test_randomized_order_differs_from_sequential(self):
        random_alloc = FrameAllocator(0, 256, randomize=True, rng=np.random.default_rng(1))
        ordered = [random_alloc.allocate() for _ in range(256)]
        assert ordered != sorted(ordered)

    def test_sequential_mode(self):
        allocator = FrameAllocator(0, 8, randomize=False)
        assert [allocator.allocate() for _ in range(8)] == [i * PAGE_SIZE for i in range(8)]

    def test_clustered_mode_has_runs(self):
        allocator = FrameAllocator(
            0, 4096, randomize=True, rng=np.random.default_rng(2), cluster_mean_run=16
        )
        frames = [allocator.allocate() // PAGE_SIZE for _ in range(512)]
        sequential_steps = sum(1 for a, b in zip(frames, frames[1:]) if b == a + 1)
        assert sequential_steps > len(frames) * 0.5

    def test_clustered_mode_is_permutation(self):
        allocator = FrameAllocator(
            0, 300, randomize=True, rng=np.random.default_rng(3), cluster_mean_run=8
        )
        frames = {allocator.allocate() for _ in range(300)}
        assert len(frames) == 300

    def test_allocate_contiguous(self):
        allocator = FrameAllocator(0, 64, randomize=False)
        base = allocator.allocate_contiguous(8)
        assert base % PAGE_SIZE == 0
        # The run is removed from the pool.
        remaining = {allocator.allocate() for _ in range(56)}
        assert len(remaining) == 56
        assert base not in remaining

    def test_unaligned_base_rejected(self):
        with pytest.raises(PagingError):
            FrameAllocator(100, 4)


class TestPageTable:
    def test_translate(self):
        table = PageTable()
        table.map(1, 0x8000)
        assert table.translate(PAGE_SIZE + 0x123) == 0x8000 + 0x123

    def test_unmapped_raises(self):
        with pytest.raises(AddressError):
            PageTable().translate(0)

    def test_double_map_rejected(self):
        table = PageTable()
        table.map(1, 0x8000)
        with pytest.raises(PagingError):
            table.map(1, 0x9000)

    def test_unmap(self):
        table = PageTable()
        table.map(1, 0x8000)
        assert table.unmap(1) == 0x8000
        assert not table.is_mapped(PAGE_SIZE)

    def test_unmap_missing_rejected(self):
        with pytest.raises(PagingError):
            PageTable().unmap(1)

    def test_unaligned_frame_rejected(self):
        with pytest.raises(PagingError):
            PageTable().map(0, 0x8001)


class TestAddressSpace:
    def test_mmap_translates_whole_region(self):
        space, _, _ = make_space()
        region = space.mmap(3 * PAGE_SIZE)
        for offset in (0, PAGE_SIZE, 2 * PAGE_SIZE, 3 * PAGE_SIZE - 1):
            space.translate(region.base + offset)

    def test_protected_regions_use_protected_pool(self):
        space, _, protected = make_space()
        before = protected.free_frames
        space.mmap(2 * PAGE_SIZE, protected=True)
        assert protected.free_frames == before - 2

    def test_regions_do_not_overlap(self):
        space, _, _ = make_space()
        a = space.mmap(PAGE_SIZE)
        b = space.mmap(PAGE_SIZE)
        assert a.end <= b.base

    def test_region_of(self):
        space, _, _ = make_space()
        region = space.mmap(PAGE_SIZE)
        assert space.region_of(region.base) == region
        assert space.region_of(region.end) is None

    def test_munmap_frees_frames(self):
        space, general, _ = make_space()
        before = general.free_frames
        region = space.mmap(4 * PAGE_SIZE)
        space.munmap(region)
        assert general.free_frames == before
        with pytest.raises(AddressError):
            space.translate(region.base)

    def test_munmap_foreign_region_rejected(self):
        space, _, _ = make_space()
        other, _, _ = make_space()
        region = other.mmap(PAGE_SIZE)
        with pytest.raises(PagingError):
            space.munmap(region)

    def test_hugepage_is_contiguous(self):
        space, _, _ = make_space(general=1024, randomize=False)
        region = space.mmap(HUGEPAGE_SIZE, hugepage=True)
        base_paddr = space.translate(region.base)
        for page in range(HUGEPAGE_SIZE // PAGE_SIZE):
            assert space.translate(region.base + page * PAGE_SIZE) == base_paddr + page * PAGE_SIZE

    def test_guard_gap_between_regions(self):
        space, _, _ = make_space()
        a = space.mmap(PAGE_SIZE)
        b = space.mmap(PAGE_SIZE)
        assert b.base - a.end >= PAGE_SIZE

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_translations_are_injective(self, sizes):
        space, _, _ = make_space(general=2048)
        paddrs = []
        for pages in sizes:
            region = space.mmap(pages * PAGE_SIZE)
            for page in range(pages):
                paddrs.append(space.translate(region.base + page * PAGE_SIZE))
        assert len(set(paddrs)) == len(paddrs)
