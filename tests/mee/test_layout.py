"""Unit + property tests for repro.mee.layout (the ground-truth geometry)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.mem.address import PhysicalLayout
from repro.mee.layout import HIT_LEVEL_NAMES, MEELayout
from repro.units import CACHE_LINE, KIB, MIB, PAGE_SIZE


@pytest.fixture(scope="module")
def layout():
    return MEELayout(PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB))


def protected_addresses(layout):
    base = layout.physical.protected_base
    return st.integers(min_value=base, max_value=base + layout.physical.protected_bytes - 1)


class TestNodeAddressing:
    def test_rejects_unprotected_address(self, layout):
        with pytest.raises(AddressError):
            layout.versions_line(0)

    def test_versions_distinct_per_chunk(self, layout):
        base = layout.physical.protected_base
        lines = {layout.versions_line(base + i * 512) for i in range(16)}
        assert len(lines) == 16

    def test_same_chunk_same_versions_line(self, layout):
        base = layout.physical.protected_base
        assert layout.versions_line(base) == layout.versions_line(base + 511)

    def test_l0_shared_within_page(self, layout):
        base = layout.physical.protected_base
        assert layout.l0_line(base) == layout.l0_line(base + PAGE_SIZE - 1)
        assert layout.l0_line(base) != layout.l0_line(base + PAGE_SIZE)

    def test_l1_covers_8_pages(self, layout):
        base = layout.physical.protected_base
        assert layout.l1_line(base) == layout.l1_line(base + 8 * PAGE_SIZE - 1)
        assert layout.l1_line(base) != layout.l1_line(base + 8 * PAGE_SIZE)

    def test_l2_covers_64_pages(self, layout):
        base = layout.physical.protected_base
        assert layout.l2_line(base) == layout.l2_line(base + 64 * PAGE_SIZE - 1)
        assert layout.l2_line(base) != layout.l2_line(base + 64 * PAGE_SIZE)

    def test_walk_nodes_order_and_levels(self, layout):
        base = layout.physical.protected_base
        nodes = layout.walk_nodes(base + 12345)
        assert [node.level for node in nodes] == [0, 1, 2, 3]
        assert [node.level_name for node in nodes] == ["versions", "level0", "level1", "level2"]

    def test_hit_level_names(self):
        assert HIT_LEVEL_NAMES == ("versions", "level0", "level1", "level2", "root")


class TestSetParity:
    """Figure 3's odd/even interleaving plus the even-parity tree inference."""

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_versions_sets_are_odd(self, layout, data):
        paddr = data.draw(protected_addresses(layout))
        assert layout.versions_set(paddr, 128) % 2 == 1

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_pd_tag_sets_are_even(self, layout, data):
        paddr = data.draw(protected_addresses(layout))
        assert layout.mee_set_of_line(layout.pd_tag_line(paddr), 128) % 2 == 0

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_tree_node_sets_are_even(self, layout, data):
        paddr = data.draw(protected_addresses(layout))
        for line in (layout.l0_line(paddr), layout.l1_line(paddr), layout.l2_line(paddr)):
            assert layout.mee_set_of_line(line, 128) % 2 == 0

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_pd_tag_adjacent_to_versions(self, layout, data):
        paddr = data.draw(protected_addresses(layout))
        assert layout.versions_line(paddr) - layout.pd_tag_line(paddr) == CACHE_LINE

    def test_page_versions_cover_8_contiguous_odd_sets(self, layout):
        # Paper Section 4.1: a 4 KB page's 8 versions nodes map contiguously.
        base = layout.physical.protected_base
        sets = [layout.versions_set(base + unit * 512, 128) for unit in range(8)]
        assert sets == [sets[0] + 2 * i for i in range(8)]

    def test_candidate_unit_maps_to_8_possible_sets(self, layout):
        # Fixed 512 B unit, varying frame: exactly 8 distinct sets, odd.
        base = layout.physical.protected_base
        unit_offset = 3 * 512
        sets = {
            layout.versions_set(base + frame * PAGE_SIZE + unit_offset, 128)
            for frame in range(64)
        }
        assert len(sets) == 8
        assert all(s % 2 == 1 for s in sets)


class TestCapacityArithmetic:
    def test_versions_region_footprint_matches_paper(self, layout):
        # 16 lines x 64 B per page of protected memory: the paper's
        # "size of one cache way within consecutive versions data region".
        assert layout.physical.meta_bytes // layout.physical.protected_pages == 16 * CACHE_LINE

    def test_64_candidates_fill_one_way_column(self):
        # 64 addresses x 16 x 64 B = 64 KB (paper Section 4.1).
        assert 64 * 16 * CACHE_LINE == 64 * KIB
