"""Unit tests for repro.mee.tree."""

import pytest

from repro.errors import IntegrityError
from repro.mem.address import PhysicalLayout
from repro.mee.layout import MEELayout
from repro.mee.tree import IntegrityTree
from repro.units import MIB, PAGE_SIZE


@pytest.fixture()
def tree():
    layout = MEELayout(PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB))
    return IntegrityTree(layout)


def paddr(tree, page=0, offset=0):
    return tree.layout.physical.protected_base + page * PAGE_SIZE + offset


class TestVerification:
    def test_fresh_memory_verifies(self, tree):
        nodes = tree.verify_path(paddr(tree), up_to_level=4)
        assert len(nodes) == 4

    def test_verify_stops_at_hit_level(self, tree):
        assert len(tree.verify_path(paddr(tree), up_to_level=0)) == 0
        assert len(tree.verify_path(paddr(tree), up_to_level=2)) == 2

    def test_write_then_verify(self, tree):
        tree.update_path(paddr(tree))
        tree.verify_path(paddr(tree), up_to_level=4)

    def test_sibling_chunks_unaffected_by_write(self, tree):
        # Writing one chunk must not break its page/tree siblings.
        tree.update_path(paddr(tree, page=0, offset=0))
        tree.verify_path(paddr(tree, page=0, offset=512), up_to_level=4)
        tree.verify_path(paddr(tree, page=1), up_to_level=4)
        tree.verify_path(paddr(tree, page=100), up_to_level=4)

    def test_many_writes_stay_consistent(self, tree):
        for page in range(10):
            for _ in range(3):
                tree.update_path(paddr(tree, page=page))
        for page in range(10):
            tree.verify_path(paddr(tree, page=page), up_to_level=4)

    def test_counters_increment(self, tree):
        address = paddr(tree)
        line = tree.layout.versions_line(address)
        tree.update_path(address)
        tree.update_path(address)
        assert tree.node_counter(line) == 2


class TestTamperDetection:
    def test_corrupt_versions_detected(self, tree):
        address = paddr(tree)
        tree.update_path(address)
        tree.corrupt_node(tree.layout.versions_line(address))
        with pytest.raises(IntegrityError):
            tree.verify_path(address, up_to_level=4)

    def test_corrupt_l1_detected(self, tree):
        address = paddr(tree)
        tree.update_path(address)
        tree.corrupt_node(tree.layout.l1_line(address))
        with pytest.raises(IntegrityError):
            tree.verify_path(address, up_to_level=4)

    def test_replay_detected(self, tree):
        address = paddr(tree)
        tree.update_path(address)
        tree.update_path(address)
        tree.replay_node(tree.layout.versions_line(address))
        with pytest.raises(IntegrityError):
            tree.verify_path(address, up_to_level=4)

    def test_replay_of_unwritten_node_rejected(self, tree):
        with pytest.raises(IntegrityError):
            tree.replay_node(tree.layout.versions_line(paddr(tree)))

    def test_corruption_above_hit_level_not_checked(self, tree):
        # A cached (pre-verified) level is not re-verified: corruption at
        # L1 goes unnoticed when the walk already hit at level 1 (L0).
        address = paddr(tree)
        tree.update_path(address)
        tree.corrupt_node(tree.layout.l1_line(address))
        tree.verify_path(address, up_to_level=2)  # must not raise

    def test_stats_counted(self, tree):
        address = paddr(tree)
        tree.update_path(address)
        tree.verify_path(address, up_to_level=4)
        assert tree.updates == 4
        assert tree.verifications == 4
