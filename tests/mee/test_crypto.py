"""Unit tests for repro.mee.crypto."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntegrityError
from repro.mee.crypto import MEECrypto
from repro.units import CACHE_LINE


LINE = st.binary(min_size=CACHE_LINE, max_size=CACHE_LINE)


class TestRoundtrip:
    def test_encrypt_decrypt_roundtrip(self):
        crypto = MEECrypto()
        plaintext = bytes(range(64))
        ciphertext = crypto.encrypt_line(0x1000, plaintext)
        assert crypto.decrypt_line(0x1000, ciphertext) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        crypto = MEECrypto()
        plaintext = bytes(64)
        assert crypto.encrypt_line(0x1000, plaintext) != plaintext

    def test_rewrite_changes_ciphertext(self):
        # Counter-mode freshness: same plaintext, new counter, new bits.
        crypto = MEECrypto()
        plaintext = bytes(64)
        first = crypto.encrypt_line(0x1000, plaintext)
        second = crypto.encrypt_line(0x1000, plaintext)
        assert first != second

    def test_different_lines_different_ciphertext(self):
        crypto = MEECrypto()
        plaintext = bytes(64)
        assert crypto.encrypt_line(0x1000, plaintext) != crypto.encrypt_line(0x1040, plaintext)

    def test_counter_increments_per_write(self):
        crypto = MEECrypto()
        assert crypto.counter_of(0x1000) == 0
        crypto.encrypt_line(0x1000, bytes(64))
        crypto.encrypt_line(0x1000, bytes(64))
        assert crypto.counter_of(0x1000) == 2

    @given(LINE)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, plaintext):
        crypto = MEECrypto()
        ciphertext = crypto.encrypt_line(0x2000, plaintext)
        assert crypto.decrypt_line(0x2000, ciphertext) == plaintext


class TestIntegrity:
    def test_tampered_ciphertext_detected(self):
        crypto = MEECrypto()
        ciphertext = crypto.encrypt_line(0x1000, bytes(64))
        tampered = bytes((ciphertext[0] ^ 1,)) + ciphertext[1:]
        with pytest.raises(IntegrityError):
            crypto.decrypt_line(0x1000, tampered)

    def test_tampered_tag_detected(self):
        crypto = MEECrypto()
        ciphertext = crypto.encrypt_line(0x1000, bytes(64))
        crypto.tamper_tag(0x1000)
        with pytest.raises(IntegrityError):
            crypto.decrypt_line(0x1000, ciphertext)

    def test_replayed_counter_detected(self):
        crypto = MEECrypto()
        old = crypto.encrypt_line(0x1000, b"A" * 64)
        crypto.encrypt_line(0x1000, b"B" * 64)
        crypto.replay_counter(0x1000)
        # Counter rolled back: even the old ciphertext must now fail,
        # because the stored tag belongs to the new write.
        with pytest.raises(IntegrityError):
            crypto.decrypt_line(0x1000, old)

    def test_unknown_line_rejected(self):
        crypto = MEECrypto()
        with pytest.raises(IntegrityError):
            crypto.decrypt_line(0x9000, bytes(64))

    def test_replay_of_unwritten_line_rejected(self):
        with pytest.raises(IntegrityError):
            MEECrypto().replay_counter(0x1000)

    def test_wrong_size_rejected(self):
        crypto = MEECrypto()
        with pytest.raises(ValueError):
            crypto.encrypt_line(0, b"short")
        with pytest.raises(ValueError):
            crypto.decrypt_line(0, b"short")

    def test_keys_domain_separate(self):
        a = MEECrypto(key=b"a")
        b = MEECrypto(key=b"b")
        assert a.encrypt_line(0, bytes(64)) != b.encrypt_line(0, bytes(64))
