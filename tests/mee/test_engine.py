"""Unit tests for repro.mee.engine — the MEE walk and latency model."""

import numpy as np
import pytest

from repro.config import DRAMConfig, MEECacheConfig, MEELatencyConfig
from repro.mem.address import PhysicalLayout
from repro.mem.dram import DRAMModel
from repro.mee.engine import MemoryEncryptionEngine
from repro.mee.layout import MEELayout
from repro.units import MIB, PAGE_SIZE


@pytest.fixture()
def engine():
    layout = MEELayout(PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB))
    dram = DRAMModel(DRAMConfig(jitter_sigma=0.0, tail_probability=0.0), np.random.default_rng(0))
    return MemoryEncryptionEngine(
        layout, MEECacheConfig(), MEELatencyConfig(), dram, np.random.default_rng(1)
    )


def paddr(engine, page=0, offset=0):
    return engine.layout.physical.protected_base + page * PAGE_SIZE + offset


class TestWalkSemantics:
    def test_cold_access_reaches_root(self, engine):
        result = engine.access(paddr(engine))
        assert result.hit_level == 4
        assert result.hit_level_name == "root"
        assert len(result.nodes_fetched) == 4

    def test_second_access_versions_hit(self, engine):
        engine.access(paddr(engine))
        result = engine.access(paddr(engine))
        assert result.hit_level == 0
        assert result.nodes_fetched == ()

    def test_sibling_chunk_stops_at_l0(self, engine):
        engine.access(paddr(engine, offset=0))
        result = engine.access(paddr(engine, offset=512))
        assert result.hit_level == 1  # fresh versions node, L0 cached

    def test_next_page_in_l1_group_stops_at_l1(self, engine):
        engine.access(paddr(engine, page=0))
        result = engine.access(paddr(engine, page=1))
        assert result.hit_level == 2

    def test_next_l1_group_stops_at_l2(self, engine):
        engine.access(paddr(engine, page=0))
        result = engine.access(paddr(engine, page=9))
        assert result.hit_level == 3

    def test_next_l2_group_reaches_root(self, engine):
        engine.access(paddr(engine, page=0))
        result = engine.access(paddr(engine, page=65))
        assert result.hit_level == 4

    def test_pd_tag_cofetched_on_versions_miss(self, engine):
        address = paddr(engine)
        engine.access(address)
        assert engine.cache.contains(engine.layout.pd_tag_line(address))

    def test_versions_cached_oracle(self, engine):
        address = paddr(engine)
        assert not engine.versions_cached(address)
        engine.access(address)
        assert engine.versions_cached(address)

    def test_write_updates_tree_then_verifies(self, engine):
        address = paddr(engine)
        engine.access(address, write=True)
        result = engine.access(address)
        assert result.hit_level == 0

    def test_stats_histogram(self, engine):
        engine.access(paddr(engine))
        engine.access(paddr(engine))
        assert engine.stats.accesses == 2
        assert engine.stats.hit_level_counts[0] == 1
        assert engine.stats.hit_level_counts[4] == 1


class TestLatencyModel:
    def test_extra_cycles_monotone_in_hit_level(self, engine):
        addresses = [
            paddr(engine, page=100),  # root (cold)
            paddr(engine, page=100, offset=512),  # L0 hit
        ]
        cold = engine.access(addresses[0])
        warm_l0 = engine.access(addresses[1])
        hit = engine.access(addresses[1])
        assert cold.extra_cycles > warm_l0.extra_cycles > hit.extra_cycles

    def test_versions_hit_anchor_total(self, engine):
        # uncore 215 + dram 165 + extra: total ~480 + small lookup cost.
        address = paddr(engine, page=5)
        engine.access(address)
        expected = engine.expected_latency(0)
        assert expected == pytest.approx(480 + engine.cache_config.lookup_cycles, abs=5)

    def test_versions_miss_anchor_total(self, engine):
        expected = engine.expected_latency(1)
        assert expected == pytest.approx(750 + 2 * engine.cache_config.lookup_cycles, abs=5)

    def test_gap_at_least_paper_quote(self, engine):
        gap = engine.expected_latency(1) - engine.expected_latency(0)
        assert gap >= 265  # paper: ~300 cycles ("at least approximately")

    def test_contention_raises_extra_cycles(self, engine):
        address = paddr(engine, page=50)
        engine.access(address)  # warm tree
        cold_extra = []
        for page in (60, 61):
            cold_extra.append(engine.access(paddr(engine, page=page)).extra_cycles)
        engine.dram.register_stressor()
        stressed = engine.access(paddr(engine, page=62)).extra_cycles
        engine.dram.unregister_stressor()
        # Same hit level (L1 for 61 within group? use rough comparison on means)
        assert stressed >= min(cold_extra) * 0.9


class TestEvictionBehaviour:
    def test_conflicting_versions_evict(self, engine):
        # 9 pages sharing a versions set (frame stride 8 pages keeps the
        # same set) must overflow the 8 ways.
        base_page = 0
        unit = 0
        addresses = [paddr(engine, page=base_page + 8 * i, offset=unit * 512) for i in range(9)]
        for address in addresses:
            engine.access(address)
        resident = [engine.versions_cached(a) for a in addresses]
        assert not all(resident)

    def test_eviction_records_line(self, engine):
        addresses = [paddr(engine, page=8 * i) for i in range(20)]
        evicted = []
        for address in addresses:
            result = engine.access(address)
            evicted.extend(result.evicted_lines)
        assert evicted  # something must have been pushed out
