"""Property-based invariants of the MEE engine under random access streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMConfig, MEECacheConfig, MEELatencyConfig
from repro.mem.address import PhysicalLayout
from repro.mem.dram import DRAMModel
from repro.mee.engine import MemoryEncryptionEngine
from repro.mee.layout import MEELayout
from repro.units import MIB, PAGE_SIZE


def make_engine(seed=0):
    layout = MEELayout(PhysicalLayout(general_bytes=64 * MIB, protected_bytes=128 * MIB))
    dram = DRAMModel(DRAMConfig(jitter_sigma=0.0, tail_probability=0.0), np.random.default_rng(seed))
    return MemoryEncryptionEngine(
        layout, MEECacheConfig(), MEELatencyConfig(), dram, np.random.default_rng(seed)
    )


# (page, unit, write) triples over a modest protected footprint
access_streams = st.lists(
    st.tuples(st.integers(0, 255), st.integers(0, 7), st.booleans()),
    min_size=1,
    max_size=120,
)


def addr(engine, page, unit):
    return engine.layout.physical.protected_base + page * PAGE_SIZE + unit * 512


class TestEngineInvariants:
    @given(access_streams)
    @settings(max_examples=40, deadline=None)
    def test_walk_never_errors_and_hit_levels_valid(self, stream):
        engine = make_engine()
        for page, unit, write in stream:
            result = engine.access(addr(engine, page, unit), write=write)
            assert 0 <= result.hit_level <= 4

    @given(access_streams)
    @settings(max_examples=40, deadline=None)
    def test_versions_cached_after_every_access(self, stream):
        # Whatever happened before, the last touched chunk's versions node
        # must be resident (it was either hit or just filled).
        engine = make_engine()
        for page, unit, write in stream:
            address = addr(engine, page, unit)
            engine.access(address, write=write)
            assert engine.versions_cached(address)

    @given(access_streams)
    @settings(max_examples=40, deadline=None)
    def test_immediate_reaccess_is_versions_hit(self, stream):
        engine = make_engine()
        for page, unit, write in stream:
            address = addr(engine, page, unit)
            engine.access(address, write=write)
            assert engine.access(address).hit_level == 0

    @given(access_streams)
    @settings(max_examples=40, deadline=None)
    def test_stop_on_hit_never_fetches_above_hit(self, stream):
        engine = make_engine()
        for page, unit, write in stream:
            result = engine.access(addr(engine, page, unit), write=write)
            for node in result.nodes_fetched:
                assert node.level < result.hit_level or result.hit_level == 4

    @given(access_streams)
    @settings(max_examples=30, deadline=None)
    def test_extra_cycles_monotone_in_hit_level_on_average(self, stream):
        engine = make_engine()
        by_level = {}
        for page, unit, write in stream:
            result = engine.access(addr(engine, page, unit), write=write)
            by_level.setdefault(result.hit_level, []).append(result.extra_cycles)
        means = {level: sum(v) / len(v) for level, v in by_level.items()}
        levels = sorted(means)
        for low, high in zip(levels, levels[1:]):
            assert means[low] < means[high] + 60  # jitter tolerance

    @given(access_streams)
    @settings(max_examples=30, deadline=None)
    def test_stats_account_every_access(self, stream):
        engine = make_engine()
        for page, unit, write in stream:
            engine.access(addr(engine, page, unit), write=write)
        assert engine.stats.accesses == len(stream)
        assert sum(engine.stats.hit_level_counts) == len(stream)

    @given(access_streams)
    @settings(max_examples=30, deadline=None)
    def test_cache_capacity_respected(self, stream):
        engine = make_engine()
        for page, unit, write in stream:
            engine.access(addr(engine, page, unit), write=write)
        assert len(engine.cache) <= engine.cache_config.num_sets * engine.cache_config.ways
