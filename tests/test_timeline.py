"""Tests for the window-aligned timeline reconstruction."""

import pytest

from repro.analysis.timeline import ChannelTimeline, WindowActivity, build_timeline
from repro.sim.ops import Access, Busy, Flush
from repro.units import PAGE_SIZE


@pytest.fixture()
def traced_run(enclave_setup):
    """A machine with a traced, window-structured access pattern."""
    machine, space, enclave = enclave_setup
    region = enclave.alloc(8 * PAGE_SIZE)
    machine.trace.enabled = True
    start = machine.now

    def body():
        # Window 0: two accesses; window 1: idle; window 2: one access.
        yield Access(region.base)
        yield Flush(region.base)
        yield Access(region.base + PAGE_SIZE)
        yield Flush(region.base + PAGE_SIZE)
        yield Busy(20_000)
        yield Access(region.base + 2 * PAGE_SIZE)

    machine.spawn("worker", body(), core=0, space=space, enclave=enclave)
    machine.run()
    machine.trace.enabled = False
    return machine, start


class TestBuildTimeline:
    def test_accesses_assigned_to_windows(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4)
        assert sum(w.accesses for w in timeline.windows) == 3
        assert timeline.windows[0].accesses == 2

    def test_process_attribution(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4)
        assert timeline.busiest().by_process == {"worker": 2}

    def test_process_filter(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4, processes=["ghost"])
        assert sum(w.accesses for w in timeline.windows) == 0

    def test_quiet_windows(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4)
        assert len(timeline.quiet_windows()) >= 1

    def test_window_of(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4)
        assert timeline.window_of(start + 5_000).index == 0
        assert timeline.window_of(start - 1) is None
        assert timeline.window_of(start + 10_000 * 99) is None

    def test_out_of_grid_events_dropped(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 1)
        assert sum(w.accesses for w in timeline.windows) <= 2

    def test_render(self, traced_run):
        machine, start = traced_run
        timeline = build_timeline(machine, start, 10_000, 4)
        text = timeline.render(limit=2)
        assert "w0000" in text
        assert "more windows" in text

    def test_versions_miss_counting(self):
        window = WindowActivity(index=0, start=0.0, hit_levels=[0, 1, 4, 0])
        assert window.versions_misses == 2
