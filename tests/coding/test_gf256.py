"""Property tests for the GF(2^8) arithmetic under the RS codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import (
    gf_add,
    gf_div,
    gf_inverse,
    gf_mul,
    gf_pow,
    poly_add,
    poly_eval,
    poly_mul,
    poly_scale,
)

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)
polys = st.lists(elements, min_size=1, max_size=12)


class TestFieldLaws:
    @given(elements, elements)
    @settings(max_examples=100)
    def test_addition_is_xor_and_self_inverse(self, a, b):
        assert gf_add(a, b) == a ^ b
        assert gf_add(gf_add(a, b), b) == a

    @given(elements, elements)
    @settings(max_examples=100)
    def test_multiplication_commutes(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=100)
    def test_multiplication_associates(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=100)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    @settings(max_examples=50)
    def test_multiplicative_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    @settings(max_examples=100)
    def test_inverse_multiplies_to_one(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1

    @given(elements, nonzero)
    @settings(max_examples=100)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(nonzero, st.integers(0, 20))
    @settings(max_examples=50)
    def test_pow_matches_repeated_multiplication(self, a, power):
        expected = 1
        for _ in range(power):
            expected = gf_mul(expected, a)
        assert gf_pow(a, power) == expected

    def test_zero_division_rejected(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)



class TestPolynomials:
    @given(polys, polys, elements)
    @settings(max_examples=100)
    def test_poly_mul_evaluates_pointwise(self, p, q, x):
        assert poly_eval(poly_mul(p, q), x) == gf_mul(poly_eval(p, x), poly_eval(q, x))

    @given(polys, polys, elements)
    @settings(max_examples=100)
    def test_poly_add_evaluates_pointwise(self, p, q, x):
        assert poly_eval(poly_add(p, q), x) == gf_add(poly_eval(p, x), poly_eval(q, x))

    @given(polys, elements, elements)
    @settings(max_examples=50)
    def test_poly_scale_evaluates_pointwise(self, p, factor, x):
        assert poly_eval(poly_scale(p, factor), x) == gf_mul(
            factor, poly_eval(p, x)
        )
