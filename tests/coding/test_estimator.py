"""Tests for the channel-quality estimator feeding code-rate control."""

import pytest

from repro.coding.estimator import ChannelQualityEstimator
from repro.errors import CodingError


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_bad_alpha_rejected(self, alpha):
        with pytest.raises(CodingError):
            ChannelQualityEstimator(alpha=alpha)

    def test_bad_frame_shapes_rejected(self):
        estimator = ChannelQualityEstimator()
        with pytest.raises(CodingError):
            estimator.observe_frame(symbols=0, corrected=0, erasures=0, delivered=True)
        with pytest.raises(CodingError):
            estimator.observe_frame(symbols=8, corrected=-1, erasures=0, delivered=True)


class TestSmoothing:
    def test_first_sample_taken_verbatim(self):
        estimator = ChannelQualityEstimator(alpha=0.25)
        estimator.observe_frame(symbols=20, corrected=5, erasures=2, delivered=True)
        assert estimator.symbol_error_rate == pytest.approx(0.25)
        assert estimator.erasure_rate == pytest.approx(0.1)
        assert estimator.frame_failure_rate == 0.0

    def test_ewma_converges_toward_steady_state(self):
        estimator = ChannelQualityEstimator(alpha=0.25)
        for _ in range(60):
            estimator.observe_frame(symbols=10, corrected=1, erasures=0, delivered=True)
        assert estimator.symbol_error_rate == pytest.approx(0.1, abs=1e-6)

    def test_history_and_determinism(self):
        def replay():
            estimator = ChannelQualityEstimator()
            for index in range(12):
                estimator.observe_frame(
                    symbols=16,
                    corrected=index % 3,
                    erasures=index % 2,
                    delivered=index % 4 != 0,
                )
            return estimator.history

        first, second = replay(), replay()
        assert first == second
        assert len(first) == 12


class TestFailureSaturation:
    def test_isolated_failure_saturates_modestly(self):
        # One failure with no track record pins the sample just past the
        # storm cutoff, not at catastrophe.
        estimator = ChannelQualityEstimator()
        estimator.observe_frame(symbols=30, corrected=0, erasures=0, delivered=False)
        assert estimator.symbol_error_rate == pytest.approx(0.24)

    def test_persistent_failures_raise_the_floor(self):
        estimator = ChannelQualityEstimator()
        for _ in range(30):
            estimator.observe_frame(symbols=30, corrected=0, erasures=0, delivered=False)
        # With the failure rate pinned near 1.0, samples saturate around
        # 0.24 + 0.5 * (1 - 0.6) = 0.44 — storm territory the plain
        # clamp could never reach.
        assert estimator.symbol_error_rate > 0.38
        assert estimator.frame_failure_rate > 0.95

    def test_failure_never_underreports_observed_corrections(self):
        estimator = ChannelQualityEstimator()
        estimator.observe_frame(symbols=10, corrected=8, erasures=0, delivered=False)
        assert estimator.symbol_error_rate == pytest.approx(0.8)


class TestRegime:
    def test_quiet_to_storm_transitions(self):
        estimator = ChannelQualityEstimator()
        assert estimator.regime == "quiet"
        estimator.observe_frame(symbols=32, corrected=2, erasures=0, delivered=True)
        assert estimator.regime == "moderate"
        for _ in range(10):
            estimator.observe_frame(symbols=32, corrected=10, erasures=4, delivered=True)
        assert estimator.regime == "storm"
        for _ in range(40):
            estimator.observe_frame(symbols=32, corrected=0, erasures=0, delivered=True)
        assert estimator.regime == "quiet"
