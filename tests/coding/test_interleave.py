"""Property tests for the block interleaver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.interleave import deinterleave, interleave
from repro.errors import CodingError


def _shapes():
    # (depth, rows * depth items) — interleaving needs a full matrix.
    return st.integers(1, 6).flatmap(
        lambda depth: st.integers(1, 12).map(lambda rows: (depth, depth * rows))
    )


class TestRoundTrip:
    @given(_shapes(), st.data())
    @settings(max_examples=100)
    def test_roundtrip_identity(self, shape, drawer):
        depth, size = shape
        items = drawer.draw(
            st.lists(st.integers(0, 255), min_size=size, max_size=size)
        )
        assert deinterleave(interleave(items, depth), depth) == items

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_depth_one_is_identity(self, items):
        assert interleave(items, 1) == items
        assert deinterleave(items, 1) == items

    @given(_shapes(), st.data())
    @settings(max_examples=50)
    def test_interleaving_is_a_permutation(self, shape, drawer):
        depth, size = shape
        items = drawer.draw(
            st.lists(st.integers(0, 255), min_size=size, max_size=size)
        )
        assert sorted(interleave(items, depth)) == sorted(items)


class TestBurstDispersal:
    @given(_shapes(), st.data())
    @settings(max_examples=100)
    def test_wire_burst_spreads_across_rows(self, shape, drawer):
        # The property the interleaver exists for: a contiguous wire burst
        # of length b lands on at most ceil(b / depth) symbols of any one
        # codeword row.
        depth, size = shape
        burst_len = drawer.draw(st.integers(1, size))
        burst_start = drawer.draw(st.integers(0, size - burst_len))
        # Tag every position by its pre-interleave row, then burst the wire.
        rows_on_wire = interleave(
            [index // (size // depth) for index in range(size)], depth
        )
        hit = rows_on_wire[burst_start : burst_start + burst_len]
        worst = max(hit.count(row) for row in set(hit))
        assert worst <= -(-burst_len // depth)


class TestValidation:
    def test_depth_must_be_positive(self):
        with pytest.raises(CodingError):
            interleave([1, 2], 0)

    def test_ragged_length_rejected(self):
        with pytest.raises(CodingError):
            interleave([1, 2, 3], 2)
        with pytest.raises(CodingError):
            deinterleave([1, 2, 3], 2)
