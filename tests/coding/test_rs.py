"""Property tests for the Reed-Solomon codec: round-trips under bounded
corruption, erasure credit, and honest failure reporting beyond capacity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.rs import MAX_CODEWORD_SYMBOLS, ReedSolomon
from repro.errors import CodingError

messages = st.lists(st.integers(0, 255), min_size=1, max_size=40)


def _corrupt(codeword, positions, drawer):
    corrupted = list(codeword)
    for position in positions:
        flip = drawer.draw(st.integers(1, 255))
        corrupted[position] ^= flip
    return corrupted


class TestRoundTrip:
    @given(messages, st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=50)
    def test_clean_roundtrip(self, data, nsym):
        codec = ReedSolomon(nsym)
        decoded, corrected = codec.decode(codec.encode(data))
        assert decoded == data
        assert corrected == []

    @given(messages, st.sampled_from([4, 8, 16]), st.data())
    @settings(max_examples=100, deadline=None)
    def test_up_to_t_random_errors_corrected(self, data, nsym, drawer):
        codec = ReedSolomon(nsym)
        encoded = codec.encode(data)
        count = drawer.draw(st.integers(0, nsym // 2))
        positions = drawer.draw(
            st.lists(
                st.integers(0, len(encoded) - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        decoded, corrected = codec.decode(_corrupt(encoded, positions, drawer))
        assert decoded == data
        assert sorted(corrected) == sorted(positions)

    @given(messages, st.data())
    @settings(max_examples=100, deadline=None)
    def test_contiguous_burst_within_budget_corrected(self, data, drawer):
        codec = ReedSolomon(8)
        encoded = codec.encode(data)
        length = drawer.draw(st.integers(1, min(4, len(encoded))))
        start = drawer.draw(st.integers(0, len(encoded) - length))
        corrupted = _corrupt(encoded, range(start, start + length), drawer)
        decoded, _ = codec.decode(corrupted)
        assert decoded == data

    @given(messages, st.data())
    @settings(max_examples=100, deadline=None)
    def test_erasures_cost_half_an_error(self, data, drawer):
        # 2e + f <= nsym: all-erasure corruption up to nsym symbols decodes.
        codec = ReedSolomon(8)
        encoded = codec.encode(data)
        count = drawer.draw(st.integers(0, min(8, len(encoded))))
        positions = drawer.draw(
            st.lists(
                st.integers(0, len(encoded) - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        corrupted = _corrupt(encoded, positions, drawer)
        decoded, _ = codec.decode(corrupted, erase_pos=positions)
        assert decoded == data

    @given(messages, st.data())
    @settings(max_examples=50, deadline=None)
    def test_mixed_errors_and_erasures(self, data, drawer):
        # 2 unlocated errors + 4 erasures fit the nsym=8 budget exactly.
        codec = ReedSolomon(8)
        encoded = codec.encode(data)
        if len(encoded) < 6:
            return
        spots = drawer.draw(
            st.lists(
                st.integers(0, len(encoded) - 1),
                min_size=6,
                max_size=6,
                unique=True,
            )
        )
        corrupted = _corrupt(encoded, spots, drawer)
        decoded, _ = codec.decode(corrupted, erase_pos=spots[:4])
        assert decoded == data


class TestBeyondCapacity:
    @given(messages, st.data())
    @settings(max_examples=100, deadline=None)
    def test_never_silently_wrong(self, data, drawer):
        # Past the budget the decoder may fail loudly (CodingError) or —
        # within the code's minimum distance this cannot happen silently —
        # return repaired data while *reporting* the positions it touched.
        # What it must never do is hand back wrong data while claiming the
        # word was clean.
        codec = ReedSolomon(8)
        encoded = codec.encode(data)
        count = drawer.draw(st.integers(5, min(8, len(encoded))))
        positions = drawer.draw(
            st.lists(
                st.integers(0, len(encoded) - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        corrupted = _corrupt(encoded, positions, drawer)
        try:
            decoded, corrected = codec.decode(corrupted)
        except CodingError:
            return
        if decoded != data:
            assert corrected, "wrong data returned with no correction reported"

    def test_unfixable_word_raises(self):
        codec = ReedSolomon(4)
        encoded = codec.encode([17, 34, 51, 68, 85])
        corrupted = list(encoded)
        for position in range(4):  # 4 errors >> budget of 2
            corrupted[position] ^= 0xA5
        with pytest.raises(CodingError):
            codec.decode(corrupted)


class TestValidation:
    @pytest.mark.parametrize("nsym", [0, 1, 3, MAX_CODEWORD_SYMBOLS])
    def test_bad_nsym_rejected(self, nsym):
        with pytest.raises(CodingError):
            ReedSolomon(nsym)

    def test_empty_message_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomon(4).encode([])

    def test_oversized_message_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomon(4).encode([0] * MAX_CODEWORD_SYMBOLS)

    def test_non_byte_symbols_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomon(4).encode([256])

    def test_parity_only_word_rejected(self):
        with pytest.raises(CodingError):
            ReedSolomon(4).decode([1, 2, 3, 4])

    def test_out_of_range_erasures_rejected(self):
        codec = ReedSolomon(4)
        word = codec.encode([5, 6])
        with pytest.raises(CodingError):
            codec.decode(word, erase_pos=[len(word)])

    def test_too_many_erasures_rejected(self):
        codec = ReedSolomon(4)
        word = codec.encode([5, 6, 7])
        with pytest.raises(CodingError):
            codec.decode(word, erase_pos=[0, 1, 2, 3, 4])
