"""Tests for the pluggable coding stacks: geometry, round-trips under
errors/bursts/erasures, honest failure flagging, and the rate model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.rs import ReedSolomon
from repro.coding.stack import (
    DEFAULT_LADDER,
    PROFILES,
    CodingProfile,
    CodingStack,
    profile_by_name,
)
from repro.errors import CodingError

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=160)
profile_names = st.sampled_from(sorted(PROFILES))


class TestRegistry:
    def test_profiles_cover_every_scheme(self):
        schemes = {profile.scheme for profile in PROFILES.values()}
        assert schemes == {"raw", "repetition", "secded", "rs"}

    def test_ladder_orders_lightest_first(self):
        stacks = [CodingStack(profile) for profile in DEFAULT_LADDER]
        expansions = [stack.encoded_length(120) / 120 for stack in stacks]
        assert expansions == sorted(expansions)
        assert DEFAULT_LADDER[0].scheme == "raw"

    def test_unknown_profile_rejected(self):
        with pytest.raises(CodingError):
            profile_by_name("rs_imaginary")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="x", scheme="turbo"),
            dict(name="x", scheme="repetition", repetition_factor=2),
            dict(name="x", scheme="rs", rs_parity_symbols=3),
            dict(name="x", scheme="rs", interleave_depth=0),
            dict(name="x", scheme="rs", erasure_confidence=1.5),
        ],
    )
    def test_bad_profiles_rejected(self, kwargs):
        with pytest.raises(CodingError):
            CodingProfile(**kwargs)


class TestGeometry:
    @given(bit_lists, profile_names)
    @settings(max_examples=100, deadline=None)
    def test_encode_matches_declared_length(self, bits, name):
        stack = CodingStack(PROFILES[name])
        assert len(stack.encode(bits)) == stack.encoded_length(len(bits))

    def test_capacity_zero_only_for_raw(self):
        for profile in PROFILES.values():
            capacity = CodingStack(profile).correction_capacity(120)
            assert (capacity == 0) == (profile.scheme == "raw")


class TestRoundTrip:
    @given(bit_lists, profile_names)
    @settings(max_examples=100, deadline=None)
    def test_clean_roundtrip_every_profile(self, bits, name):
        stack = CodingStack(PROFILES[name])
        decoded = stack.decode(stack.encode(bits), data_bits=len(bits))
        assert decoded.bits == bits
        assert decoded.ok
        assert decoded.corrected == 0

    @given(bit_lists, st.sampled_from(["rs", "rs_interleaved", "rs_heavy"]), st.data())
    @settings(max_examples=50, deadline=None)
    def test_rs_stacks_absorb_scattered_errors(self, bits, name, drawer):
        # One corrupted symbol per codeword stays within every budget.
        stack = CodingStack(PROFILES[name])
        wire = stack.encode(bits)
        depth = PROFILES[name].interleave_depth
        flips = drawer.draw(
            st.lists(
                st.integers(0, len(wire) - 1),
                min_size=depth,
                max_size=depth,
                unique_by=lambda index: index // 8 % depth,
            )
        )
        corrupted = list(wire)
        for position in flips:
            corrupted[position] ^= 1
        decoded = stack.decode(corrupted, data_bits=len(bits))
        assert decoded.bits == bits
        assert decoded.ok

    def test_interleaving_survives_a_burst_the_plain_code_cannot(self):
        rng = random.Random(99)
        bits = [rng.getrandbits(1) for _ in range(240)]
        plain = CodingStack(PROFILES["rs"])
        interleaved = CodingStack(PROFILES["rs_interleaved"])
        burst = 48  # 6 symbols: over nsym//2 = 4 for one codeword, fine split in two
        for stack, should_survive in ((plain, False), (interleaved, True)):
            wire = stack.encode(bits)
            corrupted = list(wire)
            for position in range(8, 8 + burst):
                corrupted[position] ^= 1
            decoded = stack.decode(corrupted, data_bits=len(bits))
            assert (decoded.bits == bits) == should_survive
            assert decoded.ok == should_survive

    def test_confidence_erasures_stretch_the_budget(self):
        # 6 corrupted symbols with confidence 0 exceed the blind budget
        # (nsym//2 = 4) but fit the erasure budget (nsym = 8).
        rng = random.Random(7)
        bits = [rng.getrandbits(1) for _ in range(120)]
        stack = CodingStack(PROFILES["rs"])
        wire = stack.encode(bits)
        corrupted = list(wire)
        confidences = [1.0] * len(wire)
        for symbol in range(6):
            for bit in range(8):
                position = symbol * 8 + bit
                corrupted[position] ^= rng.getrandbits(1)
                confidences[position] = 0.0
        blind = stack.decode(corrupted, data_bits=len(bits))
        soft = stack.decode(corrupted, data_bits=len(bits), confidences=confidences)
        assert not blind.ok
        assert soft.bits == bits
        assert soft.ok
        assert soft.erasures_used > 0

    @given(bit_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_overwhelmed_blocks_flagged_never_silent(self, bits, drawer):
        # Saturate the whole wire with drawn garbage.  A wrong payload
        # reported as clean (ok, zero corrections) is only legitimate when
        # the garbage happens to BE a valid codeword of that other payload
        # — the undetectable case every FEC has, and the reason the frame
        # CRC sits above the codec.  Anything else must surface through
        # ok=False or a nonzero correction count.
        stack = CodingStack(PROFILES["rs"])
        wire = stack.encode(bits)
        corrupted = [drawer.draw(st.integers(0, 1)) for _ in wire]
        decoded = stack.decode(corrupted, data_bits=len(bits))
        assert len(decoded.bits) == len(bits)
        if decoded.bits != bits and decoded.ok and decoded.corrected == 0:
            symbols = [
                int("".join(map(str, corrupted[start : start + 8])), 2)
                for start in range(0, len(corrupted), 8)
            ]
            _, corrections = ReedSolomon(8).decode(symbols)
            assert corrections == []

    def test_decode_length_mismatch_rejected(self):
        stack = CodingStack(PROFILES["rs"])
        wire = stack.encode([1, 0, 1, 1])
        with pytest.raises(CodingError):
            stack.decode(wire[:-1], data_bits=4)


class TestRateModel:
    @given(profile_names, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_prediction_is_a_probability(self, name, q, e):
        stack = CodingStack(PROFILES[name])
        prediction = stack.predicted_frame_failure(120, q, e)
        assert 0.0 <= prediction <= 1.0

    @given(profile_names)
    @settings(max_examples=20, deadline=None)
    def test_clean_channel_predicts_no_failures(self, name):
        assert CodingStack(PROFILES[name]).predicted_frame_failure(120, 0.0) == 0.0

    @given(profile_names, st.integers(1, 19))
    @settings(max_examples=50, deadline=None)
    def test_prediction_monotone_in_error_rate(self, name, step):
        stack = CodingStack(PROFILES[name])
        low = stack.predicted_frame_failure(120, step * 0.025)
        high = stack.predicted_frame_failure(120, (step + 1) * 0.025)
        assert high >= low - 1e-12

    def test_stronger_codes_predict_fewer_failures(self):
        q = 0.08
        ladder = [CodingStack(profile) for profile in DEFAULT_LADDER]
        predictions = [stack.predicted_frame_failure(120, q) for stack in ladder]
        assert predictions[0] == max(predictions)
        assert predictions[-1] == min(predictions)

    def test_erasure_credit_lowers_rs_prediction(self):
        stack = CodingStack(PROFILES["rs"])
        blind = stack.predicted_frame_failure(120, 0.2, 0.0)
        flagged = stack.predicted_frame_failure(120, 0.2, 0.5)
        assert flagged < blind
