"""Contract tests for the public API surface."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_defense_exports_resolve(self):
        from repro import defense

        for name in defense.__all__:
            assert hasattr(defense, name), name

    def test_experiments_exports_resolve(self):
        from repro import experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_enclave_family(self):
        assert issubclass(errors.InstructionNotAvailableError, errors.EnclaveError)
        assert issubclass(errors.EPCError, errors.EnclaveError)

    def test_paging_is_address_error(self):
        assert issubclass(errors.PagingError, errors.AddressError)

    def test_catchable_as_single_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.ChannelError("x")

    def _public_exceptions(self):
        return [
            obj
            for name in dir(errors)
            if not name.startswith("_")
            for obj in [getattr(errors, name)]
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]

    def test_every_public_exception_exported_from_package_root(self):
        # A caller handling fault-injection or sweep errors should never
        # need to import from repro.errors directly.
        exceptions = self._public_exceptions()
        assert exceptions, "no exceptions found in repro.errors"
        for exc in exceptions:
            assert exc.__name__ in repro.__all__, exc.__name__
            assert getattr(repro, exc.__name__) is exc

    def test_every_public_exception_documented(self):
        for exc in self._public_exceptions():
            doc = (exc.__doc__ or "").strip()
            assert doc, f"{exc.__name__} has no docstring"
            # Inherited docstrings don't count as documentation.
            for base in exc.__mro__[1:]:
                assert doc != (base.__doc__ or "").strip(), exc.__name__

    def test_fault_taxonomy_parentage(self):
        assert issubclass(errors.FaultError, errors.ReproError)
        assert issubclass(errors.TrialError, errors.ReproError)
        assert issubclass(errors.TrialTimeoutError, errors.TrialError)


class TestCommonBuilders:
    def test_build_machine_default(self):
        from repro.experiments.common import build_machine

        machine = build_machine(seed=5)
        assert machine.config.seed == 5
        assert machine.config.cores == 4

    def test_build_machine_reseeds_config(self):
        from repro.config import skylake_i7_6700k
        from repro.experiments.common import build_machine

        config = skylake_i7_6700k(seed=1)
        machine = build_machine(seed=9, config=config)
        assert machine.config.seed == 9

    def test_build_ready_channel(self):
        from repro.experiments.common import build_ready_channel

        machine, channel = build_ready_channel(seed=606)
        assert channel.is_ready
        assert channel.eviction_result.associativity == 8
