#!/usr/bin/env python3
"""Beyond the paper: framed, multi-lane exfiltration at ~50 KBps.

Combines the repository's two channel extensions:

* **multi-lane signaling** — one eviction set per 512 B unit, several bits
  per (stretched) window; three lanes reach ~50 KBps vs the paper's 35;
* **framing** — preamble + length + CRC-16, so the spy locks onto the
  message without knowing when it starts and rejects corrupted frames.

Run:  python examples/high_bandwidth_exfil.py
"""

from repro import Machine, skylake_i7_6700k
from repro.core.ecc import repetition_decode, repetition_encode
from repro.core.multichannel import MultiChannel
from repro.core.protocol import FrameCodec


SECRET = "exfiltrated: RSA p=0xF2A7...19, q=0xC4B1...8D (2048-bit factors)"


def main() -> None:
    machine = Machine(skylake_i7_6700k(seed=31337))
    channel = MultiChannel(machine, lanes=3)
    print("setting up 3 lanes (Algorithm 1 + monitor search per 512 B unit)...")
    channel.setup()

    codec = FrameCodec()
    payload = SECRET.encode()
    # Link stack: frame (preamble+length+CRC) under 3x repetition coding.
    # The spy shares only the window grid: repetition groups are aligned
    # to the grid, while the frame's position inside the stream is found
    # by the preamble scan.
    frame_bits = codec.encode(payload)
    link_bits = [0] * 10 + frame_bits + [0] * 4
    stream = repetition_encode(link_bits, factor=3)
    result = channel.transmit(stream)

    metrics = result.metrics
    print(f"\nchannel: {metrics.bit_rate:.1f} KBps raw at {metrics.error_rate:.2%} BER "
          f"(paper single-lane: 35 KBps); {metrics.bit_rate / 3:.1f} KBps after coding")

    decoded_link = repetition_decode(result.received, factor=3)
    frames = codec.decode_stream(decoded_link)
    if not frames:
        print("no frame recovered — retransmission needed")
        return
    clean = [f for f in frames if f.crc_ok]
    frame = clean[0] if clean else frames[0]
    status = "CRC OK" if frame.crc_ok else "CRC FAILED (would retransmit)"
    print(f"frame found at link-stream offset {frame.start_index} ({status})")
    print(f"payload: {frame.payload.decode(errors='replace')!r}")


if __name__ == "__main__":
    main()
