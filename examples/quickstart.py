#!/usr/bin/env python3
"""Quickstart: build the machine, set up the channel, send a message.

This is the complete attack of the paper in ~20 lines of API use:

1. simulate the i7-6700K SGX platform (``skylake_i7_6700k``);
2. ``CovertChannel.setup()`` — the spy calibrates latency classes, the
   trojan reverse-engineers an MEE-cache eviction set (Algorithm 1), and
   the spy finds its monitor address;
3. ``transmit()`` — Algorithm 2, one bit per 15000-cycle window.

Run:  python examples/quickstart.py
"""

from repro import (
    CovertChannel,
    Machine,
    bits_to_text,
    skylake_i7_6700k,
    text_to_bits,
)


def main() -> None:
    machine = Machine(skylake_i7_6700k(seed=2019))
    channel = CovertChannel(machine)

    print("setting up the covert channel (calibrate -> Algorithm 1 -> monitor)...")
    channel.setup()
    eviction = channel.eviction_result
    print(f"  reverse-engineered associativity : {eviction.associativity} ways")
    print(f"  calibrated hit/miss latencies    : "
          f"{channel.calibration.classifier.hit_estimate:.0f} / "
          f"{channel.calibration.classifier.miss_estimate:.0f} cycles")

    secret = "MEE cache covert channel: hello from the trojan enclave!"
    result = channel.transmit(text_to_bits(secret))

    metrics = result.metrics
    print(f"\ntransmitted {metrics.bits} bits in "
          f"{metrics.bits * result.window_cycles / machine.config.clock_hz * 1e3:.2f} ms "
          f"of simulated time")
    print(f"  bit rate   : {metrics.bit_rate:.1f} KBps  (paper: 35 KBps)")
    print(f"  error rate : {metrics.error_rate:.2%}    (paper: 1.7%)")
    print(f"  received   : {bits_to_text(result.received)!r}")


if __name__ == "__main__":
    main()
