#!/usr/bin/env python3
"""Mitigation study: which MEE-cache designs resist the attack?

Paper Section 5.5 notes LLC defenses do not transfer directly to the MEE
cache.  The one lever the MEE itself controls is its replacement policy.
This example mounts the *full* attack (reverse engineering + channel)
against four policies and reports where it breaks.

Run:  python examples/mitigation_study.py
"""

from repro import ChannelError, CovertChannel, Machine, MEECacheConfig, skylake_i7_6700k
from repro.core.encoding import pattern_100100


def attack(policy: str, seed: int) -> tuple:
    """(verdict, detail) for one attack attempt against ``policy``."""
    config = skylake_i7_6700k(seed=seed).with_mee_cache(MEECacheConfig(policy=policy))
    machine = Machine(config)
    channel = CovertChannel(machine)
    try:
        channel.setup()
    except ChannelError as exc:
        return "setup-failed", f"setup FAILED ({exc})"
    result = channel.transmit(pattern_100100(128))
    metrics = result.metrics
    if metrics.error_rate > 0.2:
        verdict = "unusable"
    elif metrics.error_rate > 0.05:
        verdict = "degraded"
    else:
        verdict = "succeeds"
    detail = (f"assoc={channel.eviction_result.associativity} recovered, "
              f"BER {metrics.error_rate:.1%} at {metrics.bit_rate:.0f} KBps")
    return verdict, detail


def main() -> None:
    # A determined attacker retries with fresh allocations; a mitigation
    # only counts if it holds across attempts.
    seeds = (99, 3, 17)
    print(f"mounting the full attack against MEE replacement policies "
          f"({len(seeds)} attempts each):\n")
    summary = {}
    for policy, description in [
        ("rrip", "2-bit SRRIP (modeled hardware default)"),
        ("lru", "true LRU"),
        ("plru", "tree pseudo-LRU"),
        ("random", "randomized replacement (candidate mitigation)"),
    ]:
        print(f"{policy:>7} ({description}):")
        verdicts = []
        for seed in seeds:
            verdict, detail = attack(policy, seed)
            verdicts.append(verdict)
            print(f"         attempt(seed={seed}): {detail if verdict != 'setup-failed' else detail} -> {verdict}")
        summary[policy] = verdicts
        print()

    def ever_leaks(policy):
        return any(v == "succeeds" for v in summary[policy])

    print("conclusion:")
    for policy in ("rrip", "lru", "plru"):
        if ever_leaks(policy):
            print(f"  {policy:>7}: leaks (attack succeeded in at least one attempt)")
        else:
            print(f"  {policy:>7}: no successful attempt in this run")
    if ever_leaks("random"):
        print("   random: LEAKED — randomization insufficient at this strength")
    else:
        print("   random: held across attempts — the policy-level mitigation,")
        print("           at the cost of worse MEE hit rates for honest workloads")


if __name__ == "__main__":
    main()
