#!/usr/bin/env python3
"""Exfiltrate a key through a preemption storm — and self-heal.

Scenario from the paper's introduction, made hostile: a trojan implanted
in a victim enclave leaks an encryption key to a spy on another core, but
this time the OS keeps preempting the trojan's core mid-transmission
(CacheZoom-style monitoring, a busy scheduler — anything that steals
12k-24k-cycle slices).  At the paper's 15000-cycle operating point a
window only has ~4800 cycles of slack after the ~9000-cycle eviction, so
every stolen slice that lands on an active window destroys the frame in
flight.

The demo sends the same key three ways:

1. raw bit pipe (the paper's channel) — the storm shreds it;
2. self-healing delivery pinned to the 15000-cycle window — framing and
   retransmission alone can't save an operating point with no slack;
3. full self-healing: sequence-numbered frames, preamble re-lock, and the
   AIMD window controller that backs off under *persistent* failure and
   re-tightens when the storm passes.

Run:  python examples/noisy_exfiltration.py
"""

from repro import (
    CovertChannel,
    Machine,
    SelfHealingChannel,
    SelfHealingConfig,
    bits_to_text,
    skylake_i7_6700k,
    text_to_bits,
)
from repro.faults import preemption_storm

SECRET = "key=0x2b7e151628aed2a6"
SEED = 7
#: preemption bursts: one ~12k-24k-cycle slice every ~200k cycles on the
#: trojan's core, sustained long enough to cover the whole delivery
STORM_RATE_PER_CYCLE = 5e-6
STORM_CYCLES = 120_000_000.0


def build_stormy_channel():
    """A ready channel whose trojan core is under a preemption storm."""
    machine = Machine(skylake_i7_6700k(seed=SEED))
    channel = CovertChannel(machine)
    channel.setup()
    plan = preemption_storm(
        seed=SEED,
        core=channel.config.trojan_core,
        start_cycle=machine.now,
        duration_cycles=STORM_CYCLES,
        rate_per_cycle=STORM_RATE_PER_CYCLE,
    )
    machine.inject_faults(plan)
    return machine, channel


def run_raw() -> None:
    _, channel = build_stormy_channel()
    result = channel.transmit(text_to_bits(SECRET))
    recovered = bits_to_text(result.received)
    ok = "EXACT" if recovered == SECRET else "corrupted"
    print(
        f"  raw bit pipe        : BER {result.metrics.error_rate:.1%}, "
        f"recovered {recovered!r} ({ok})"
    )


def run_self_healing(adaptive: bool) -> None:
    _, channel = build_stormy_channel()
    config = (
        SelfHealingConfig()
        if adaptive
        else SelfHealingConfig(fixed_window_cycles=15_000)
    )
    result = SelfHealingChannel(channel, config).send(SECRET.encode())
    recovered = result.recovered.decode(errors="replace")
    metrics = result.metrics
    label = "self-heal, adaptive " if adaptive else "self-heal, fixed 15k"
    ok = "EXACT" if result.delivered else "incomplete"
    detail = (
        f"{metrics.frames_delivered}/{len(result.attempts)} frames landed, "
        f"{metrics.retransmissions} retx, {metrics.goodput_kbps:.2f} KBps"
    )
    if adaptive and result.window_history:
        detail += f", window peaked at {max(w for w, _ in result.window_history)}"
    print(f"  {label}: {detail}, recovered {recovered!r} ({ok})")


def main() -> None:
    print(
        f"exfiltrating {SECRET!r} through a preemption storm on the "
        "trojan's core:"
    )
    run_raw()
    run_self_healing(adaptive=False)
    run_self_healing(adaptive=True)


if __name__ == "__main__":
    main()
