#!/usr/bin/env python3
"""Exfiltrate a key under noise, with and without error correction.

Scenario from the paper's introduction: a trojan implanted in a victim
enclave leaks an encryption key to a spy on another core while the rest
of the machine keeps working.  We run the Figure 8 noise regimes and show
how block-repetition coding turns the raw ~2-4% channel into a lossless
one at one third of the rate.

Run:  python examples/noisy_exfiltration.py
"""

from repro import CovertChannel, Machine, bits_to_text, skylake_i7_6700k, text_to_bits
from repro.core.ecc import block_repetition_decode, block_repetition_encode
from repro.system.noise import mee_stride_stressor
from repro.units import MIB


SECRET = "key=0x2b7e151628aed2a6"


def run_with_noise(seed: int, use_coding: bool) -> None:
    machine = Machine(skylake_i7_6700k(seed=seed))
    channel = CovertChannel(machine)
    channel.setup()

    # Figure 8(c)-style background: another enclave hammering the MEE
    # cache at a 512 B stride on a third core.
    noise_space = machine.new_address_space("noise-proc")
    noise_enclave = machine.create_enclave("noise-enclave", noise_space)
    noise_region = noise_enclave.alloc(2 * MIB)

    payload = text_to_bits(SECRET)
    if use_coding:
        payload = block_repetition_encode(payload, copies=3)
    duration = (len(payload) + 20) * channel.config.window_cycles
    noise = [("mee-noise", mee_stride_stressor(noise_region, 512, duration), 2, noise_space, noise_enclave)]

    result = channel.transmit(payload, extra_processes=noise)
    received = result.received
    if use_coding:
        received = block_repetition_decode(received, copies=3)
    recovered = bits_to_text(received)

    label = "with 3x block repetition" if use_coding else "raw channel          "
    ok = "EXACT" if recovered == SECRET else "corrupted"
    print(f"  {label}: channel BER {result.metrics.error_rate:.2%}, "
          f"recovered {recovered!r} ({ok})")


def main() -> None:
    print(f"exfiltrating {SECRET!r} under MEE-cache noise (512 B stride stressor):")
    run_with_noise(seed=7, use_coding=False)
    run_with_noise(seed=7, use_coding=True)


if __name__ == "__main__":
    main()
