#!/usr/bin/env python3
"""Reverse-engineer the MEE cache from scratch (paper Section 4).

Plays the attacker with no knowledge of the MEE cache organization:

1. Figure 4's capacity probe — grow candidate address sets until eviction
   is certain; infer capacity as ``N_sat x 16 x 64 B``;
2. Algorithm 1 — recover one full eviction address set; its size is the
   associativity;
3. combine both into the full geometry (the paper's 64 KB / 8-way / 128
   sets) and check it against the simulator's ground truth.

Run:  python examples/reverse_engineer.py
"""

from repro import skylake_i7_6700k
from repro.experiments import algorithm1, figure4


def main() -> None:
    print("capacity probe (Figure 4):")
    capacity_result = figure4.run(seed=42, trials=60)
    print(figure4.render(capacity_result))

    print("\nAlgorithm 1 (eviction address set / associativity):")
    geometry = algorithm1.run(seed=42, capacity_trials=60)
    print(algorithm1.render(geometry))

    truth = skylake_i7_6700k().mee_cache
    recovered_ok = (
        geometry.capacity_bytes == truth.size_bytes
        and geometry.associativity == truth.ways
        and geometry.num_sets == truth.num_sets
    )
    print(f"\nground truth: {truth.size_bytes // 1024} KB, {truth.ways}-way, "
          f"{truth.num_sets} sets -> recovered {'CORRECTLY' if recovered_ok else 'WRONGLY'}")


if __name__ == "__main__":
    main()
