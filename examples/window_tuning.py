#!/usr/bin/env python3
"""Tune the timing window: the Figure 7 trade-off as a design procedure.

An attacker deploying the channel must pick ``Tsync``: too small and the
trojan's ~9000-cycle eviction no longer fits (the error knee between 7500
and 10000 cycles); too large and bandwidth is wasted.  This example sweeps
the window, prints the trade-off, and selects the best operating point by
error-discounted goodput.

Run:  python examples/window_tuning.py
"""

import numpy as np

from repro import CovertChannel, Machine, skylake_i7_6700k
from repro.core.encoding import random_bits


def main() -> None:
    machine = Machine(skylake_i7_6700k(seed=1337))
    channel = CovertChannel(machine)
    print("setting up channel...")
    channel.setup()

    rng = np.random.default_rng(0)
    print(f"{'window':>8} {'bit rate':>10} {'error':>8} {'capacity':>9}")
    best = None
    for window in (5000, 7500, 10000, 12500, 15000, 20000, 30000):
        result = channel.transmit(random_bits(400, rng), window_cycles=window)
        metrics = result.metrics
        print(f"{window:>8} {metrics.bit_rate:>8.1f} KB {metrics.error_rate:>7.1%} "
              f"{metrics.capacity_kbps:>7.1f} KB")
        # Rank by binary-symmetric-channel capacity: raw speed means
        # nothing once errors approach a coin flip.
        if best is None or metrics.capacity_kbps > best[1].capacity_kbps:
            best = (window, metrics)

    window, metrics = best
    print(f"\nbest operating point: window={window} cycles "
          f"({metrics.bit_rate:.1f} KBps at {metrics.error_rate:.1%} error)")
    print("paper's choice: 15000 cycles -> 35 KBps at 1.7% error")


if __name__ == "__main__":
    main()
