"""Regenerates the headline claim: 35 KBps at 1.7% error, no error handling."""

from repro.experiments import headline

from _harness import publish, run_once


def test_headline_35kbps(benchmark, results_dir):
    result = run_once(benchmark, headline.run, seed=1, bits=2000)
    publish(results_dir, "headline", headline.render(result))

    assert result.bit_rate_matches  # 35 KBps is exact cycle arithmetic
    assert result.metrics.error_rate < 0.05  # paper: 1.7%
    assert result.metrics.error_rate >= 0.0
