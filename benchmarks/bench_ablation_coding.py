"""Ablation: error-correcting codes over the raw channel (extension).

The paper reports raw rates "without any error handling"; this benchmark
quantifies what light coding buys at aggressive window sizes.
"""

from repro.experiments import ablations

from _harness import publish, run_once


def test_ablation_error_correcting_codes(benchmark, results_dir):
    result = run_once(benchmark, ablations.run_coding, seed=1, data_bits=400)
    publish(results_dir, "ablation_coding", ablations.render_coding(result))

    rows = {(scheme, window): (raw, residual, goodput) for scheme, window, raw, residual, goodput in result.rows}
    for window in (7500, 10000, 15000):
        raw_residual = rows[("raw", window)][1]
        repetition_residual = rows[("repetition3", window)][1]
        assert repetition_residual <= raw_residual
