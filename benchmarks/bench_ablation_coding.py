"""Ablation: error-correcting codes over the raw channel (extension).

The paper reports raw rates "without any error handling"; this benchmark
quantifies what coding buys at aggressive window sizes — from the legacy
Hamming/repetition schemes up to the reliability stack's soft-decision
SECDED and interleaved Reed-Solomon profiles.
"""

from repro.experiments import ablations

from _harness import publish, run_once


def test_ablation_error_correcting_codes(benchmark, results_dir):
    result = run_once(benchmark, ablations.run_coding, seed=1, data_bits=400)
    publish(results_dir, "ablation_coding", ablations.render_coding(result))

    rows = {(scheme, window): (raw, residual, goodput) for scheme, window, raw, residual, goodput in result.rows}
    for window in (7500, 10000, 15000):
        raw_residual = rows[("raw", window)][1]
        repetition_residual = rows[("repetition3", window)][1]
        assert repetition_residual <= raw_residual
    # At the paper's operating point (15000 cycles) only residual noise
    # remains; interleaving keeps every codeword inside its budget and the
    # stack decodes clean — the same seed's *plain* RS can still lose a
    # codeword to an unlucky error cluster, which is the case for
    # interleaving in the first place.
    assert rows[("rs_interleaved", 15000)][1] == 0.0
    assert rows[("rs_interleaved", 15000)][1] <= rows[("raw", 15000)][1]
