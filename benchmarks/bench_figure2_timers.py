"""Regenerates Figure 2 / Section 3 challenge 4: SGX timing mechanisms."""

from repro.experiments import figure2

from _harness import publish, run_once


def test_figure2_timer_mechanisms(benchmark, results_dir):
    result = run_once(benchmark, figure2.run, seed=1, samples=300)
    publish(results_dir, "figure2_timers", figure2.render(result))

    assert result.rdtsc_faulted_in_enclave
    ocall = next(r for r in result.rows if r.mechanism.startswith("ocall"))
    # Paper: 8000-15000 cycles per OCALL round trip.  The measured mean
    # sits in that band; individual samples can exceed it when an OS
    # interrupt lands inside the measured interval.
    assert 8000 <= ocall.stats.mean <= 15000
    assert ocall.stats.minimum >= 7500
    counter = next(r for r in result.rows if "counter" in r.mechanism)
    assert counter.stats.mean < 100  # paper: ~50 cycles
