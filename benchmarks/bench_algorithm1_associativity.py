"""Regenerates the Section 4 conclusion: 64 KB, 8-way, 128-set MEE cache."""

from repro.experiments import algorithm1

from _harness import publish, run_once


def test_algorithm1_recovers_geometry(benchmark, results_dir):
    result = run_once(benchmark, algorithm1.run, seed=1)
    publish(results_dir, "algorithm1_geometry", algorithm1.render(result))

    assert result.capacity_bytes == 64 * 1024
    assert result.associativity == 8
    assert result.num_sets == 128
