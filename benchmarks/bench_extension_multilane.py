"""Extension benchmark: multi-lane bandwidth scaling beyond the paper.

The versions layout has eight independent set families (one per 512 B
unit); signaling through several at once trades longer windows for more
bits per window.
"""

import numpy as np

from repro.config import skylake_i7_6700k
from repro.core.encoding import random_bits
from repro.core.multichannel import MultiChannel
from repro.system.machine import Machine

from _harness import publish, run_once


def _sweep(seed: int, bits: int):
    rows = []
    for lanes in (1, 2, 3):
        machine = Machine(skylake_i7_6700k(seed=seed))
        channel = MultiChannel(machine, lanes=lanes)
        channel.setup()
        payload = random_bits(bits, np.random.default_rng(seed))
        # Single lane runs at the paper's 15000-cycle operating point.
        window = 15_000 if lanes == 1 else None
        result = channel.transmit(payload, window_cycles=window)
        rows.append((lanes, result.window_cycles, result.metrics.bit_rate, result.metrics.error_rate))
    return rows


def test_extension_multilane_scaling(benchmark, results_dir):
    rows = run_once(benchmark, _sweep, seed=1, bits=240)

    from repro.analysis.render import render_table

    table = render_table(
        ["lanes", "window (cyc)", "bit rate (KBps)", "error rate"],
        [[lanes, window, f"{rate:.1f}", f"{error:.3f}"] for lanes, window, rate, error in rows],
    )
    publish(results_dir, "extension_multilane", table)

    by_lanes = {lanes: (rate, error) for lanes, _, rate, error in rows}
    assert by_lanes[1][0] == 35.0  # the paper's operating point
    assert by_lanes[2][0] > 45.0  # two lanes beat it...
    assert by_lanes[3][0] > by_lanes[2][0]  # ...three more so (sublinearly)
    for lanes in (1, 2, 3):
        assert by_lanes[lanes][1] < 0.08  # without wrecking accuracy
