"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper figure/table: it runs the experiment
exactly once under pytest-benchmark (``pedantic`` mode — these are
multi-second simulations, not microseconds), prints the rendered result,
and archives it under ``results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered figure outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
