"""Regenerates Figure 8: 128-bit transmissions under four noise regimes."""

from repro.experiments import figure8

from _harness import publish, run_once


def test_figure8_noise_robustness(benchmark, results_dir):
    result = run_once(benchmark, figure8.run, seed=1, bit_count=128)
    publish(results_dir, "figure8_noise", figure8.render(result))

    counts = result.error_counts()
    # (a) no noise: ~1 error bit in 128 (paper Figure 8a).
    assert counts["no-noise"] <= 5
    # (b) cache/memory stress barely matters — the MEE cache is untouched.
    assert counts["memory-stress"] <= counts["no-noise"] + 4
    # (c)/(d) MEE-stride noise is the regime that hurts (paper: 4-5 bits).
    assert counts["mee-512B"] + counts["mee-4KB"] >= counts["no-noise"]
    for name in figure8.ENVIRONMENTS:
        assert len(result.results[name].received) == 128
