"""Regenerates Figure 5: protected-access latency by integrity-tree level."""

from repro.experiments import figure5

from _harness import publish, run_once


def test_figure5_latency_histogram(benchmark, results_dir):
    result = run_once(benchmark, figure5.run, seed=1, accesses_per_stride=600)
    publish(results_dir, "figure5_latency", figure5.render(result))

    # All five latency classes observed, ordered versions < ... < root.
    order = ["versions", "level0", "level1", "level2", "root"]
    assert set(result.level_stats) == set(order)
    medians = [result.level_stats[level].median for level in order]
    assert medians == sorted(medians)
    # Paper anchors: ~480 vs ~750 with a gap of (at least) ~270-300 cycles.
    assert abs(result.versions_hit_estimate - 480) < 40
    assert abs(result.versions_miss_estimate - 750) < 40
    assert result.hit_miss_gap >= 240
    # "The difference between level 2 ... or the root level is relatively small."
    gaps = [b - a for a, b in zip(medians, medians[1:])]
    assert gaps[-1] == min(gaps)
