"""Ablation: the paper's two-phase eviction vs a single forward sweep.

Validates Section 5.3's claim that approximate-LRU replacement makes a
one-directional eviction sweep unreliable.
"""

from repro.experiments import ablations

from _harness import publish, run_once


def test_ablation_two_phase_eviction(benchmark, results_dir):
    result = run_once(benchmark, ablations.run_two_phase, seed=1, bits=500)
    publish(results_dir, "ablation_two_phase", ablations.render_two_phase(result))

    assert result.one_phase_worse
    assert result.two_phase.error_rate < 0.05
    assert result.one_phase.error_rate > result.two_phase.error_rate + 0.05
