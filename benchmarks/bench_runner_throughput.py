"""Throughput benchmarks for the sweep execution engine.

Three measurements, each exercising one layer of the engine under
``repro.experiments``:

* **pool reuse** — many small ``run_trials`` calls with per-call pools
  vs one persistent pool (``REPRO_POOL_PERSIST=1``): the repeated-sweep
  pattern every figure harness produces;
* **adaptive chunking** — a sweep of hundreds of tiny trials at the
  historical ``chunksize=1`` vs the adaptive default;
* **cache hits** — a cold sweep vs re-running it against a warm
  content-addressed trial cache, plus the incremental case (the same
  sweep grown by a few seeds).

Every variant asserts bit-identical results against the baseline before
reporting a time — a speedup that changes answers is a bug, not a win.

Run standalone (``PYTHONPATH=src python benchmarks/bench_runner_throughput.py``)
to print the comparison and append machine-readable records under
``results/bench_history/``.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.experiments import accounting, runner
from repro.experiments.cache import TrialCache
from repro.experiments.pool import (
    POOL_PERSIST_ENV,
    pool_stats,
    shutdown_persistent_pool,
)

from _harness import bench_history_append, publish, run_once

#: per-call sweeps in the pool-reuse measurement
POOL_SWEEPS = 6
POOL_TRIALS = 8
CHUNK_TRIALS = 512
CACHE_TRIALS = 10


def _spin_trial(seed: int) -> int:
    """A few milliseconds of deterministic arithmetic."""
    acc = seed & 0x7FFFFFFF
    for _ in range(20_000):
        acc = (acc * 1103515245 + 12345) % 0x80000000
    return acc


def _tiny_trial(seed: int) -> int:
    """Near-zero work: isolates per-trial IPC overhead."""
    return (seed * 2654435761) % 0x100000000


def _costly_trial(seed: int) -> int:
    """Tens of milliseconds: what a cache hit saves."""
    acc = seed & 0x7FFFFFFF
    for _ in range(200_000):
        acc = (acc * 1103515245 + 12345) % 0x80000000
    return acc


def _timed_sweeps(fn, seeds, sweeps: int, **kwargs):
    start = time.perf_counter()
    outputs = [runner.run_trials(fn, seeds, **kwargs) for _ in range(sweeps)]
    return time.perf_counter() - start, outputs


def measure_pool_reuse() -> dict:
    """Per-call pools vs one persistent pool over repeated sweeps."""
    seeds = list(range(POOL_TRIALS))
    saved = os.environ.get(POOL_PERSIST_ENV)
    try:
        os.environ[POOL_PERSIST_ENV] = "0"
        shutdown_persistent_pool()
        fresh_seconds, fresh = _timed_sweeps(
            _spin_trial, seeds, POOL_SWEEPS, jobs=2
        )
        os.environ[POOL_PERSIST_ENV] = "1"
        before = pool_stats()
        persistent_seconds, persistent = _timed_sweeps(
            _spin_trial, seeds, POOL_SWEEPS, jobs=2
        )
        after = pool_stats()
    finally:
        shutdown_persistent_pool()
        if saved is None:
            os.environ.pop(POOL_PERSIST_ENV, None)
        else:
            os.environ[POOL_PERSIST_ENV] = saved
    assert persistent == fresh, "pool persistence changed sweep results"
    return {
        "sweeps": POOL_SWEEPS,
        "trials_per_sweep": POOL_TRIALS,
        "per_call_pool_seconds": fresh_seconds,
        "persistent_pool_seconds": persistent_seconds,
        "speedup": fresh_seconds / persistent_seconds,
        "pools_created_persistent": after["created"] - before["created"],
        "pool_reuses": after["reused"] - before["reused"],
    }


def measure_chunking() -> dict:
    """chunksize=1 vs the adaptive default on many tiny trials."""
    seeds = list(range(CHUNK_TRIALS))
    serial = [_tiny_trial(seed) for seed in seeds]
    start = time.perf_counter()
    unchunked = runner.run_trials(_tiny_trial, seeds, jobs=2, chunksize=1)
    unchunked_seconds = time.perf_counter() - start
    start = time.perf_counter()
    adaptive = runner.run_trials(_tiny_trial, seeds, jobs=2)
    adaptive_seconds = time.perf_counter() - start
    assert unchunked == serial and adaptive == serial, (
        "chunking changed sweep results"
    )
    return {
        "trials": CHUNK_TRIALS,
        "chunksize1_seconds": unchunked_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup": unchunked_seconds / adaptive_seconds,
    }


def measure_cache_hits() -> dict:
    """Cold sweep vs warm-cache re-run vs incremental growth."""
    seeds = list(range(CACHE_TRIALS))
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = TrialCache(cache_dir)
        start = time.perf_counter()
        cold = runner.run_trials(_costly_trial, seeds, jobs=1, cache=cache)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = runner.run_trials(_costly_trial, seeds, jobs=1, cache=cache)
        warm_seconds = time.perf_counter() - start
        grown_seeds = seeds + [CACHE_TRIALS, CACHE_TRIALS + 1]
        start = time.perf_counter()
        grown = runner.run_trials(
            _costly_trial, grown_seeds, jobs=1, cache=cache
        )
        incremental_seconds = time.perf_counter() - start
        stats = cache.stats.to_dict()
    assert warm == cold, "cache hits changed sweep results"
    assert grown[:CACHE_TRIALS] == cold, "incremental sweep changed results"
    assert stats["hits"] == 2 * CACHE_TRIALS, stats
    return {
        "trials": CACHE_TRIALS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "incremental_seconds": incremental_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "cache_stats": stats,
    }


def _render(pool: dict, chunk: dict, cache: dict) -> str:
    return "\n".join(
        [
            f"pool reuse : {pool['sweeps']}x{pool['trials_per_sweep']}-trial sweeps, "
            f"per-call pools {pool['per_call_pool_seconds']:.3f}s vs persistent "
            f"{pool['persistent_pool_seconds']:.3f}s ({pool['speedup']:.2f}x, "
            f"{pool['pools_created_persistent']} pool(s) created, "
            f"{pool['pool_reuses']} reuses)",
            f"chunking   : {chunk['trials']} tiny trials, chunksize=1 "
            f"{chunk['chunksize1_seconds']:.3f}s vs adaptive "
            f"{chunk['adaptive_seconds']:.3f}s ({chunk['speedup']:.2f}x)",
            f"trial cache: {cache['trials']} trials, cold {cache['cold_seconds']:.3f}s "
            f"vs warm {cache['warm_seconds']:.3f}s ({cache['warm_speedup']:.1f}x); "
            f"incremental +2 trials {cache['incremental_seconds']:.3f}s",
        ]
    )


def _measure_all() -> dict:
    return {
        "pool_reuse": measure_pool_reuse(),
        "chunking": measure_chunking(),
        "cache": measure_cache_hits(),
    }


def test_runner_throughput(benchmark, results_dir):
    record = run_once(benchmark, _measure_all)
    publish(
        results_dir,
        "runner_throughput",
        _render(record["pool_reuse"], record["chunking"], record["cache"]),
        record=record,
    )
    # Reuse must not be slower than respawning, and a warm cache must beat
    # computing (generous bounds: the shared CI box is noisy).
    assert record["pool_reuse"]["persistent_pool_seconds"] <= (
        record["pool_reuse"]["per_call_pool_seconds"] * 1.5
    )
    assert record["cache"]["warm_seconds"] < record["cache"]["cold_seconds"]
    assert record["cache"]["incremental_seconds"] < record["cache"]["cold_seconds"]


if __name__ == "__main__":
    import pathlib

    results_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    results_dir.mkdir(exist_ok=True)
    record = _measure_all()
    text = _render(record["pool_reuse"], record["chunking"], record["cache"])
    print(text)
    bench_history_append(results_dir, "runner_throughput", record)
    accounting.write_perf_baseline(str(results_dir / "perf_baseline.json"))
