"""Defense evaluation benchmarks (paper Section 5.5, made quantitative).

Three countermeasure families against the real attack: MEE-counter
detection, way-partitioning, and noise injection.
"""

from repro.experiments import defenses

from _harness import publish, run_once


def test_defense_detection(benchmark, results_dir):
    result = run_once(benchmark, defenses.run_detection, seed=1, bits=200)
    publish(results_dir, "defense_detection", defenses.render_detection(result))

    assert result.true_positive  # the channel's fingerprint is caught
    assert not result.false_positives  # benign workloads pass


def test_defense_partitioning(benchmark, results_dir):
    result = run_once(benchmark, defenses.run_partitioning, seed=1, bits=200)
    publish(results_dir, "defense_partitioning", defenses.render_partitioning(result))

    assert result.baseline_error_rate < 0.1  # attack works unpartitioned
    assert result.defense_effective  # and dies under way partitioning


def test_defense_noise_injection(benchmark, results_dir):
    result = run_once(benchmark, defenses.run_noise_injection, seed=1, bits=200)
    publish(results_dir, "defense_noise_injection", defenses.render_noise_injection(result))

    # Honest negative result: software injection barely moves the needle —
    # its fills rarely collide with the channel's set and SRRIP shields
    # resident lines.  Require only that it does not *help* the attacker.
    off = result.ber_at(0)
    strongest = result.ber_at(4_000)
    assert strongest >= off - 0.01


def test_defense_hardware_scrubbing(benchmark, results_dir):
    result = run_once(benchmark, defenses.run_scrubbing, seed=1, bits=200)
    publish(results_dir, "defense_scrubbing", defenses.render_scrubbing(result))

    rates = [rate for rate, _, _ in result.rows]
    bers = [ber for _, ber, _ in result.rows]
    costs = [cost for _, _, cost in result.rows]
    # Strongest scrub rate must substantially degrade the channel...
    assert bers[-1] >= bers[0] + 0.04
    # ...at modest benign cost (median access within 10% of baseline).
    assert costs[-1] <= costs[0] * 1.10
