"""Regenerates Figure 4: eviction probability vs candidate-set size."""

from repro.experiments import figure4

from _harness import publish, run_once


def test_figure4_capacity_curve(benchmark, results_dir):
    result = run_once(benchmark, figure4.run, seed=1, trials=100)
    publish(results_dir, "figure4_capacity", figure4.render(result))

    probabilities = result.curve.probabilities
    # Shape: monotone trend reaching 100% at 64 addresses (paper §4.1).
    assert probabilities[-1] >= 0.97
    assert probabilities[0] < 0.2
    assert probabilities[-1] > probabilities[len(probabilities) // 2]
    # The paper's capacity arithmetic: 64 x 16 x 64 B = 64 KB.
    assert result.inferred_capacity_bytes == 64 * 1024
