"""Regenerates Figure 7: bit rate / error rate vs timing window."""

from repro.experiments import figure7

from _harness import publish, run_once


def test_figure7_window_tradeoff(benchmark, results_dir):
    result = run_once(benchmark, figure7.run, seed=1, bits_per_window=600)
    publish(results_dir, "figure7_tradeoff", figure7.render(result))

    rates = {p.window_cycles: p.metrics for p in result.points}
    # Bit rate is pure cycle arithmetic: 35 KBps at 15000, 105 at 5000.
    assert abs(rates[15000].bit_rate - 35.0) < 0.1
    assert abs(rates[5000].bit_rate - 105.0) < 0.1
    # The error knee sits between 7500 and 10000 (paper: 34% -> 5.2%),
    # because a '1' costs ~9000 cycles to send.
    assert rates[7500].error_rate > 0.2
    assert rates[10000].error_rate < 0.15
    assert rates[7500].error_rate > 2.5 * rates[10000].error_rate
    # The paper's operating point: ~1.7% at 15000.
    assert rates[15000].error_rate < 0.05
