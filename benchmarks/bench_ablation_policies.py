"""Ablation: MEE replacement policies, including randomization as a defense.

Paper Section 5.5 argues LLC defenses need rework for the MEE cache; a
randomized replacement policy is the one knob the MEE itself could turn.
"""

from repro.experiments import ablations

from _harness import publish, run_once


def test_ablation_replacement_policies(benchmark, results_dir):
    result = run_once(
        benchmark,
        ablations.run_policies,
        seed=1,
        bits=400,
        policies=("rrip", "lru", "plru", "random"),
    )
    publish(results_dir, "ablation_policies", ablations.render_policies(result))

    # SRRIP and true LRU are reliably attackable.
    for policy in ("rrip", "lru"):
        assert policy not in result.setup_failures
        assert result.metrics_by_policy[policy].error_rate < 0.15
    # Tree-PLRU leaves the channel fragile: depending on frame placement
    # the setup fails or the error rate balloons — but it never *hardens*
    # the cache outright (the attack sometimes fully succeeds; see the
    # mitigation_study example).  Accept either outcome here.
    assert "plru" in result.setup_failures or "plru" in result.metrics_by_policy
    # Random replacement either breaks setup or degrades the channel.
    if "random" not in result.setup_failures:
        assert (
            result.metrics_by_policy["random"].error_rate
            > 2 * result.metrics_by_policy["rrip"].error_rate
        )
