"""Helpers shared by the benchmark modules.

Besides printing and archiving the rendered text figures (the historical
``results/<name>.txt`` artifacts), every :func:`publish` call now also
appends a machine-readable record — wall-clock seconds, python version,
timestamp — to ``results/bench_history/<name>.json``, so the performance
trajectory of each benchmark is a queryable series instead of a pile of
text files.
"""

from __future__ import annotations

import json
import platform
import time

#: wall time of the most recent run_once call, consumed by publish()
_LAST_WALL = {"seconds": None}


def run_once(benchmark, experiment, *args, **kwargs):
    """Run ``experiment`` once under the benchmark clock and return it.

    The experiments are multi-second whole-machine simulations; pedantic
    single-round mode records their wall time without re-running them.
    The measured wall-clock is stashed for the next :func:`publish` call
    to include in the bench-history record.
    """

    def timed(*call_args, **call_kwargs):
        start = time.perf_counter()
        result = experiment(*call_args, **call_kwargs)
        _LAST_WALL["seconds"] = time.perf_counter() - start
        return result

    return benchmark.pedantic(timed, args=args, kwargs=kwargs, iterations=1, rounds=1)


def bench_history_append(results_dir, name: str, record: dict) -> dict:
    """Append ``record`` to ``results/bench_history/<name>.json``.

    The file holds a JSON list, one record per run, oldest first; an
    unreadable file is restarted rather than crashing the benchmark.
    Returns the record as written (environment fields filled in).
    """
    entry = {
        "bench": name,
        "timestamp": time.time(),
        "python": platform.python_version(),
    }
    entry.update(record)
    history_dir = results_dir / "bench_history"
    history_dir.mkdir(exist_ok=True)
    path = history_dir / f"{name}.json"
    history = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    history.append(entry)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


def publish(results_dir, name: str, text: str, record: dict = None) -> None:
    """Print a rendered figure, archive it under results/, and append the
    machine-readable bench-history record (wall seconds from the last
    :func:`run_once`, plus anything passed in ``record``)."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(text + "\n")
    wall, _LAST_WALL["seconds"] = _LAST_WALL["seconds"], None
    entry = {"wall_seconds": wall}
    if record:
        entry.update(record)
    bench_history_append(results_dir, name, entry)
