"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, experiment, *args, **kwargs):
    """Run ``experiment`` once under the benchmark clock and return it.

    The experiments are multi-second whole-machine simulations; pedantic
    single-round mode records their wall time without re-running them.
    """
    return benchmark.pedantic(experiment, args=args, kwargs=kwargs, iterations=1, rounds=1)


def publish(results_dir, name: str, text: str) -> None:
    """Print a rendered figure and archive it under results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(text + "\n")
