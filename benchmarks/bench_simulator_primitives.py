"""Microbenchmarks of the simulator's hot paths.

These are true pytest-benchmark microbenchmarks (many rounds): they track
the throughput of the primitives every experiment is built on, so
performance regressions in the substrate are caught alongside the figure
reproductions.

Run standalone (``PYTHONPATH=src python benchmarks/bench_simulator_primitives.py``)
to print operations-per-second figures and archive them as machine-readable
JSON under ``results/perf_baseline.json``.  ``results/perf_seed_baseline.json``
holds the same measurements captured on the pre-fast-path simulator; comparing
the two files is how the hot-path speedup is tracked.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.config import CacheGeometry, skylake_i7_6700k
from repro.mem.cache import SetAssociativeCache
from repro.sim.clock import CoreClock, InterruptModel
from repro.sim.ops import Busy, OpResult
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler
from repro.system.machine import Machine
from repro.system.workload import stride_reader
from repro.units import MIB

RESULTS_PATH = Path(__file__).resolve().parent.parent / "results" / "perf_baseline.json"


def _bench_cache_ops_per_second(batches: int = 20, rounds: int = 3) -> float:
    """Best-of-``rounds`` (minimizes OS scheduling noise on shared boxes)."""
    addresses = [int(a) * 64 for a in np.random.default_rng(0).integers(0, 4096, 4096)]
    best = 0.0
    for _ in range(rounds):
        cache = SetAssociativeCache(CacheGeometry(64 * 1024, 8, 64, policy="rrip"))
        start = time.perf_counter()
        for _ in range(batches):
            for addr in addresses:
                cache.access(addr)
        elapsed = time.perf_counter() - start
        best = max(best, cache.stats.accesses / elapsed)
    return best


def _bench_mee_walk_ops_per_second(batches: int = 20, rounds: int = 3) -> float:
    best = 0.0
    for _ in range(rounds):
        machine = Machine(skylake_i7_6700k(seed=0))
        base = machine.physical.protected_base
        addresses = [
            base + int(p) * 4096 for p in np.random.default_rng(0).integers(0, 8192, 512)
        ]
        mee = machine.mee
        start = time.perf_counter()
        for _ in range(batches):
            for paddr in addresses:
                mee.access(paddr)
        elapsed = time.perf_counter() - start
        best = max(best, mee.stats.accesses / elapsed)
    return best


class _NullExecutor:
    """Fixed-latency executor: isolates pure scheduler overhead."""

    def execute(self, process, operation):
        return OpResult(latency=1.0)


def _busy_body(count: int):
    op = Busy(1)
    for _ in range(count):
        yield op


def _bench_scheduler_ops_per_second(count: int = 200_000, rounds: int = 3) -> float:
    """Raw scheduler throughput: one process draining Busy ops.

    Uses the scheduler's own wall-clock accounting; best-of-``rounds`` to
    shrug off scheduling noise on shared machines.
    """
    best = 0.0
    for _ in range(rounds):
        scheduler = Scheduler(_NullExecutor(), max_ops=count + 10)
        clock = CoreClock(
            0,
            interrupts=InterruptModel(rate_per_cycle=0.0),
            rng=np.random.default_rng(0),
        )
        scheduler.add(SimProcess("bench", _busy_body(count), clock))
        scheduler.run()
        best = max(best, scheduler.ops_per_second)
    return best


def _bench_machine_ops_per_second(rounds: int = 3) -> list:
    """Simulator ops/sec as accounted by the scheduler itself."""
    rates = []
    for _ in range(rounds):
        machine = _stride_machine()
        machine.run()
        rates.append(machine.scheduler.ops_per_second)
    return rates


def _stride_machine() -> Machine:
    machine = Machine(skylake_i7_6700k(seed=0))
    space = machine.new_address_space("bench")
    enclave = machine.create_enclave("bench-e", space)
    region = enclave.alloc(1 * MIB)
    machine.spawn(
        "reader",
        stride_reader(region, 512, 400),
        core=0,
        space=space,
        enclave=enclave,
    )
    return machine


def collect_baseline() -> dict:
    """Measure every primitive and return the machine-readable record."""
    return {
        "cache_access_ops_per_second": _bench_cache_ops_per_second(),
        "scheduler_busy_ops_per_second": _bench_scheduler_ops_per_second(),
        "mee_walk_ops_per_second": _bench_mee_walk_ops_per_second(),
        "machine_scheduler_ops_per_second": _bench_machine_ops_per_second(),
    }


def main() -> None:
    baseline = collect_baseline()
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    # Merge over the existing file: other writers (sweep accounting) own
    # keys this bench must not clobber.
    existing = {}
    if RESULTS_PATH.exists():
        try:
            loaded = json.loads(RESULTS_PATH.read_text())
            if isinstance(loaded, dict):
                existing = loaded
        except ValueError:
            existing = {}
    existing.update(baseline)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"archived {RESULTS_PATH}")
    print(f"cache.access      : {baseline['cache_access_ops_per_second']:>12,.0f} ops/sec")
    print(f"scheduler (Busy)  : {baseline['scheduler_busy_ops_per_second']:>12,.0f} ops/sec")
    print(f"mee.access (walk) : {baseline['mee_walk_ops_per_second']:>12,.0f} ops/sec")
    rates = ", ".join(f"{rate:,.0f}" for rate in baseline["machine_scheduler_ops_per_second"])
    print(f"machine stride run: {rates} ops/sec")


def test_bench_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(CacheGeometry(64 * 1024, 8, 64, policy="rrip"))
    addresses = [int(a) * 64 for a in np.random.default_rng(0).integers(0, 4096, 4096)]

    def run():
        for addr in addresses:
            cache.access(addr)

    benchmark(run)
    assert cache.stats.accesses > 0


def test_bench_mee_walk_throughput(benchmark):
    machine = Machine(skylake_i7_6700k(seed=0))
    base = machine.physical.protected_base
    addresses = [base + int(p) * 4096 for p in np.random.default_rng(0).integers(0, 8192, 512)]

    def run():
        for paddr in addresses:
            machine.mee.access(paddr)

    benchmark(run)
    assert machine.mee.stats.accesses > 0


def test_bench_scheduler_busy_throughput(benchmark):
    def run():
        scheduler = Scheduler(_NullExecutor(), max_ops=20_010)
        clock = CoreClock(
            0,
            interrupts=InterruptModel(rate_per_cycle=0.0),
            rng=np.random.default_rng(0),
        )
        scheduler.add(SimProcess("bench", _busy_body(20_000), clock))
        scheduler.run()
        return scheduler

    scheduler = benchmark.pedantic(run, iterations=1, rounds=3)
    assert scheduler.total_ops == 20_000
    benchmark.extra_info["scheduler_ops_per_second"] = scheduler.ops_per_second


def test_bench_full_machine_stride_run(benchmark):
    def run():
        machine = _stride_machine()
        machine.run()
        return machine

    machine = benchmark.pedantic(run, iterations=1, rounds=3)
    assert machine.mee.stats.accesses >= 400
    benchmark.extra_info["scheduler_ops_per_second"] = machine.scheduler.ops_per_second


if __name__ == "__main__":
    main()
