"""Microbenchmarks of the simulator's hot paths.

These are true pytest-benchmark microbenchmarks (many rounds): they track
the throughput of the primitives every experiment is built on, so
performance regressions in the substrate are caught alongside the figure
reproductions.
"""

import numpy as np

from repro.config import CacheGeometry, skylake_i7_6700k
from repro.mem.cache import SetAssociativeCache
from repro.system.machine import Machine
from repro.system.workload import stride_reader
from repro.units import MIB


def test_bench_cache_access_throughput(benchmark):
    cache = SetAssociativeCache(CacheGeometry(64 * 1024, 8, 64, policy="rrip"))
    addresses = [int(a) * 64 for a in np.random.default_rng(0).integers(0, 4096, 4096)]

    def run():
        for addr in addresses:
            cache.access(addr)

    benchmark(run)
    assert cache.stats.accesses > 0


def test_bench_mee_walk_throughput(benchmark):
    machine = Machine(skylake_i7_6700k(seed=0))
    base = machine.physical.protected_base
    addresses = [base + int(p) * 4096 for p in np.random.default_rng(0).integers(0, 8192, 512)]

    def run():
        for paddr in addresses:
            machine.mee.access(paddr)

    benchmark(run)
    assert machine.mee.stats.accesses > 0


def test_bench_full_machine_stride_run(benchmark):
    def run():
        machine = Machine(skylake_i7_6700k(seed=0))
        space = machine.new_address_space("bench")
        enclave = machine.create_enclave("bench-e", space)
        region = enclave.alloc(1 * MIB)
        machine.spawn(
            "reader",
            stride_reader(region, 512, 400),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        return machine

    machine = benchmark.pedantic(run, iterations=1, rounds=3)
    assert machine.mee.stats.accesses >= 400
