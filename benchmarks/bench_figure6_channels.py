"""Regenerates Figure 6: Prime+Probe fails where this work's channel works."""

from repro.experiments import figure6

from _harness import publish, run_once


def test_figure6_prime_probe_vs_this_work(benchmark, results_dir):
    result = run_once(benchmark, figure6.run, seed=1, bits=64, pp_bits=80)
    publish(results_dir, "figure6_channels", figure6.render(result))

    # (a) the full-set probe costs >3500 cycles and cannot carry the bits.
    assert min(result.prime_probe.probe_times) > 3000
    assert result.prime_probe_failed
    # (b) this work's single-address probe separates ~480 vs ~750.
    assert result.this_work_succeeded
    assert max(result.this_work.probe_times) < 2500
    # The asymmetry the paper's Section 5.3 builds on: an 8-way probe vs a
    # single-way probe differ by ~8x in cost.
    import numpy as np

    assert np.median(result.prime_probe.probe_times) > 4 * np.median(
        result.this_work.probe_times
    )
