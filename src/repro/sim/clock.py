"""Per-core clocks with frequency skew and OS-interrupt stretching.

Real covert channels lose synchronization because the trojan's and spy's
busy loops do not advance in lock-step: core frequencies differ by a few
ppm and OS timer interrupts occasionally steal thousands of cycles.  Both
effects are modeled here; they are the mechanistic source of the residual
bit errors the paper reports even in the no-noise case (Figure 8a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterruptModel", "CoreClock"]


@dataclass(frozen=True)
class InterruptModel:
    """Poisson OS interrupts that stretch a core's busy time.

    Attributes:
        rate_per_cycle: expected interrupts per core cycle (e.g. one timer
            tick per ~3M cycles on an idle, pinned core).
        duration_cycles: mean cycles consumed per interrupt.
    """

    rate_per_cycle: float = 1.0 / 3.0e6
    duration_cycles: float = 8000.0

    def stretch(self, cycles: float, rng: np.random.Generator) -> float:
        """Return extra cycles consumed by interrupts during ``cycles``."""
        if self.rate_per_cycle <= 0.0 or cycles <= 0.0:
            return 0.0
        count = rng.poisson(self.rate_per_cycle * cycles)
        if count == 0:
            return 0.0
        return float(np.sum(rng.exponential(self.duration_cycles, size=count)))


class CoreClock:
    """Tracks one core's position on the global (reference) timeline.

    The core's oscillator runs at ``1 + skew`` times the reference rate, so
    ``advance(c)`` — the core believing it spent ``c`` of its own cycles —
    moves the core by ``c / (1 + skew)`` reference cycles plus any
    interrupt stretching.
    """

    def __init__(
        self,
        core_id: int,
        skew: float = 0.0,
        interrupts: InterruptModel = InterruptModel(),
        rng: np.random.Generator = None,
    ):
        self.core_id = core_id
        self.skew = float(skew)
        self.interrupts = interrupts
        # Interrupt-free clocks (rate 0, the common unit-test/bench setup)
        # skip the stretch() call on every advance.
        self._can_interrupt = interrupts.rate_per_cycle > 0.0
        self._rng = rng if rng is not None else np.random.default_rng(core_id)
        #: DVFS multiplier on the oscillator rate (1.0 = nominal); set via
        #: :meth:`set_rate_scale` so the cached divisor stays consistent
        self.rate_scale = 1.0
        self._rate = 1.0 + self.skew
        #: current position on the reference timeline, in reference cycles
        self.now = 0.0
        #: total interrupt cycles suffered so far (diagnostics)
        self.interrupt_cycles = 0.0

    def set_rate_scale(self, scale: float) -> None:
        """Re-clock the core (DVFS): the oscillator now runs at ``scale``
        times its nominal rate, so local cycles stretch or shrink on the
        reference timeline.  ``scale`` must be positive; 1.0 restores
        nominal frequency."""
        if scale <= 0.0:
            raise ValueError(f"rate scale must be positive, got {scale}")
        self.rate_scale = float(scale)
        self._rate = (1.0 + self.skew) * self.rate_scale

    def advance(self, core_cycles: float, interruptible: bool = True) -> float:
        """Advance by ``core_cycles`` local cycles; return elapsed reference cycles.

        Args:
            core_cycles: cycles as counted by the core itself.
            interruptible: whether OS interrupts may stretch this interval
                (short atomic operations are modeled as uninterruptible).
        """
        elapsed = core_cycles / self._rate
        if interruptible and self._can_interrupt:
            extra = self.interrupts.stretch(core_cycles, self._rng)
            if extra:
                self.interrupt_cycles += extra
                elapsed += extra
        self.now += elapsed
        return elapsed

    def tsc(self) -> int:
        """Invariant TSC: all cores read the same reference counter."""
        return int(self.now)

    def export_state(self) -> dict:
        """JSON-safe snapshot of the clock's mutable position.

        ``core_id`` and ``skew`` are construction-time constants and are
        included only so a restore into the wrong clock can be detected.
        """
        return {
            "core_id": self.core_id,
            "skew": self.skew,
            "now": self.now,
            "rate_scale": self.rate_scale,
            "interrupt_cycles": self.interrupt_cycles,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`.

        Raises:
            ValueError: when the snapshot belongs to a different clock
                (core id or skew mismatch).
        """
        if int(state["core_id"]) != self.core_id or float(state["skew"]) != self.skew:
            raise ValueError(
                f"clock snapshot for core {state['core_id']} (skew "
                f"{state['skew']!r}) restored into core {self.core_id} "
                f"(skew {self.skew!r})"
            )
        self.set_rate_scale(float(state["rate_scale"]))
        self.now = float(state["now"])
        self.interrupt_cycles = float(state["interrupt_cycles"])
