"""Earliest-timestamp-first interleaving of simulated processes.

The scheduler repeatedly picks the process whose core clock is furthest
behind on the reference timeline, executes its next operation through an
:class:`OperationExecutor` (the machine model), advances that core's clock
by the operation's latency, and feeds the result back into the generator.
Shared hardware (caches, the MEE, DRAM) therefore observes operations in
global-time order, which is exactly the property a cross-core covert
channel depends on.

When only one runnable process remains (the common tail of every trial:
the spy draining its probe loop after the trojan finishes) the heap
degenerates to push-pop-push of a single entry; :meth:`Scheduler.run`
detects that case and steps the lone process in a tight loop instead.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import List, Optional, Protocol

from ..errors import EnclaveError, SimulationError
from .ops import Busy, Label, Operation, OpResult
from .process import ProcessState, SimProcess

__all__ = ["OperationExecutor", "Scheduler"]


class OperationExecutor(Protocol):
    """The machine-side contract: turn an operation into (latency, value)."""

    def execute(self, process: SimProcess, operation: Operation) -> OpResult:
        """Execute ``operation`` on behalf of ``process``."""
        ...


class Scheduler:
    """Run a set of :class:`SimProcess` to completion, interleaved in time."""

    def __init__(self, executor: OperationExecutor, max_ops: int = 50_000_000):
        self._executor = executor
        self._max_ops = max_ops
        self._counter = itertools.count()
        self._heap: List = []
        self._processes: List[SimProcess] = []
        #: operations executed across all ``run()`` calls
        self.total_ops = 0
        #: wall-clock seconds spent inside ``run()`` (perf accounting)
        self.wall_seconds = 0.0

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever added to this scheduler."""
        return list(self._processes)

    @property
    def ops_per_second(self) -> float:
        """Simulated operations per wall-clock second (0.0 before any run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_ops / self.wall_seconds

    def add(self, process: SimProcess) -> None:
        """Register a process; it starts at its clock's current time."""
        self._processes.append(process)
        heapq.heappush(self._heap, (process.clock.now, next(self._counter), process))

    def pending_entries(self) -> List[tuple]:
        """``(queued_time, process)`` for every heap entry (checkers, tests).

        Entries for already-finished processes may linger until popped;
        callers must tolerate them, exactly like :meth:`_run` does.
        """
        return [(entry[0], entry[2]) for entry in self._heap]

    def run(self, until: Optional[float] = None) -> None:
        """Run until every process finishes (or global time passes ``until``).

        Processes still pending when ``until`` is hit stay queued; a later
        ``run()`` call resumes them.

        Raises:
            SimulationError: when the operation budget is exhausted, which
                almost always means a process is spinning without advancing
                simulated time.
        """
        started = time.perf_counter()
        try:
            self._run(until)
        finally:
            self.wall_seconds += time.perf_counter() - started

    def _run(self, until: Optional[float]) -> None:
        heap = self._heap
        done = (ProcessState.FINISHED, ProcessState.FAILED, ProcessState.CANCELLED)
        while heap:
            if len(heap) == 1 and until is None:
                # Single-runnable fast path: no other core can interleave,
                # so take the process off the heap and step it in a tight
                # loop with no pop/push churn.  A stepped body may spawn
                # new processes (heap grows from empty) — the loop notices,
                # re-queues this process at its current time and rejoins
                # the general path.
                _, _, process = heap.pop()
                if process.state in done:
                    continue
                self._run_single(process, heap)
                continue
            now, _, process = heapq.heappop(heap)
            if until is not None and now > until:
                heapq.heappush(heap, (now, next(self._counter), process))
                return
            if process.state in done:
                continue
            self._step(process)
            if process.state not in done:
                heapq.heappush(
                    heap, (process.clock.now, next(self._counter), process)
                )

    def _run_single(self, process: SimProcess, heap: List) -> None:
        """Tight loop for a lone runnable process.

        This is :meth:`_step` inlined with everything hoisted to locals —
        one operation costs a generator send, an executor call and a clock
        advance, with no heap traffic and no per-op attribute churn.  The
        semantics must stay exactly those of ``_step``; the scheduler unit
        tests exercise both paths against each other.
        """
        executor_execute = self._executor.execute
        max_ops = self._max_ops
        total_ops = self.total_ops
        step = process.step
        clock_advance = process.clock.advance
        try:
            while True:
                operation = process.pending_op
                if operation is None:
                    # First scheduling of this process: prime the generator.
                    operation = step(None)
                    if operation is None:
                        return
                else:
                    process.pending_op = None
                total_ops += 1
                if total_ops > max_ops:
                    raise SimulationError(
                        f"operation budget ({max_ops}) exhausted; "
                        f"last process was {process!r}"
                    )
                try:
                    result = executor_execute(process, operation)
                except EnclaveError as exc:
                    process.pending_op = next_op = process.throw(exc)
                else:
                    op_class = operation.__class__
                    if op_class is not Label:
                        clock_advance(result.latency, op_class is Busy)
                    process.pending_op = next_op = step(result)
                # step()/throw() return None exactly when the process
                # finished, so the lookahead op doubles as the liveness
                # check — no state attribute reads on the hot loop.
                if next_op is None:
                    return
                if heap:
                    heapq.heappush(
                        heap, (process.clock.now, next(self._counter), process)
                    )
                    return
        finally:
            self.total_ops = total_ops

    def _step(self, process: SimProcess) -> None:
        """Execute exactly one operation of ``process``."""
        operation = process.pending_op
        if operation is None:
            # First scheduling of this process: prime the generator.
            operation = process.step(None)
            if operation is None:
                return
        else:
            process.pending_op = None
        self.total_ops += 1
        if self.total_ops > self._max_ops:
            raise SimulationError(
                f"operation budget ({self._max_ops}) exhausted; "
                f"last process was {process!r}"
            )
        try:
            result = self._executor.execute(process, operation)
        except EnclaveError as exc:
            # Deliver the fault into the generator, like hardware delivering
            # #UD/#GP to the faulting thread.  Uncaught, it propagates and
            # marks the process FAILED.
            process.pending_op = process.throw(exc)
            return
        if not isinstance(operation, Label):
            process.clock.advance(result.latency, interruptible=isinstance(operation, Busy))
        process.pending_op = process.step(result)
