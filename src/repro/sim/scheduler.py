"""Earliest-timestamp-first interleaving of simulated processes.

The scheduler repeatedly picks the process whose core clock is furthest
behind on the reference timeline, executes its next operation through an
:class:`OperationExecutor` (the machine model), advances that core's clock
by the operation's latency, and feeds the result back into the generator.
Shared hardware (caches, the MEE, DRAM) therefore observes operations in
global-time order, which is exactly the property a cross-core covert
channel depends on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Protocol

from ..errors import EnclaveError, SimulationError
from .ops import Busy, Label, Operation, OpResult
from .process import ProcessState, SimProcess

__all__ = ["OperationExecutor", "Scheduler"]


class OperationExecutor(Protocol):
    """The machine-side contract: turn an operation into (latency, value)."""

    def execute(self, process: SimProcess, operation: Operation) -> OpResult:
        """Execute ``operation`` on behalf of ``process``."""
        ...


class Scheduler:
    """Run a set of :class:`SimProcess` to completion, interleaved in time."""

    def __init__(self, executor: OperationExecutor, max_ops: int = 50_000_000):
        self._executor = executor
        self._max_ops = max_ops
        self._counter = itertools.count()
        self._heap: List = []
        self._processes: List[SimProcess] = []
        # One-slot lookahead: after resuming a generator we already hold its
        # next operation; it is stashed here until the heap schedules the
        # process again, so cores are interleaved in true global-time order.
        self._pending: Dict[int, Operation] = {}
        self.total_ops = 0

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever added to this scheduler."""
        return list(self._processes)

    def add(self, process: SimProcess) -> None:
        """Register a process; it starts at its clock's current time."""
        self._processes.append(process)
        heapq.heappush(self._heap, (process.clock.now, next(self._counter), process))

    def run(self, until: Optional[float] = None) -> None:
        """Run until every process finishes (or global time passes ``until``).

        Processes still pending when ``until`` is hit stay queued; a later
        ``run()`` call resumes them.

        Raises:
            SimulationError: when the operation budget is exhausted, which
                almost always means a process is spinning without advancing
                simulated time.
        """
        while self._heap:
            now, _, process = heapq.heappop(self._heap)
            if until is not None and now > until:
                heapq.heappush(self._heap, (now, next(self._counter), process))
                return
            if process.state in (ProcessState.FINISHED, ProcessState.FAILED):
                continue
            self._step(process)
            if process.state not in (ProcessState.FINISHED, ProcessState.FAILED):
                heapq.heappush(
                    self._heap, (process.clock.now, next(self._counter), process)
                )

    def _step(self, process: SimProcess) -> None:
        """Execute exactly one operation of ``process``."""
        operation = self._pending.pop(id(process), None)
        if operation is None:
            # First scheduling of this process: prime the generator.
            operation = process.step(None)
            if operation is None:
                return
        self.total_ops += 1
        if self.total_ops > self._max_ops:
            raise SimulationError(
                f"operation budget ({self._max_ops}) exhausted; "
                f"last process was {process!r}"
            )
        try:
            result = self._executor.execute(process, operation)
        except EnclaveError as exc:
            # Deliver the fault into the generator, like hardware delivering
            # #UD/#GP to the faulting thread.  Uncaught, it propagates and
            # marks the process FAILED.
            follow_up = process.throw(exc)
            if follow_up is not None:
                self._pending[id(process)] = follow_up
            return
        if not isinstance(operation, Label):
            interruptible = isinstance(operation, Busy)
            process.clock.advance(result.latency, interruptible=interruptible)
        follow_up = process.step(result)
        if follow_up is not None:
            self._pending[id(process)] = follow_up
