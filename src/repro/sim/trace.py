"""Lightweight event tracing for debugging and figure generation.

Tracing is off by default (zero overhead beyond one ``if``); experiments
that need per-access records — e.g. the probe-time series of Figure 6 —
enable it around the interesting region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    process: str
    kind: str
    detail: object = None

    def __repr__(self) -> str:
        return f"[{self.time:12.1f}] {self.process:>12s} {self.kind} {self.detail!r}"


class TraceRecorder:
    """Collects :class:`TraceEvent` objects when enabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: optional predicate limiting which events are kept
        self.filter: Optional[Callable[[TraceEvent], bool]] = None

    def record(self, time: float, process: str, kind: str, detail: object = None) -> None:
        """Record one event if tracing is enabled (and the filter accepts)."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, process=process, kind=kind, detail=detail)
        if self.filter is not None and not self.filter(event):
            return
        self.events.append(event)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)
