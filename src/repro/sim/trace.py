"""Lightweight event tracing for debugging and figure generation.

Tracing is off by default.  Callers on the hot path are expected to hoist
the ``enabled`` check — building a :class:`TraceEvent` (or the payload
passed as ``detail``) costs an allocation per event, so the machine model
skips both the construction *and* the :meth:`TraceRecorder.record` call
entirely while tracing is disabled.  Experiments that need per-access
records — e.g. the probe-time series of Figure 6 — enable it around the
interesting region, most conveniently via :meth:`TraceRecorder.section`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    process: str
    kind: str
    detail: object = None

    def __repr__(self) -> str:
        return f"[{self.time:12.1f}] {self.process:>12s} {self.kind} {self.detail!r}"


class TraceRecorder:
    """Collects :class:`TraceEvent` objects when enabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: optional predicate limiting which events are kept
        self.filter: Optional[Callable[[TraceEvent], bool]] = None

    def record(self, time: float, process: str, kind: str, detail: object = None) -> None:
        """Record one event if tracing is enabled (and the filter accepts)."""
        if not self.enabled:
            return
        event = TraceEvent(time=time, process=process, kind=kind, detail=detail)
        if self.filter is not None and not self.filter(event):
            return
        self.events.append(event)

    @contextlib.contextmanager
    def section(
        self,
        filter: Optional[Callable[[TraceEvent], bool]] = None,
        clear: bool = False,
    ) -> Iterator["TraceRecorder"]:
        """Enable tracing for the duration of a ``with`` block.

        The recorder's previous ``enabled``/``filter`` state is restored on
        exit (including on exceptions), so experiments can scope tracing to
        the interesting region without manual flag flips.

        Args:
            filter: optional event predicate installed for the section.
            clear: drop previously recorded events on entry.
        """
        saved_enabled = self.enabled
        saved_filter = self.filter
        if clear:
            self.events.clear()
        self.enabled = True
        if filter is not None:
            self.filter = filter
        try:
            yield self
        finally:
            self.enabled = saved_enabled
            self.filter = saved_filter

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)
