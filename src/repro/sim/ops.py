"""Operations a simulated process can yield to the scheduler.

These mirror the x86 primitives the paper's attack code uses: loads
(``Access``), ``clflush`` (``Flush``), ``mfence`` (``Fence``), busy-wait
loops (``Busy``), ``rdtsc`` (``Rdtsc`` — faulting inside an enclave, paper
Section 3 challenge 4) and the hyperthread counter-thread timer read
(``ReadTimer``, paper Figure 2(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Access",
    "WriteOp",
    "Flush",
    "Fence",
    "Busy",
    "Rdtsc",
    "ReadTimer",
    "Label",
    "Operation",
    "OpResult",
]


@dataclass(frozen=True, slots=True)
class Access:
    """Load ``size`` bytes at virtual address ``vaddr``.

    The result's ``latency`` is the measured access time in cycles and its
    ``value`` carries the :class:`~repro.system.machine.AccessOutcome`
    describing where the access hit — populated only while the machine's
    trace recorder is enabled (tracing/diagnostics only; attack code must
    infer behaviour from latency, like real attack code does).
    """

    vaddr: int
    size: int = 8


@dataclass(frozen=True, slots=True)
class WriteOp:
    """Store ``size`` bytes at virtual address ``vaddr``."""

    vaddr: int
    size: int = 8


@dataclass(frozen=True, slots=True)
class Flush:
    """``clflush`` the line containing ``vaddr`` from L1/L2/LLC.

    Crucially this does *not* flush integrity-tree nodes from the MEE cache
    (paper Section 3, challenge 1) — that asymmetry is what the attack
    exploits.
    """

    vaddr: int


@dataclass(frozen=True, slots=True)
class Fence:
    """``mfence`` — order preceding memory operations."""


@dataclass(frozen=True, slots=True)
class Busy:
    """Spin for ``cycles`` core cycles (subject to interrupt stretching)."""

    cycles: int


@dataclass(frozen=True, slots=True)
class Rdtsc:
    """Read the time-stamp counter.

    Raises :class:`~repro.errors.InstructionNotAvailableError` when executed
    by a process running in enclave mode, exactly as SGX1 hardware would
    fault.  The result ``value`` is the TSC in reference cycles.

    ``via_ocall=True`` marks the read as happening after an OCALL exited
    the enclave (paper Figure 2(b)); the instruction is then legal even for
    enclave processes — the OCALL transition cost is modeled separately by
    :class:`repro.sgx.ocall.OCallModel`.
    """

    via_ocall: bool = False


@dataclass(frozen=True, slots=True)
class ReadTimer:
    """Read the shared counter maintained by a non-enclave helper thread.

    Costs ~50 cycles and returns a slightly stale TSC value (paper
    Figure 2(c)); available in both enclave and normal mode.
    """


@dataclass(frozen=True, slots=True)
class Label:
    """Zero-cost trace annotation (e.g. window boundaries)."""

    text: str
    payload: Optional[object] = None


Operation = Union[Access, WriteOp, Flush, Fence, Busy, Rdtsc, ReadTimer, Label]


@dataclass(slots=True)
class OpResult:
    """What the scheduler sends back into the generator after an operation.

    One of these is allocated per simulated operation, so it is a plain
    (mutable) slots dataclass — the cheapest object construction the
    dataclass machinery offers.

    Attributes:
        latency: cycles the operation took on the issuing core.
        value: operation-specific payload (TSC value for timer reads,
            an outcome record for traced accesses, ``None`` otherwise).
    """

    latency: float
    value: object = None
