"""Simulated processes: generators wrapped with scheduling state."""

from __future__ import annotations

import enum
from typing import Generator, Optional

from ..errors import ProcessError
from .clock import CoreClock
from .ops import Operation, OpResult

__all__ = ["ProcessState", "SimProcess"]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    CANCELLED = "cancelled"


class SimProcess:
    """One simulated thread of execution pinned to a core.

    The body is a generator that yields :class:`~repro.sim.ops.Operation`
    objects and receives :class:`~repro.sim.ops.OpResult` objects back.
    The generator's ``return`` value (``StopIteration.value``) is stored in
    :attr:`result` when the process finishes.
    """

    __slots__ = (
        "name",
        "body",
        "clock",
        "enclave",
        "address_space",
        "state",
        "result",
        "failure",
        "op_count",
        "pending_op",
    )

    def __init__(
        self,
        name: str,
        body: Generator[Operation, OpResult, object],
        clock: CoreClock,
        enclave: Optional[object] = None,
        address_space: Optional[object] = None,
    ):
        if not hasattr(body, "send"):
            raise ProcessError(
                f"process body for {name!r} must be a generator, got {type(body)!r}"
            )
        self.name = name
        self.body = body
        self.clock = clock
        #: the enclave this process runs inside, or None for normal mode
        self.enclave = enclave
        #: the address space memory operations translate through
        self.address_space = address_space
        self.state = ProcessState.READY
        self.result: object = None
        self.failure: Optional[BaseException] = None
        #: number of operations executed (diagnostics)
        self.op_count = 0
        #: one-slot scheduler lookahead: the operation this process yielded
        #: but has not yet had executed.  Owned by the scheduler; keeping it
        #: here (instead of an ``id(process)``-keyed dict) ties its lifetime
        #: to the process itself.
        self.pending_op: Optional[Operation] = None

    @property
    def core_id(self) -> int:
        """The core this process is pinned to."""
        return self.clock.core_id

    @property
    def in_enclave(self) -> bool:
        """True when the process executes in enclave mode."""
        return self.enclave is not None

    @property
    def now(self) -> float:
        """Current position on the reference timeline."""
        return self.clock.now

    def step(self, sent: Optional[OpResult]) -> Optional[Operation]:
        """Resume the generator with ``sent``; return the next operation.

        Returns ``None`` when the generator finishes; its return value is
        captured in :attr:`result`.  Exceptions escaping the generator mark
        the process FAILED and re-raise.
        """
        try:
            if sent is None and self.state is ProcessState.READY:
                operation = next(self.body)
            else:
                operation = self.body.send(sent)
            self.state = ProcessState.RUNNING
            self.op_count += 1
            return operation
        except StopIteration as stop:
            self.state = ProcessState.FINISHED
            self.result = stop.value
            return None
        except BaseException as exc:
            self.state = ProcessState.FAILED
            self.failure = exc
            raise

    def throw(self, exc: BaseException) -> Optional[Operation]:
        """Raise ``exc`` inside the generator (e.g. enclave faults)."""
        try:
            operation = self.body.throw(exc)
            self.op_count += 1
            return operation
        except StopIteration as stop:
            self.state = ProcessState.FINISHED
            self.result = stop.value
            return None
        except BaseException as err:
            self.state = ProcessState.FAILED
            self.failure = err
            raise

    def cancel(self) -> bool:
        """Stop the process without running it further (kill -9 analogue).

        Closes the generator (its ``finally`` blocks run, so paired
        resources like DRAM stressor registrations are released) and marks
        the process CANCELLED; the scheduler skips it from then on.
        Already-finished processes are left untouched.

        Returns:
            True when the process was actually cancelled by this call.
        """
        if self.state in (
            ProcessState.FINISHED,
            ProcessState.FAILED,
            ProcessState.CANCELLED,
        ):
            return False
        self.body.close()
        self.state = ProcessState.CANCELLED
        self.pending_op = None
        return True

    def __repr__(self) -> str:
        return (
            f"SimProcess({self.name!r}, core={self.core_id}, "
            f"state={self.state.value}, t={self.clock.now:.0f})"
        )
