"""Discrete-event simulation kernel.

The kernel is deliberately small: simulated programs are Python generators
that ``yield`` :mod:`operation <repro.sim.ops>` objects (memory accesses,
flushes, fences, busy loops, timer reads); a :class:`~repro.sim.scheduler.
Scheduler` interleaves the generators by advancing whichever simulated core
currently has the smallest global timestamp.  The machine model
(:mod:`repro.system.machine`) supplies the :class:`~repro.sim.scheduler.
OperationExecutor` that turns each operation into a latency and a value.
"""

from .clock import CoreClock, InterruptModel
from .ops import (
    Access,
    Busy,
    Fence,
    Flush,
    Label,
    OpResult,
    Operation,
    Rdtsc,
    ReadTimer,
    WriteOp,
)
from .process import ProcessState, SimProcess
from .rng import RandomStreams
from .scheduler import OperationExecutor, Scheduler
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "Access",
    "Busy",
    "CoreClock",
    "Fence",
    "Flush",
    "InterruptModel",
    "Label",
    "OpResult",
    "Operation",
    "OperationExecutor",
    "ProcessState",
    "RandomStreams",
    "Rdtsc",
    "ReadTimer",
    "Scheduler",
    "SimProcess",
    "TraceEvent",
    "TraceRecorder",
    "WriteOp",
]
