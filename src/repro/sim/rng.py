"""Deterministic, named random-number streams.

Every stochastic component of the machine (DRAM jitter, frame allocation,
interrupt arrival, noise workloads) draws from its own named substream so
that adding randomness to one component never perturbs another — a
requirement for reproducible experiments and for meaningful A/B ablations.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent RNG streams derived from one root seed.

    Streams are created lazily by name.  The same ``(seed, name)`` pair
    always yields the same stream, and distinct names are statistically
    independent (via :class:`numpy.random.SeedSequence` spawning).
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            # Hash the name into the seed sequence deterministically.
            entropy = [self._seed] + [ord(ch) for ch in name]
            generator = np.random.default_rng(np.random.SeedSequence(entropy))
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RandomStreams":
        """Derive an independent family, e.g. one per experiment trial."""
        return RandomStreams(self._seed * 1_000_003 + salt + 1)

    def export_state(self) -> dict:
        """JSON-safe snapshot of every instantiated stream's generator state."""
        return {
            name: generator.bit_generator.state
            for name, generator in self._streams.items()
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`.

        Streams absent from the snapshot are left as-is (they will be
        lazily re-derived from the seed, exactly as at save time); streams
        named in the snapshot are created on demand and rewound.
        """
        for name, bit_state in state.items():
            self.stream(name).bit_generator.state = bit_state
