"""Figure 2: the three ways to measure time on an SGX machine.

Reproduces the paper's Section 3 (challenge 4) numbers:

* ``rdtsc`` — cheap, but *faults* in enclave mode;
* OCALL + ``rdtsc`` — works from an enclave, costs 8000–15000 cycles;
* counter thread — works from an enclave, costs ≈50 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..analysis.render import render_table
from ..analysis.stats import SummaryStats, summarize
from ..errors import InstructionNotAvailableError
from ..sgx.timing import CounterThreadTimer, DirectRdtscTimer, OCallTimer
from ..sim.ops import Busy, Rdtsc
from ..units import PAGE_SIZE
from .common import build_machine

__all__ = ["TimerCost", "Figure2Result", "run", "render"]


@dataclass(frozen=True)
class TimerCost:
    """Measured cost of one timing mechanism."""

    mechanism: str
    enclave_mode: bool
    usable: bool
    stats: SummaryStats = None


@dataclass(frozen=True)
class Figure2Result:
    """All mechanisms' costs plus the enclave-rdtsc fault check."""

    rows: tuple
    rdtsc_faulted_in_enclave: bool


def _timer_cost_body(timer, samples: int, out: List[float]) -> Generator:
    """Measure the cost of back-to-back timer reads."""
    previous = yield from timer.read()
    for _ in range(samples):
        yield Busy(200)
        current = yield from timer.read()
        out.append(float(current - previous) - 200.0)
        previous = current


def _enclave_rdtsc_body(result: List[bool]) -> Generator:
    """Try a raw rdtsc inside the enclave; record whether it faulted."""
    try:
        yield Rdtsc()
        result.append(False)
    except InstructionNotAvailableError:
        result.append(True)


def run(seed: int = 0, samples: int = 200) -> Figure2Result:
    """Measure all three mechanisms on a fresh machine."""
    machine = build_machine(seed=seed)
    space = machine.new_address_space("timer-proc")
    enclave = machine.create_enclave("timer-enclave", space)
    enclave.alloc(PAGE_SIZE)

    fault_record: List[bool] = []
    machine.spawn(
        "rdtsc-in-enclave",
        _enclave_rdtsc_body(fault_record),
        core=0,
        space=space,
        enclave=enclave,
    )
    machine.run()

    timers = machine.config.timers
    rows: List[TimerCost] = [
        TimerCost(mechanism="rdtsc (enclave)", enclave_mode=True, usable=False)
    ]

    plans = [
        ("rdtsc (native)", DirectRdtscTimer(timers.rdtsc_cycles), None),
        ("ocall (enclave)", OCallTimer(machine.ocall), enclave),
        ("counter-thread (enclave)", CounterThreadTimer(timers.counter_thread_read_cycles), enclave),
    ]
    for name, timer, enc in plans:
        costs: List[float] = []
        machine.spawn(
            f"cost-{name}",
            _timer_cost_body(timer, samples, costs),
            core=0,
            space=space,
            enclave=enc,
        )
        machine.run()
        rows.append(
            TimerCost(
                mechanism=name,
                enclave_mode=enc is not None,
                usable=True,
                stats=summarize(costs),
            )
        )

    return Figure2Result(
        rows=tuple(rows),
        rdtsc_faulted_in_enclave=bool(fault_record and fault_record[0]),
    )


def render(result: Figure2Result) -> str:
    """Text table matching the paper's Figure 2 narrative."""
    headers = ["mechanism", "enclave?", "usable?", "mean cyc", "min", "max"]
    rows = []
    for row in result.rows:
        if row.stats is None:
            rows.append([row.mechanism, row.enclave_mode, "FAULTS", "-", "-", "-"])
        else:
            rows.append(
                [
                    row.mechanism,
                    row.enclave_mode,
                    "yes",
                    f"{row.stats.mean:.0f}",
                    f"{row.stats.minimum:.0f}",
                    f"{row.stats.maximum:.0f}",
                ]
            )
    table = render_table(headers, rows)
    fault = "confirmed" if result.rdtsc_faulted_in_enclave else "NOT OBSERVED (bug?)"
    return f"{table}\nraw rdtsc fault inside enclave: {fault}"
