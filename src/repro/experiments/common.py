"""Shared experiment plumbing: machines, ready channels, noise spawning."""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import SystemConfig, skylake_i7_6700k
from ..core.channel import ChannelConfig, CovertChannel
from ..system.machine import Machine

__all__ = ["build_machine", "build_ready_channel"]


def build_machine(seed: int = 0, config: Optional[SystemConfig] = None) -> Machine:
    """A fresh simulated i7-6700K (or ``config``) with the given seed."""
    if config is None:
        config = skylake_i7_6700k(seed=seed)
    elif config.seed != seed:
        config = config.with_seed(seed)
    return Machine(config)


def build_ready_channel(
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    channel_config: Optional[ChannelConfig] = None,
) -> Tuple[Machine, CovertChannel]:
    """Machine + fully set-up covert channel (calibrated, eviction set and
    monitor discovered)."""
    machine = build_machine(seed=seed, config=config)
    channel = CovertChannel(machine, config=channel_config)
    channel.setup()
    return machine, channel
