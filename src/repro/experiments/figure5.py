"""Figure 5: latency histogram of protected-region accesses by hit level.

The paper reads the protected region at 64 B / 512 B / 4 KB / 32 KB /
256 KB strides; the latency distribution splits into classes by the
integrity-tree level that hit in the MEE cache, with versions hits lowest
(~480 cycles) and the versions hit→miss gap ≥ ~300 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.histogram import Histogram, latency_histogram
from ..analysis.render import render_histogram, render_table
from ..analysis.stats import SummaryStats, summarize
from ..system.workload import stride_reader
from ..units import KIB, MIB
from .common import build_machine

__all__ = ["Figure5Result", "run", "render", "DEFAULT_STRIDES"]

DEFAULT_STRIDES = (64, 512, 4 * KIB, 32 * KIB, 256 * KIB)


@dataclass(frozen=True)
class Figure5Result:
    """Latency samples per stride, pooled histogram, per-level statistics."""

    stride_samples: Dict[int, Tuple[float, ...]]
    histogram: Histogram
    #: per-hit-level latency stats, annotated with the simulator's
    #: ground-truth hit levels — the reproduction's stand-in for the
    #: manual peak labeling of the paper's Figure 5
    level_stats: Dict[str, SummaryStats]
    versions_hit_estimate: float
    versions_miss_estimate: float

    @property
    def hit_miss_gap(self) -> float:
        """Versions hit vs. miss separation; paper quotes >= ~300 cycles."""
        return self.versions_miss_estimate - self.versions_hit_estimate


def run(
    seed: int = 0,
    strides=DEFAULT_STRIDES,
    accesses_per_stride: int = 600,
    region_bytes: int = 8 * MIB,
) -> Figure5Result:
    """Collect the latency distribution on a fresh machine."""
    machine = build_machine(seed=seed)
    space = machine.new_address_space("fig5-proc")
    enclave = machine.create_enclave("fig5-enclave", space)

    stride_samples: Dict[int, Tuple[float, ...]] = {}
    level_samples: Dict[str, List[float]] = {}
    trace = machine.trace
    trace.enabled = True
    trace.filter = lambda event: event.kind == "access"
    for stride in strides:
        region = enclave.alloc(region_bytes)
        trace.clear()
        latencies: List[float] = []
        machine.spawn(
            f"stride-{stride}",
            stride_reader(region, stride, accesses_per_stride, latencies_out=latencies),
            core=0,
            space=space,
            enclave=enclave,
        )
        machine.run()
        stride_samples[stride] = tuple(latencies)
        mee_events = [e for e in trace.of_kind("access") if e.detail.mee is not None]
        for event, latency in zip(mee_events, latencies):
            level_samples.setdefault(event.detail.mee.hit_level_name, []).append(latency)
        space.munmap(region)
    trace.enabled = False
    trace.filter = None
    trace.clear()

    pooled = [s for samples in stride_samples.values() for s in samples]
    histogram = latency_histogram(pooled, bin_width=25.0)
    stats = {level: summarize(samples) for level, samples in level_samples.items() if samples}
    versions_hit = stats.get("versions")
    versions_miss = stats.get("level0")
    return Figure5Result(
        stride_samples=stride_samples,
        histogram=histogram,
        level_stats=stats,
        versions_hit_estimate=versions_hit.median if versions_hit else float("nan"),
        versions_miss_estimate=versions_miss.median if versions_miss else float("nan"),
    )


def render(result: Figure5Result) -> str:
    """Histogram plus per-level summary table."""
    histogram_text = render_histogram(result.histogram)
    order = ["versions", "level0", "level1", "level2", "root"]
    rows = []
    for level in order:
        stats = result.level_stats.get(level)
        if stats is None:
            continue
        rows.append(
            [level, stats.count, f"{stats.median:.0f}", f"{stats.p5:.0f}", f"{stats.p95:.0f}"]
        )
    table = render_table(["hit level", "n", "median cyc", "p5", "p95"], rows)
    return (
        f"{histogram_text}\n\n{table}\n"
        f"versions hit {result.versions_hit_estimate:.0f} vs miss "
        f"{result.versions_miss_estimate:.0f} -> gap {result.hit_miss_gap:.0f} cycles "
        f"(paper: ~480 vs ~750, gap >= ~300)"
    )
