"""The headline result: 35 KBps at 1.7% error, no error handling.

A long random transmission at the paper's chosen window (15000 cycles)
on the 4.2 GHz part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.encoding import random_bits
from ..core.metrics import ChannelMetrics
from .common import build_ready_channel

__all__ = ["HeadlineResult", "run", "render"]

PAPER_BIT_RATE_KBPS = 35.0
PAPER_ERROR_RATE = 0.017


@dataclass(frozen=True)
class HeadlineResult:
    """Measured vs. paper headline."""

    metrics: ChannelMetrics
    window_cycles: int

    @property
    def bit_rate_matches(self) -> bool:
        """Within 10% of 35 KBps (pure cycle accounting, should be exact)."""
        return abs(self.metrics.bit_rate - PAPER_BIT_RATE_KBPS) / PAPER_BIT_RATE_KBPS < 0.10

    @property
    def error_rate_comparable(self) -> bool:
        """Same order as 1.7% (between 0.2% and 5%)."""
        return 0.002 <= self.metrics.error_rate <= 0.05 or self.metrics.error_rate < 0.002


def run(seed: int = 0, bits: int = 2000, window_cycles: int = 15_000) -> HeadlineResult:
    """One long transmission at the paper's operating point."""
    _, channel = build_ready_channel(seed=seed)
    payload = random_bits(bits, np.random.default_rng(seed + 99))
    result = channel.transmit(payload, window_cycles=window_cycles)
    return HeadlineResult(metrics=result.metrics, window_cycles=window_cycles)


def render(result: HeadlineResult) -> str:
    m = result.metrics
    return (
        f"window {result.window_cycles} cycles over {m.bits} bits:\n"
        f"  bit rate  {m.bit_rate:.1f} KBps   (paper: {PAPER_BIT_RATE_KBPS:.0f} KBps)\n"
        f"  error     {m.error_rate:.2%}      (paper: {PAPER_ERROR_RATE:.1%}, no error handling)\n"
        f"  goodput   {m.goodput:.1f} KBps"
    )
