"""Figure 7: bit rate vs. error rate as the timing window varies.

Paper anchors: error jumps 5.2% → 34% between windows 10000 and 7500
(the trojan's '1' costs ~9000 cycles); the best trade-off is 1.7% error at
a 15000-cycle window — 35 KBps on the 4.2 GHz part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..analysis.render import render_table
from ..core.encoding import random_bits
from ..core.metrics import ChannelMetrics
from .common import build_ready_channel
from .runner import run_trials

__all__ = ["WindowPoint", "Figure7Result", "run", "render", "DEFAULT_WINDOWS"]

DEFAULT_WINDOWS = (5000, 7500, 10000, 15000, 20000, 25000, 30000)


@dataclass(frozen=True)
class WindowPoint:
    """One sweep point."""

    window_cycles: int
    metrics: ChannelMetrics


@dataclass(frozen=True)
class Figure7Result:
    """The full trade-off sweep."""

    points: Tuple[WindowPoint, ...]
    bits_per_window: int

    def best_point(self) -> WindowPoint:
        """Lowest-error point (the paper picks 15000)."""
        return min(self.points, key=lambda p: p.metrics.error_rate)

    def knee_ratio(self) -> float:
        """error(7500) / error(10000) — the paper's knee is ~6.5x."""
        by_window = {p.window_cycles: p.metrics.error_rate for p in self.points}
        small = by_window.get(7500)
        large = by_window.get(10000)
        if small is None or large is None or large == 0:
            return float("nan")
        return small / large


def _window_trial(task: Tuple[int, int, int, int]) -> WindowPoint:
    """One sweep point: fresh channel, one transmission at one window size.

    The per-window payload is batch ``index`` of the ``seed + 1000`` bit
    stream — the same bits each window received when the sweep was a
    single sequential loop — so the sweep is a pure function of
    ``(seed, windows, bits_per_window)`` no matter how trials are split
    across processes.
    """
    seed, window, index, bits_per_window = task
    rng = np.random.default_rng(seed + 1000)
    for _ in range(index):
        random_bits(bits_per_window, rng)
    bits = random_bits(bits_per_window, rng)
    _, channel = build_ready_channel(seed=seed)
    result = channel.transmit(bits, window_cycles=window)
    return WindowPoint(window_cycles=window, metrics=result.metrics)


def run(
    seed: int = 0,
    windows=DEFAULT_WINDOWS,
    bits_per_window: int = 600,
    jobs: Optional[int] = None,
    cache=None,
) -> Figure7Result:
    """Sweep the timing window, one independent trial per window size."""
    tasks = [
        (seed, window, index, bits_per_window) for index, window in enumerate(windows)
    ]
    points = run_trials(_window_trial, tasks, jobs=jobs, cache=cache, label="figure7")
    return Figure7Result(points=tuple(points), bits_per_window=bits_per_window)


def render(result: Figure7Result) -> str:
    """The paper's two series as one table."""
    rows = []
    for point in result.points:
        m = point.metrics
        rows.append(
            [
                point.window_cycles,
                f"{m.bit_rate:.1f}",
                f"{m.error_rate:.3f}",
                m.false_ones,
                m.false_zeros,
            ]
        )
    table = render_table(
        ["window (cyc)", "bit rate (KBps)", "error rate", "false 1s", "false 0s"], rows
    )
    best = result.best_point()
    return (
        f"{table}\n"
        f"best: {best.metrics.error_rate:.1%} error at window {best.window_cycles} "
        f"({best.metrics.bit_rate:.1f} KBps; paper: 1.7% at 15000 -> 35 KBps)\n"
        f"knee error(7500)/error(10000) = {result.knee_ratio():.1f}x (paper: ~6.5x)"
    )
