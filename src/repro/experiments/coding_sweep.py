"""Coding sweep: reliability stacks × preemption storms.

The fault sweep measured how the *timing* layer degrades under hostile
scheduling; this experiment measures what the *reliability* layer buys
back.  For every coding stack and storm intensity it runs two phases on
the same channel (paired seeds, fresh storm per phase):

* **Phase A — FEC only.**  A seed-derived pseudo-random payload goes
  through ``stack.encode`` → channel → ``stack.decode`` exactly once,
  with the soft-decision confidences feeding erasure flagging.  The
  figure of merit is *residual BER*: payload-bit errors surviving the
  code, against the raw wire-bit error rate the channel inflicted.
* **Phase B — hybrid ARQ.**  The full delivery stack
  (:class:`~repro.core.selfheal.SelfHealingChannel` with the profile's
  FEC inside each frame): FEC absorbs what it can, the frame CRC
  arbitrates, and only residually corrupt frames are retransmitted.
  Figures of merit: goodput, delivery rate, and the split between
  FEC-rescued and ARQ-rescued frames.

The ``adaptive`` policy rides the code-rate ladder
(:class:`~repro.core.adaptive.AdaptiveCodeRateController`) instead of
pinning one profile, so it only appears in phase B.

Results aggregate into :class:`~repro.analysis.robustness.CodingFrontierPoint`
rows — the coding-gain frontier — and archive to
``results/coding_sweep.json``.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.robustness import (
    CodingFrontierPoint,
    aggregate_coding_point,
    render_coding_frontier,
)
from ..coding.stack import CodingStack, profile_by_name
from ..core.protocol import SEQ_MODULUS
from ..core.selfheal import SelfHealingChannel, SelfHealingConfig
from ..faults.plan import preemption_storm
from . import accounting
from .common import build_ready_channel
from .runner import TrialFailure, derive_seeds, run_trials

__all__ = [
    "CodingSweepResult",
    "run",
    "render",
    "main",
    "DEFAULT_STACKS",
    "DEFAULT_INTENSITIES",
]

#: every rung of the adaptive ladder pinned fixed, plus the policy that
#: walks it — so the adaptive-vs-fixed comparison is over exactly the
#: stacks the policy can choose between
DEFAULT_STACKS: Tuple[str, ...] = (
    "raw",
    "secded84",
    "rs_interleaved",
    "rs_heavy",
    "adaptive",
)
#: quiet control, mild/moderate/heavy storms (preemptions per Mcycle);
#: 1.0 is the single-shot FEC operating point — corruption inside the
#: codes' correction budgets — while 3.0 and 8.0 push phase A past any
#: fixed budget and hand recovery to the ARQ layer
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 1.0, 3.0, 8.0)
#: the paper's quiet-machine operating point, pinned for comparability
FIXED_WINDOW_CYCLES = 15_000
#: phase-A payload bits (30 RS symbols; divisible by every stack geometry)
FEC_PROBE_BITS = 240
#: storm coverage per phase — spans the slowest stack's worst case
STORM_CYCLES = 400_000_000.0
#: long enough (32 frames) that the adaptive ladder's climb-in cost
#: amortizes against its steady state — short messages measure the climb,
#: not the policy
DEFAULT_PAYLOAD = (
    b"MEE covert channel coding sweep: layered reliability stacks "
    b"(CRC framing, interleaved RS FEC, soft-decision demod, hybrid ARQ). "
    b"The spy probes one monitored set per window; the trojan sweeps an "
    b"eviction set to flip MEE cache misses into ~750-cycle reloads, and "
    b"the reliability layers buy the bits back from the storm."
)


def _inject_storm(
    machine, channel, seed: int, intensity: float, duration_cycles: float
) -> None:
    """Fresh trojan-core preemption storm starting at the current cycle.

    Each phase gets a storm bounded to its own span — a longer storm
    would bleed into the next phase and stack on top of *its* storm,
    silently doubling the intensity.
    """
    if intensity <= 0.0:
        return
    machine.inject_faults(
        preemption_storm(
            seed=seed,
            core=channel.config.trojan_core,
            start_cycle=machine.now,
            duration_cycles=duration_cycles,
            rate_per_cycle=intensity * 1e-6,
        )
    )


def _fec_phase(machine, channel, seed: int, intensity: float, stack_name: str):
    """Phase A: one uncoded-vs-coded shot, no retransmission."""
    stack = CodingStack(profile_by_name(stack_name))
    rng = random.Random(seed ^ 0xC0D1)
    payload = [rng.getrandbits(1) for _ in range(FEC_PROBE_BITS)]
    wire = stack.encode(payload)
    span = (
        channel.config.start_slack_cycles
        + (len(wire) + 40) * FIXED_WINDOW_CYCLES
    )
    _inject_storm(machine, channel, seed ^ 0xA, intensity, span)
    result = channel.transmit(
        wire, window_cycles=FIXED_WINDOW_CYCLES, deadline_slack_windows=40
    )
    raw_errors = sum(1 for s, r in zip(wire, result.received) if s != r)
    decoded = stack.decode(
        result.received, data_bits=len(payload), confidences=result.confidences
    )
    residual = sum(1 for s, r in zip(payload, decoded.bits) if s != r)
    return {
        "data_bits": len(payload),
        "wire_bits": len(wire),
        "expansion": len(wire) / len(payload),
        "raw_errors": raw_errors,
        "raw_ber": raw_errors / len(wire),
        "residual_errors": residual,
        "residual_ber": residual / len(payload),
        "fec_corrected": decoded.corrected,
        "fec_erasures": decoded.erasures_used,
        "failed_blocks": decoded.failed_blocks,
        "truncated_bits": result.truncated,
    }


def _arq_phase(machine, channel, seed: int, intensity: float, stack_name: str,
               payload: bytes):
    """Phase B: full hybrid-ARQ delivery of ``payload``."""
    if stack_name == "adaptive":
        config = SelfHealingConfig(
            fixed_window_cycles=FIXED_WINDOW_CYCLES, adaptive_coding=True
        )
    elif stack_name == "raw":
        config = SelfHealingConfig(fixed_window_cycles=FIXED_WINDOW_CYCLES)
    else:
        config = SelfHealingConfig(
            fixed_window_cycles=FIXED_WINDOW_CYCLES, coding=stack_name
        )
    _inject_storm(machine, channel, seed ^ 0xB, intensity, STORM_CYCLES)
    healer = SelfHealingChannel(channel, config)
    result = healer.send(payload)
    record = result.metrics.to_dict()
    record["intact"] = result.delivered
    record["profiles"] = [entry[0] for entry in result.coding_history]
    # Everything the ARQ layer hands up must be CRC-verified content from
    # the right frames — dropped frames may leave holes, but never
    # corruption.  (The acceptance tests assert this stays True.)
    size = healer.config.frame_payload_bytes
    chunks = [payload[i : i + size] for i in range(0, len(payload), size)]
    delivered_seqs = {a.seq for a in result.attempts if a.delivered}
    expected = b"".join(
        chunk
        for i, chunk in enumerate(chunks)
        if i % SEQ_MODULUS in delivered_seqs
    )
    record["integrity_ok"] = result.recovered == expected
    return record


def _cell_trial(
    spec: Tuple[int, float, str], payload_hex: str
) -> Dict:
    """One (seed, intensity, stack) trial: phase A then phase B.

    Module-level and bound with :func:`functools.partial` so it pickles
    into pool workers.  Both phases share one channel setup; each gets a
    fresh storm anchored at its own start cycle so the Poisson process
    covers it fully.
    """
    seed, intensity, stack_name = spec
    machine, channel = build_ready_channel(seed=seed)
    fec = (
        _fec_phase(machine, channel, seed, intensity, stack_name)
        if stack_name != "adaptive"
        else None
    )
    arq = _arq_phase(
        machine, channel, seed, intensity, stack_name, bytes.fromhex(payload_hex)
    )
    return {"seed": seed, "stack": stack_name, "intensity": intensity,
            "fec": fec, "arq": arq}


@dataclass
class CodingSweepResult:
    """Aggregated coding-gain frontier plus the raw per-trial records."""

    root_seed: int
    trials: int
    payload_bytes: int
    stacks: List[str]
    intensities: List[float]
    points: List[CodingFrontierPoint]
    #: "stack@intensity" -> per-trial records (seed order)
    per_trial: Dict[str, List[Dict]] = field(default_factory=dict)
    #: "stack@intensity" -> TrialFailure records, if any trial crashed
    failures: Dict[str, List[Dict]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "experiment": "coding_sweep",
            "root_seed": self.root_seed,
            "trials": self.trials,
            "payload_bytes": self.payload_bytes,
            "stacks": self.stacks,
            "intensities": self.intensities,
            "fec_probe_bits": FEC_PROBE_BITS,
            "fixed_window_cycles": FIXED_WINDOW_CYCLES,
            "points": [p.to_dict() for p in self.points],
            "per_trial": self.per_trial,
            "failures": self.failures,
        }


def run(
    seed: int = 0,
    trials: int = 3,
    stacks: Sequence[str] = DEFAULT_STACKS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    payload: bytes = DEFAULT_PAYLOAD,
    jobs: Optional[int] = None,
    cache=None,
) -> CodingSweepResult:
    """Run the sweep; deterministic for fixed arguments regardless of ``jobs``."""
    seeds = derive_seeds(seed, trials)
    specs = [
        (trial_seed, intensity, stack)
        for intensity in intensities
        for stack in stacks
        for trial_seed in seeds
    ]
    fn = partial(_cell_trial, payload_hex=payload.hex())
    outcomes = run_trials(
        fn, specs, jobs=jobs, on_error="record", cache=cache, label="coding_sweep"
    )

    points: List[CodingFrontierPoint] = []
    per_trial: Dict[str, List[Dict]] = {}
    failures: Dict[str, List[Dict]] = {}
    cursor = 0
    for intensity in intensities:
        for stack in stacks:
            cell = outcomes[cursor : cursor + trials]
            cursor += trials
            key = f"{stack}@{intensity:g}"
            good = [o for o in cell if not isinstance(o, TrialFailure)]
            bad = [o.to_dict() for o in cell if isinstance(o, TrialFailure)]
            per_trial[key] = good
            if bad:
                failures[key] = bad
            if good:
                points.append(aggregate_coding_point(stack, intensity, good))
    return CodingSweepResult(
        root_seed=seed,
        trials=trials,
        payload_bytes=len(payload),
        stacks=list(stacks),
        intensities=list(intensities),
        points=points,
        per_trial=per_trial,
        failures=failures,
    )


def render(result: CodingSweepResult) -> str:
    """Frontier table, coding-gain headlines, and the adaptive verdict."""
    lines = [
        "Coding sweep: reliability stacks vs trojan-core preemption storms",
        f"(seed {result.root_seed}, {result.trials} trials/cell, "
        f"{result.payload_bytes}-byte ARQ message, "
        f"{FEC_PROBE_BITS}-bit FEC probe, window {FIXED_WINDOW_CYCLES} "
        "cycles; intensity = preemptions per million cycles)",
        "",
        render_coding_frontier(result.points),
    ]
    for intensity in result.intensities:
        cell = [p for p in result.points if p.intensity == intensity]
        adaptive = next((p for p in cell if p.stack == "adaptive"), None)
        fixed = [p for p in cell if p.stack != "adaptive"]
        if adaptive is None or not fixed:
            continue
        best = max(fixed, key=lambda p: p.goodput_kbps)
        lines.append(
            f"adaptive @ intensity {intensity:g}: "
            f"{adaptive.goodput_kbps:.3f} KBps vs best fixed "
            f"({best.stack}) {best.goodput_kbps:.3f} KBps"
        )
    if result.failures:
        lines.append("")
        lines.append(f"Crashed trials in {sorted(result.failures)} (see archive).")
    return "\n".join(lines)


def main(output_path: str = "results/coding_sweep.json") -> CodingSweepResult:
    """Run the sweep with archive defaults and write the JSON artifact."""
    result = run()
    os.makedirs(os.path.dirname(output_path) or ".", exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    accounting.write_perf_baseline()
    print(render(result))
    print(f"\narchived to {output_path}")
    return result


if __name__ == "__main__":
    main()
