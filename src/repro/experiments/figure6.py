"""Figure 6: Prime+Probe fails on the MEE cache; the paper's channel works.

(a) Prime+Probe with the spy holding the eviction set: the full-set probe
costs >3500 cycles with the summed jitter of eight DRAM accesses, so the
'0101...' pattern does not decode.  (b) This work's role-reversed channel:
single-address probes separate cleanly at ~480 vs ~750 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.render import render_series
from ..core.channel import ChannelResult
from ..core.encoding import alternating_bits
from ..core.primeprobe import PrimeProbeResult, run_prime_probe_channel
from .common import build_machine, build_ready_channel
from .runner import run_trials

__all__ = ["Figure6Result", "run", "render"]


@dataclass(frozen=True)
class Figure6Result:
    """Both sub-figures' transmissions."""

    prime_probe: PrimeProbeResult
    this_work: ChannelResult

    @property
    def prime_probe_failed(self) -> bool:
        """The paper's claim: Prime+Probe cannot sustain the channel."""
        return self.prime_probe.metrics.error_rate > 0.05

    @property
    def this_work_succeeded(self) -> bool:
        """Low error (the ~1.7% channel on a short pattern: <10%)."""
        return self.this_work.metrics.error_rate < 0.10


def _figure6_trial(task: Tuple[str, int, Tuple[int, ...]]):
    """One sub-figure's transmission on its own fresh machine."""
    kind, seed, pattern = task
    if kind == "prime-probe":
        machine = build_machine(seed=seed)
        return run_prime_probe_channel(machine, list(pattern))
    _, channel = build_ready_channel(seed=seed)
    return channel.transmit(list(pattern))


def run(
    seed: int = 0,
    bits: int = 30,
    pp_bits: int = None,
    jobs: Optional[int] = None,
    cache=None,
) -> Figure6Result:
    """Send '0101...' over both channels on fresh machines.

    ``pp_bits`` lets callers give the Prime+Probe side a longer sequence
    (its failure is statistical; more bits sharpen the estimate).
    """
    pattern = alternating_bits(bits)
    pp_pattern = alternating_bits(pp_bits) if pp_bits else pattern

    prime_probe, this_work = run_trials(
        _figure6_trial,
        [
            ("prime-probe", seed, tuple(pp_pattern)),
            ("this-work", seed + 1, tuple(pattern)),
        ],
        jobs=jobs,
        cache=cache,
        label="figure6",
    )
    return Figure6Result(prime_probe=prime_probe, this_work=this_work)


def render(result: Figure6Result) -> str:
    """Probe-time series for both sub-figures."""
    lines: List[str] = []
    pp = result.prime_probe
    lines.append("(a) Prime+Probe over the MEE cache (probe = all 8 ways)")
    lines.append(f"    threshold {pp.threshold:.0f} cycles")
    lines.append(render_series(pp.probe_times, marks=_error_marks(pp.sent, pp.received)))
    lines.append(
        f"    error rate {pp.metrics.error_rate:.1%} -> "
        f"{'FAILS (paper: cannot establish communication)' if result.prime_probe_failed else 'unexpectedly works'}"
    )
    lines.append("")
    tw = result.this_work
    lines.append("(b) this work (probe = single monitor address)")
    lines.append(render_series(tw.probe_times, marks=tw.error_positions))
    lines.append(
        f"    error rate {tw.metrics.error_rate:.1%} -> "
        f"{'works' if result.this_work_succeeded else 'FAILS'}"
    )
    return "\n".join(lines)


def _error_marks(sent, received) -> List[int]:
    return [i for i, (s, r) in enumerate(zip(sent, received)) if s != r]
