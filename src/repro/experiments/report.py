"""One-shot reproduction report: every figure, rendered and archived.

Usage::

    python -m repro.experiments.report [--quick] [--seed N] [--out DIR]

``--quick`` shrinks trial counts ~4x (a few minutes instead of ~15).  Each
experiment's rendered output is printed and written to ``DIR/<name>.txt``,
plus a combined ``report.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Callable, List, Tuple

from . import ablations, algorithm1, defenses, figure2, figure4, figure5, figure6, figure7, figure8, headline

__all__ = ["build_plan", "run_report", "main"]


def build_plan(seed: int, quick: bool) -> List[Tuple[str, Callable[[], str]]]:
    """(name, runner) pairs; each runner returns rendered text."""
    scale = 4 if quick else 1

    def plan_figure2():
        return figure2.render(figure2.run(seed=seed, samples=300 // scale))

    def plan_figure4():
        return figure4.render(figure4.run(seed=seed, trials=100 // scale))

    def plan_figure5():
        return figure5.render(figure5.run(seed=seed, accesses_per_stride=600 // scale))

    def plan_algorithm1():
        return algorithm1.render(algorithm1.run(seed=seed, capacity_trials=60 // scale))

    def plan_figure6():
        return figure6.render(figure6.run(seed=seed, bits=64 // scale, pp_bits=80 // scale))

    def plan_figure7():
        return figure7.render(figure7.run(seed=seed, bits_per_window=600 // scale))

    def plan_figure8():
        return figure8.render(figure8.run(seed=seed, bit_count=128 // scale))

    def plan_headline():
        return headline.render(headline.run(seed=seed, bits=2000 // scale))

    def plan_ablation_two_phase():
        return ablations.render_two_phase(ablations.run_two_phase(seed=seed, bits=400 // scale))

    def plan_ablation_coding():
        return ablations.render_coding(ablations.run_coding(seed=seed, data_bits=400 // scale))

    def plan_defense_detection():
        return defenses.render_detection(defenses.run_detection(seed=seed, bits=200 // scale))

    def plan_defense_partitioning():
        return defenses.render_partitioning(defenses.run_partitioning(seed=seed, bits=200 // scale))

    def plan_defense_scrubbing():
        return defenses.render_scrubbing(defenses.run_scrubbing(seed=seed, bits=200 // scale))

    return [
        ("figure2_timers", plan_figure2),
        ("figure4_capacity", plan_figure4),
        ("figure5_latency", plan_figure5),
        ("algorithm1_geometry", plan_algorithm1),
        ("figure6_channels", plan_figure6),
        ("figure7_tradeoff", plan_figure7),
        ("figure8_noise", plan_figure8),
        ("headline", plan_headline),
        ("ablation_two_phase", plan_ablation_two_phase),
        ("ablation_coding", plan_ablation_coding),
        ("defense_detection", plan_defense_detection),
        ("defense_partitioning", plan_defense_partitioning),
        ("defense_scrubbing", plan_defense_scrubbing),
    ]


def run_report(seed: int = 1, quick: bool = False, out_dir: str = "results") -> pathlib.Path:
    """Run the full plan; return the path of the combined report."""
    out = pathlib.Path(out_dir)
    out.mkdir(exist_ok=True)
    sections: List[str] = [
        "# MEE covert channel — reproduction report",
        f"(seed={seed}, mode={'quick' if quick else 'full'})",
    ]
    for name, runner in build_plan(seed, quick):
        started = time.time()
        text = runner()
        elapsed = time.time() - started
        print(f"\n===== {name} ({elapsed:.1f}s) =====\n{text}")
        (out / f"{name}.txt").write_text(text + "\n")
        sections.append(f"\n## {name}\n\n```\n{text}\n```")
    report = out / "report.md"
    report.write_text("\n".join(sections) + "\n")
    print(f"\nreport written to {report}")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="~4x smaller trial counts")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="results")
    args = parser.parse_args(argv)
    run_report(seed=args.seed, quick=args.quick, out_dir=args.out)


if __name__ == "__main__":
    main()
