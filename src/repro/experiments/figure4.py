"""Figure 4: eviction probability vs. candidate-address-set size.

Paper anchor: probability rises monotonically with the candidate count and
reaches 100% at 64 addresses, giving the 64 KB capacity inference
(64 × 16 × 64 B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import render_curve
from ..core.latency import calibrate_classifier
from ..core.reverse_engineering import CapacityCurve, capacity_experiment
from ..sgx.timing import CounterThreadTimer
from .common import build_machine

__all__ = ["Figure4Result", "run", "render", "DEFAULT_SIZES"]

DEFAULT_SIZES = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Figure4Result:
    """The capacity curve plus the paper-style inference."""

    curve: CapacityCurve
    inferred_capacity_bytes: int
    saturation_size: int


def run(seed: int = 0, sizes=DEFAULT_SIZES, trials: int = 100, unit: int = 3) -> Figure4Result:
    """Run the capacity probe on a fresh machine."""
    machine = build_machine(seed=seed)
    space = machine.new_address_space("fig4-proc")
    enclave = machine.create_enclave("fig4-enclave", space)
    timer = CounterThreadTimer(machine.config.timers.counter_thread_read_cycles)
    calibration = calibrate_classifier(machine, space, enclave, timer, core=0)
    curve = capacity_experiment(
        machine,
        space,
        enclave,
        timer,
        calibration.classifier,
        sizes=sizes,
        trials=trials,
        unit=unit,
    )
    saturation = curve.saturation_size(0.95)
    return Figure4Result(
        curve=curve,
        inferred_capacity_bytes=saturation * 16 * 64,
        saturation_size=saturation,
    )


def render(result: Figure4Result) -> str:
    """Probability curve plus the capacity arithmetic."""
    curve = result.curve
    plot = render_curve(
        curve.sizes,
        curve.probabilities,
        x_label="candidate addresses",
        y_label="eviction probability",
    )
    return (
        f"{plot}\n"
        f"saturation at {result.saturation_size} addresses -> capacity "
        f"{result.saturation_size} x 16 x 64 B = {result.inferred_capacity_bytes} B "
        f"({result.inferred_capacity_bytes // 1024} KB; paper: 64 KB)"
    )
