"""Content-addressed cache of trial results for incremental sweeps.

Trials are pure functions of ``(trial function, bound configuration,
seed)`` — that is the invariant every sweep in this repo is built on, and
it makes trial results perfectly cacheable: re-running a sweep whose
inputs have not changed should cost file reads, not machine simulations,
and *growing* a sweep (two more trials appended to a 60-trial coding
sweep) should only compute the delta.

Cache key
    SHA-256 over the canonical JSON (the :mod:`repro.sanitizer.
    fingerprint` conventions: sorted keys, compact separators,
    numpy-scalar coercion) of::

        {"fn": {module, qualname, source_sha256, bound config},
         "seed": <the per-trial argument>,
         "repro_version": <package version>}

    The source hash means editing the trial function's body invalidates
    its entries; the bound config covers everything attached with
    :func:`functools.partial`; the version stamp fences off entries
    written by other releases.  A trial function whose bound arguments do
    not canonically JSON-encode is *uncacheable* and the sweep simply
    runs uncached (counted in the stats, never an error).

Storage
    One JSON envelope per entry under ``REPRO_CACHE_DIR`` (two-level
    fan-out by key prefix).  Payloads are canonical JSON when the result
    round-trips exactly, else deterministic pickle (base64); either way a
    SHA-256 checksum over the encoded payload is stored alongside, so a
    truncated, bit-rotted or hand-edited entry is detected, discarded and
    recomputed — never silently returned.  Writes are atomic (tmp file +
    rename) and a size cap (``REPRO_CACHE_MAX_BYTES``, default 256 MiB)
    evicts the oldest entries after each store.

Verification
    ``verify`` mode recomputes a deterministic sample of hits in-process
    and asserts the recomputation encodes bit-identically to the stored
    payload, raising :class:`~repro.errors.InvariantViolation` on any
    divergence — the cached-equals-computed guarantee, spot-checked for
    free alongside real sweeps.

Only trust a cache directory you (or your CI job) wrote: pickle-codec
entries execute the usual pickle machinery when loaded.
"""

from __future__ import annotations

import base64
import functools
import hashlib
import inspect
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sanitizer.fingerprint import fingerprint_state

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_MAX_BYTES",
    "TrialCache",
    "TrialCacheStats",
    "describe_trial_fn",
    "resolve_cache",
]

#: environment variable naming the cache directory (unset = caching off)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: environment variable overriding the size cap in bytes
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
#: default size cap: generous for JSON trial records, bounded for CI
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: bump on any change to the entry file layout
ENTRY_VERSION = 1

#: one instance per directory per process, so hit/miss statistics
#: accumulate across every sweep that touches the same cache
_INSTANCES: Dict[str, "TrialCache"] = {}


@dataclass
class TrialCacheStats:
    """Cumulative counters for one cache directory in this process."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    uncacheable: int = 0
    evicted: int = 0
    verified: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "uncacheable": self.uncacheable,
            "evicted": self.evicted,
            "verified": self.verified,
        }


def describe_trial_fn(fn) -> Optional[dict]:
    """The cacheable identity of a trial function, or ``None``.

    Peels :func:`functools.partial` layers (outermost first) into a bound
    configuration, hashes the underlying function's source (falling back
    to its bytecode for callables without retrievable source), and
    returns a dict that canonically JSON-encodes.  ``None`` means the
    function cannot be keyed — unhashable source *and* bytecode, or bound
    arguments that do not JSON-encode — and the sweep must run uncached.
    """
    base = fn
    bound = []
    while isinstance(base, functools.partial):
        bound.append(
            {"args": list(base.args), "kwargs": dict(base.keywords or {})}
        )
        base = base.func
    # Callable instances (e.g. a wrapper class) key on their class.
    target = base if inspect.isroutine(base) else type(base)
    try:
        source = inspect.getsource(target)
    except (OSError, TypeError):
        source = None
    if source is not None:
        source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    else:
        code = getattr(target, "__code__", None)
        if code is None:
            return None
        source_sha = hashlib.sha256(
            code.co_code + repr(code.co_consts).encode("utf-8")
        ).hexdigest()
    desc = {
        "module": getattr(target, "__module__", None),
        "qualname": getattr(target, "__qualname__", repr(target)),
        "source_sha256": source_sha,
        "bound": bound,
    }
    try:
        _canonical_json(desc)
    except (TypeError, ValueError):
        return None
    return desc


def resolve_cache(cache=None) -> Optional["TrialCache"]:
    """Map a ``cache=`` argument to a :class:`TrialCache` (or ``None``).

    * a :class:`TrialCache` — used as-is;
    * ``None`` — the default: a cache rooted at ``REPRO_CACHE_DIR`` when
      that variable is set, otherwise no caching;
    * ``True`` — like ``None`` but falls back to
      ``~/.cache/repro/trials`` when the variable is unset;
    * ``False`` — caching off regardless of the environment;
    * a path string — a cache rooted there.

    Instances are shared per-directory per-process, so statistics
    accumulate across sweeps.
    """
    if isinstance(cache, TrialCache):
        return cache
    if cache is False:
        return None
    directory = os.environ.get(CACHE_DIR_ENV)
    if isinstance(cache, (str, os.PathLike)):
        directory = os.fspath(cache)
    elif cache is True and not directory:
        directory = os.path.join(
            os.path.expanduser("~"), ".cache", "repro", "trials"
        )
    elif cache is None and not directory:
        return None
    elif cache not in (None, True):
        raise ValueError(f"unsupported cache argument: {cache!r}")
    key = os.path.abspath(directory)
    instance = _INSTANCES.get(key)
    if instance is None:
        instance = TrialCache(key)
        _INSTANCES[key] = instance
    return instance


def _jsonify(value):
    """Numpy-scalar coercion, matching the fingerprint conventions."""
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot canonically encode {type(value)!r}: {value!r}")


def _canonical_json(value) -> str:
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_jsonify
    )


def _encode_payload(value) -> Tuple[str, str]:
    """``(codec, blob)`` for one trial result.

    Canonical JSON when — and only when — decoding it reproduces the
    value exactly (a dict of numbers survives; anything with tuples,
    dataclasses or numpy arrays falls through); deterministic pickle
    otherwise.  Either representation is the byte string the checksum
    and the bit-identical verification compare against.
    """
    try:
        blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
        if json.loads(blob) == value:
            return "json", blob
    except (TypeError, ValueError):
        pass
    return (
        "pickle",
        base64.b64encode(pickle.dumps(value, protocol=4)).decode("ascii"),
    )


def _payload_checksum(codec: str, blob: str) -> str:
    return hashlib.sha256(f"{codec}:{blob}".encode("utf-8")).hexdigest()


class TrialCache:
    """Content-addressed store of trial results under one directory."""

    def __init__(self, directory: str, max_bytes: Optional[int] = None):
        self.directory = os.path.abspath(directory)
        if max_bytes is None:
            env = os.environ.get(CACHE_MAX_BYTES_ENV)
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = TrialCacheStats()

    # -- keying ------------------------------------------------------------

    def key(self, fn_desc: dict, seed) -> str:
        """The content address of one trial: function identity + seed +
        package version, hashed through the canonical-JSON fingerprint."""
        from .. import __version__

        return fingerprint_state(
            {"fn": fn_desc, "seed": seed, "repro_version": __version__}
        )

    # -- storage -----------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def load(self, key: str) -> Tuple[bool, object]:
        """``(hit, value)``; a corrupt entry counts, is deleted, and
        misses."""
        path = self._entry_path(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return False, None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError):
            return self._corrupt(path)
        if (
            not isinstance(entry, dict)
            or not entry.get("__trial_cache_entry__")
            or entry.get("version") != ENTRY_VERSION
            or entry.get("key") != key
            or entry.get("codec") not in ("json", "pickle")
            or not isinstance(entry.get("payload"), str)
        ):
            return self._corrupt(path)
        codec, blob = entry["codec"], entry["payload"]
        if entry.get("checksum") != _payload_checksum(codec, blob):
            return self._corrupt(path)
        try:
            if codec == "json":
                value = json.loads(blob)
            else:
                value = pickle.loads(base64.b64decode(blob.encode("ascii")))
        except Exception:  # noqa: BLE001 — any decode failure is corruption
            return self._corrupt(path)
        self.stats.hits += 1
        return True, value

    def _corrupt(self, path: str) -> Tuple[bool, object]:
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return False, None

    def store(self, key: str, value, fn_desc: Optional[dict] = None) -> bool:
        """Persist one result; ``False`` (uncacheable) when the value
        cannot be deterministically encoded."""
        try:
            codec, blob = _encode_payload(value)
        except Exception:  # noqa: BLE001 — unpicklable results stay uncached
            self.stats.uncacheable += 1
            return False
        entry = {
            "__trial_cache_entry__": True,
            "version": ENTRY_VERSION,
            "key": key,
            "codec": codec,
            "payload": blob,
            "checksum": _payload_checksum(codec, blob),
        }
        if fn_desc is not None:
            entry["fn"] = {
                "module": fn_desc.get("module"),
                "qualname": fn_desc.get("qualname"),
            }
        path = self._entry_path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self.stats.stores += 1
        self._enforce_cap()
        return True

    def _enforce_cap(self) -> None:
        """Evict oldest entries (by mtime) until under the size cap."""
        entries = []
        total = 0
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(root, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(entries):
            try:
                os.unlink(path)
            except OSError:
                continue
            self.stats.evicted += 1
            total -= size
            if total <= self.max_bytes:
                return

    # -- verification ------------------------------------------------------

    def selected_for_verify(self, key: str, fraction: float) -> bool:
        """Deterministic content-keyed sampling: the same entries are
        re-verified on every run, so coverage is reproducible."""
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        return (int(key[:8], 16) % 10_000) < int(fraction * 10_000)

    def verify(self, key: str, cached, recomputed) -> None:
        """Assert ``recomputed`` encodes bit-identically to ``cached``.

        Raises :class:`~repro.errors.InvariantViolation` on divergence —
        either the trial function stopped being a pure function of its
        inputs, or the cache returned something it should not have.
        """
        from ..errors import InvariantViolation

        cached_codec, cached_blob = _encode_payload(cached)
        new_codec, new_blob = _encode_payload(recomputed)
        self.stats.verified += 1
        if (cached_codec, cached_blob) != (new_codec, new_blob):
            raise InvariantViolation(
                "trial-cache",
                f"cache entry {key} is not bit-identical to recomputation "
                f"(cached {cached_codec}/{len(cached_blob)}B vs recomputed "
                f"{new_codec}/{len(new_blob)}B)",
                dump={
                    "key": key,
                    "cached_codec": cached_codec,
                    "recomputed_codec": new_codec,
                    "cached_checksum": _payload_checksum(
                        cached_codec, cached_blob
                    ),
                    "recomputed_checksum": _payload_checksum(
                        new_codec, new_blob
                    ),
                },
            )
