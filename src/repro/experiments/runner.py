"""Process-parallel trial execution for experiment sweeps.

Every figure and defense sweep boils down to "run N independent seeded
trials and collect their results".  :func:`run_trials` fans those trials
out over a ``multiprocessing`` pool while guaranteeing the exact same
results as a serial run:

* trials are pure functions of their seed (each builds its own
  :class:`~repro.system.machine.Machine`), so process isolation cannot
  change their output;
* ``Pool.map`` preserves input order, so result lists are ordered like the
  seed list regardless of completion order;
* seeds are derived deterministically (:func:`derive_seeds`) from a single
  root seed, so sweeps are reproducible end to end.

The trial function must be picklable — a module-level function, taking the
seed (plus whatever was bound with :func:`functools.partial`) — because
worker processes import it by qualified name.

Job count resolution (first match wins):

1. explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. serial execution.

``jobs <= 1`` (or a single trial) runs serially in-process, with no pool
overhead and identical results.

Long sweeps additionally need to survive individual trials going wrong:

* ``run_trials(..., on_error="record")`` converts a raising trial into a
  :class:`TrialFailure` record in its result slot instead of poisoning the
  whole sweep (the historical behavior — and still the default,
  ``on_error="raise"`` — loses every completed sibling trial when one
  worker raises);
* :func:`run_trials_robust` adds per-trial wall-clock budgets (hung
  workers are killed with the pool, recorded as timed-out failures),
  deterministic same-seed retries, and atomic JSON checkpointing so an
  interrupted sweep resumes instead of restarting.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import traceback as traceback_module
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

import numpy as np

__all__ = [
    "TrialFailure",
    "derive_seeds",
    "resolve_jobs",
    "run_trials",
    "run_trials_robust",
]

T = TypeVar("T")

#: environment variable overriding the default job count
JOBS_ENV_VAR = "REPRO_JOBS"


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent 32-bit trial seeds derived from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the same machinery
    NumPy recommends for parallel streams: child seeds are statistically
    independent of each other and of the root, and the derivation is a pure
    function of ``(root_seed, count)`` — serial and parallel sweeps see the
    same seeds in the same order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    Raises:
        ValueError: when an explicit or environment job count is not a
            positive integer.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is None:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"job count must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class TrialFailure:
    """Typed record of one trial that raised or timed out.

    Carries everything needed to replay the trial in isolation (the seed)
    and to understand what went wrong without access to the dead worker
    (exception type name, message, formatted traceback).  Instances are
    picklable and JSON-round-trippable, so they flow through pools and
    checkpoints like ordinary results.
    """

    seed: int
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    @classmethod
    def from_exception(
        cls, seed: int, exc: BaseException, attempts: int = 1
    ) -> "TrialFailure":
        """Capture a raised exception (call from inside the worker, where
        the traceback is still attached)."""
        return cls(
            seed=seed,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "__trial_failure__": True,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialFailure":
        return cls(
            seed=data["seed"],
            error_type=data["error_type"],
            message=data["message"],
            traceback=data.get("traceback", ""),
            attempts=data.get("attempts", 1),
            timed_out=data.get("timed_out", False),
        )


class _CatchingTrial:
    """Picklable wrapper turning worker exceptions into result records.

    ``Pool.map`` re-raises the first worker exception in the parent and
    discards every other trial's result; catching *inside* the worker is
    the only way to keep the rest of the sweep.
    """

    def __init__(self, fn: Callable[[int], T]):
        self.fn = fn

    def __call__(self, seed: int):
        try:
            return ("ok", self.fn(seed))
        except Exception as exc:  # noqa: BLE001 — the record carries the type
            return ("err", TrialFailure.from_exception(seed, exc))


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        # Platform without fork (e.g. Windows): spawn still works because
        # trial functions are importable module-level callables.
        return multiprocessing.get_context("spawn")


def run_trials(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    on_error: str = "raise",
) -> List[Union[T, TrialFailure]]:
    """Run ``fn(seed)`` for every seed, optionally across worker processes.

    Args:
        fn: picklable trial function (module-level; bind extra arguments
            with :func:`functools.partial`).
        seeds: per-trial seeds, e.g. from :func:`derive_seeds` — or any
            picklable per-trial argument.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS`` and then
            to serial execution.
        chunksize: trials handed to a worker at a time; leave at 1 for
            long trials, raise it for many tiny ones.
        on_error: ``"raise"`` propagates the first trial exception (and,
            in parallel runs, abandons the sibling results — ``Pool.map``
            semantics); ``"record"`` returns a :class:`TrialFailure` in
            that trial's result slot and keeps the rest of the sweep.

    Returns:
        Trial results in seed order — identical to ``[fn(s) for s in
        seeds]`` regardless of ``jobs``.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    call = _CatchingTrial(fn) if on_error == "record" else fn
    if jobs == 1 or len(seeds) <= 1:
        raw = [call(seed) for seed in seeds]
    else:
        jobs = min(jobs, len(seeds))
        with _pool_context().Pool(processes=jobs) as pool:
            raw = pool.map(call, seeds, chunksize=chunksize)
    if on_error == "raise":
        return raw
    return [value for _tag, value in raw]


# -- robust execution: timeouts, retries, checkpoints ---------------------------


def _load_checkpoint(path: str, seeds: List[int]) -> Dict[int, object]:
    """Completed results from a previous run, or {} when absent/stale."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("seeds") != list(seeds):
        # Different sweep (seed list changed) — ignore the stale file.
        return {}
    results: Dict[int, object] = {}
    for key, value in data.get("results", {}).items():
        if isinstance(value, dict) and value.get("__trial_failure__"):
            value = TrialFailure.from_dict(value)
        results[int(key)] = value
    return results


def _save_checkpoint(path: str, seeds: List[int], results: Dict[int, object]) -> None:
    """Atomically persist completed results (tmp file + rename)."""
    payload = {
        "seeds": list(seeds),
        "results": {
            str(index): (
                value.to_dict() if isinstance(value, TrialFailure) else value
            )
            for index, value in results.items()
        },
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def run_trials_robust(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    max_attempts: int = 2,
    checkpoint_path: Optional[str] = None,
) -> List[Union[T, TrialFailure]]:
    """:func:`run_trials` for sweeps that must survive crashing or hanging
    trials.

    Semantics:

    * a raising trial is retried with the *same seed* (trials are pure
      functions of their seed, so a retry reproduces the failure unless it
      came from the environment — exactly the distinction worth knowing);
      after ``max_attempts`` total attempts its slot holds a
      :class:`TrialFailure`;
    * with ``timeout_seconds``, each trial's result is awaited with that
      budget; a trial that exceeds it is recorded as timed out
      (``timed_out=True``) and retried like a crash.  Hung workers are
      killed when their round's pool is torn down, and the next round gets
      a fresh pool.  Timeouts require pool execution, so ``jobs=1`` with a
      timeout still runs in a single-worker pool (same results, but
      killable);
    * with ``checkpoint_path``, every completed slot is persisted (atomic
      write) after each round, and a rerun with the same seed list resumes
      from the file instead of recomputing.  Trial results must be
      JSON-serializable to use checkpointing.

    Returns:
        Result-or-:class:`TrialFailure` per seed, in seed order.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    results: Dict[int, object] = (
        _load_checkpoint(checkpoint_path, seeds) if checkpoint_path else {}
    )
    pending = [
        (index, seed, 1) for index, seed in enumerate(seeds) if index not in results
    ]
    call = _CatchingTrial(fn)

    while pending:
        outcomes: List[tuple] = []  # (index, seed, attempt, tag, value)
        if jobs == 1 and timeout_seconds is None:
            for index, seed, attempt in pending:
                tag, value = call(seed)
                outcomes.append((index, seed, attempt, tag, value))
        else:
            workers = min(jobs, len(pending))
            with _pool_context().Pool(processes=workers) as pool:
                handles = [
                    (index, seed, attempt, pool.apply_async(call, (seed,)))
                    for index, seed, attempt in pending
                ]
                for index, seed, attempt, handle in handles:
                    try:
                        tag, value = handle.get(timeout_seconds)
                    except multiprocessing.TimeoutError:
                        tag, value = (
                            "err",
                            TrialFailure(
                                seed=seed,
                                error_type="TrialTimeoutError",
                                message=(
                                    f"trial with seed {seed} exceeded its "
                                    f"{timeout_seconds}s budget"
                                ),
                                attempts=attempt,
                                timed_out=True,
                            ),
                        )
                    outcomes.append((index, seed, attempt, tag, value))
                # Leaving the with-block terminates the pool, killing any
                # worker still stuck on a timed-out trial.

        retry: List[tuple] = []
        for index, seed, attempt, tag, value in outcomes:
            if tag == "ok":
                results[index] = value
            elif attempt < max_attempts:
                retry.append((index, seed, attempt + 1))
            else:
                if isinstance(value, TrialFailure):
                    value = TrialFailure(
                        seed=value.seed,
                        error_type=value.error_type,
                        message=value.message,
                        traceback=value.traceback,
                        attempts=attempt,
                        timed_out=value.timed_out,
                    )
                results[index] = value
        if checkpoint_path:
            _save_checkpoint(checkpoint_path, seeds, results)
        pending = retry

    return [results[index] for index in range(len(seeds))]
