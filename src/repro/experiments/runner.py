"""Process-parallel trial execution for experiment sweeps.

Every figure and defense sweep boils down to "run N independent seeded
trials and collect their results".  :func:`run_trials` fans those trials
out over a ``multiprocessing`` pool while guaranteeing the exact same
results as a serial run:

* trials are pure functions of their seed (each builds its own
  :class:`~repro.system.machine.Machine`), so process isolation cannot
  change their output;
* ``Pool.map`` preserves input order, so result lists are ordered like the
  seed list regardless of completion order;
* seeds are derived deterministically (:func:`derive_seeds`) from a single
  root seed, so sweeps are reproducible end to end.

The trial function must be picklable — a module-level function, taking the
seed (plus whatever was bound with :func:`functools.partial`) — because
worker processes import it by qualified name.

Job count resolution (first match wins):

1. explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. serial execution.

``jobs <= 1`` (or a single trial) runs serially in-process, with no pool
overhead and identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["derive_seeds", "resolve_jobs", "run_trials"]

T = TypeVar("T")

#: environment variable overriding the default job count
JOBS_ENV_VAR = "REPRO_JOBS"


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent 32-bit trial seeds derived from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the same machinery
    NumPy recommends for parallel streams: child seeds are statistically
    independent of each other and of the root, and the derivation is a pure
    function of ``(root_seed, count)`` — serial and parallel sweeps see the
    same seeds in the same order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    Raises:
        ValueError: when an explicit or environment job count is not a
            positive integer.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is None:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"job count must be >= 1, got {jobs}")
    return jobs


def run_trials(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[T]:
    """Run ``fn(seed)`` for every seed, optionally across worker processes.

    Args:
        fn: picklable trial function (module-level; bind extra arguments
            with :func:`functools.partial`).
        seeds: per-trial seeds, e.g. from :func:`derive_seeds` — or any
            picklable per-trial argument.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS`` and then
            to serial execution.
        chunksize: trials handed to a worker at a time; leave at 1 for
            long trials, raise it for many tiny ones.

    Returns:
        Trial results in seed order — identical to ``[fn(s) for s in
        seeds]`` regardless of ``jobs``.
    """
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(seeds) <= 1:
        return [fn(seed) for seed in seeds]
    jobs = min(jobs, len(seeds))
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        # Platform without fork (e.g. Windows): spawn still works because
        # trial functions are importable module-level callables.
        context = multiprocessing.get_context("spawn")
    with context.Pool(processes=jobs) as pool:
        return pool.map(fn, seeds, chunksize=chunksize)
