"""Process-parallel trial execution for experiment sweeps.

Every figure and defense sweep boils down to "run N independent seeded
trials and collect their results".  :func:`run_trials` fans those trials
out over a ``multiprocessing`` pool while guaranteeing the exact same
results as a serial run:

* trials are pure functions of their seed (each builds its own
  :class:`~repro.system.machine.Machine`), so process isolation cannot
  change their output;
* ``Pool.map`` preserves input order, so result lists are ordered like the
  seed list regardless of completion order;
* seeds are derived deterministically (:func:`derive_seeds`) from a single
  root seed, so sweeps are reproducible end to end.

The trial function must be picklable — a module-level function, taking the
seed (plus whatever was bound with :func:`functools.partial`) — because
worker processes import it by qualified name.

Job count resolution (first match wins):

1. explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. serial execution.

``jobs=0`` (argument or environment) means "all available cores";
``jobs == 1`` (or a single trial) runs serially in-process, with no pool
overhead and identical results.

Two execution-engine layers sit underneath (both default-off, both
invisible to results):

* :mod:`repro.experiments.pool` — ``REPRO_POOL_PERSIST=1`` keeps one
  worker pool alive across every ``run_trials``/``run_trials_robust``
  call in the process (retry rounds included) instead of spawning a pool
  per call, and ``chunksize=None`` now resolves adaptively instead of
  pinning 1;
* :mod:`repro.experiments.cache` — ``REPRO_CACHE_DIR=<dir>`` (or
  ``cache=``) consults a content-addressed trial cache keyed on the
  trial function's source, its bound configuration, the seed and the
  package version, so re-running a sweep only computes what changed —
  and growing a sweep only computes the new trials.

Long sweeps additionally need to survive individual trials going wrong:

* ``run_trials(..., on_error="record")`` converts a raising trial into a
  :class:`TrialFailure` record in its result slot instead of poisoning the
  whole sweep (the historical behavior — and still the default,
  ``on_error="raise"`` — loses every completed sibling trial when one
  worker raises);
* :func:`run_trials_robust` adds per-trial wall-clock budgets (hung
  workers are killed with the pool, recorded as timed-out failures),
  deterministic same-seed retries, and atomic JSON checkpointing so an
  interrupted sweep resumes instead of restarting.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import multiprocessing
import os
import tempfile
import time
import traceback as traceback_module
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

import numpy as np

from ..errors import InvariantViolation
from . import accounting
from .cache import describe_trial_fn, resolve_cache
from .pool import PoolLease, resolve_chunksize

__all__ = [
    "TrialFailure",
    "TrialSnapshotSlot",
    "derive_seeds",
    "resolve_jobs",
    "run_trials",
    "run_trials_robust",
]

T = TypeVar("T")

#: environment variable overriding the default job count
JOBS_ENV_VAR = "REPRO_JOBS"


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """``count`` independent 32-bit trial seeds derived from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the same machinery
    NumPy recommends for parallel streams: child seeds are statistically
    independent of each other and of the root, and the derivation is a pure
    function of ``(root_seed, count)`` — serial and parallel sweeps see the
    same seeds in the same order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count.

    Resolution order (first match wins):

    1. an explicit ``jobs`` argument;
    2. the ``REPRO_JOBS`` environment variable;
    3. serial execution (1).

    At either of the first two stages, ``0`` means "all available
    cores" (``os.cpu_count()``).  Negative or non-integer values are
    rejected.

    Raises:
        ValueError: when an explicit or environment job count is not a
            non-negative integer.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is None:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"job count must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class TrialFailure:
    """Typed record of one trial that raised or timed out.

    Carries everything needed to replay the trial in isolation (the seed)
    and to understand what went wrong without access to the dead worker
    (exception type name, message, formatted traceback).  Instances are
    picklable and JSON-round-trippable, so they flow through pools and
    checkpoints like ordinary results.
    """

    seed: int
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    @classmethod
    def from_exception(
        cls, seed: int, exc: BaseException, attempts: int = 1
    ) -> "TrialFailure":
        """Capture a raised exception (call from inside the worker, where
        the traceback is still attached)."""
        return cls(
            seed=seed,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "__trial_failure__": True,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialFailure":
        return cls(
            seed=data["seed"],
            error_type=data["error_type"],
            message=data["message"],
            traceback=data.get("traceback", ""),
            attempts=data.get("attempts", 1),
            timed_out=data.get("timed_out", False),
        )


class _CatchingTrial:
    """Picklable wrapper turning worker exceptions into result records.

    ``Pool.map`` re-raises the first worker exception in the parent and
    discards every other trial's result; catching *inside* the worker is
    the only way to keep the rest of the sweep.
    """

    def __init__(self, fn: Callable[[int], T]):
        self.fn = fn

    def __call__(self, seed: int, snapshot: Optional["TrialSnapshotSlot"] = None):
        try:
            if snapshot is None:
                return ("ok", self.fn(seed))
            return ("ok", self.fn(seed, snapshot=snapshot))
        except Exception as exc:  # noqa: BLE001 — the record carries the type
            return ("err", TrialFailure.from_exception(seed, exc))


def _result_fingerprint(value):
    """The comparable fingerprint of one trial result.

    Dict results expose it under a ``"fingerprint"`` key, objects as a
    ``fingerprint`` attribute; anything else is compared whole (a trial
    that returns plain numbers is its own fingerprint).
    """
    if isinstance(value, dict) and "fingerprint" in value:
        return value["fingerprint"]
    fingerprint = getattr(value, "fingerprint", None)
    if fingerprint is not None:
        return fingerprint
    return value


#: verify a ~10% deterministic sample of hits when ``cache_verify=True``
DEFAULT_CACHE_VERIFY_FRACTION = 0.1


def _sweep_label(fn: Callable) -> str:
    """Accounting label: the underlying function's qualified name."""
    base = fn
    while isinstance(base, functools.partial):
        base = base.func
    return getattr(base, "__qualname__", None) or repr(base)


def run_trials(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    on_error: str = "raise",
    verify_fingerprints: bool = False,
    cache=None,
    cache_verify: Union[bool, float] = False,
    label: Optional[str] = None,
) -> List[Union[T, TrialFailure]]:
    """Run ``fn(seed)`` for every seed, optionally across worker processes.

    Args:
        fn: picklable trial function (module-level; bind extra arguments
            with :func:`functools.partial`).
        seeds: per-trial seeds, e.g. from :func:`derive_seeds` — or any
            picklable per-trial argument.
        jobs: worker processes; ``None`` defers to ``REPRO_JOBS`` and then
            to serial execution; ``0`` means all available cores.
        chunksize: trials handed to a worker at a time; ``None`` (the
            default) picks adaptively — 1 for the usual few-long-trials
            sweeps, larger batches for many tiny trials (see
            :func:`repro.experiments.pool.resolve_chunksize`).  Never
            affects results, only IPC batching.
        on_error: ``"raise"`` propagates the first trial exception (and,
            in parallel runs, abandons the sibling results — ``Pool.map``
            semantics); ``"record"`` returns a :class:`TrialFailure` in
            that trial's result slot and keeps the rest of the sweep.
        verify_fingerprints: after a *parallel* run, rerun every trial
            serially in-process and require each trial's fingerprint (a
            ``"fingerprint"`` dict key, a ``fingerprint`` attribute, or
            the whole result) to match bit for bit; raises
            :class:`~repro.errors.InvariantViolation` on divergence.
            Doubles the work — a validation mode, not a production one.
        cache: the content-addressed trial cache.  ``None`` (default)
            enables caching iff ``REPRO_CACHE_DIR`` is set; ``False``
            disables it; ``True``, a path, or a
            :class:`~repro.experiments.cache.TrialCache` select one
            explicitly (see :func:`~repro.experiments.cache.resolve_cache`).
            Hits skip execution entirely — this is what makes re-runs and
            *incremental* sweeps (same sweep, more seeds) cheap.  Only
            successful results are cached, never :class:`TrialFailure`.
        cache_verify: recompute a deterministic sample of cache hits
            in-process and require bit-identical encodings (``True`` ≈
            10%, or an explicit fraction; ``1.0`` re-verifies every hit).
            Raises :class:`~repro.errors.InvariantViolation` on
            divergence.
        label: accounting label for this sweep (defaults to the trial
            function's qualified name); every call appends a record to
            :mod:`repro.experiments.accounting`.

    Returns:
        Trial results in seed order — identical to ``[fn(s) for s in
        seeds]`` regardless of ``jobs``, chunking, pool persistence, or
        cache state.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    started = time.perf_counter()
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    call = _CatchingTrial(fn) if on_error == "record" else fn

    trial_cache = resolve_cache(cache)
    keys: Optional[List[str]] = None
    fn_desc = None
    hits: Dict[int, object] = {}
    if trial_cache is not None:
        fn_desc = describe_trial_fn(fn)
        if fn_desc is None:
            trial_cache.stats.uncacheable += len(seeds)
            trial_cache = None
        else:
            keys = [trial_cache.key(fn_desc, seed) for seed in seeds]
            for index, key in enumerate(keys):
                hit, value = trial_cache.load(key)
                if hit:
                    hits[index] = value

    pending = [index for index in range(len(seeds)) if index not in hits]
    computed: Dict[int, object] = {}
    parallel_ran = False
    effective_chunksize = 1
    lease: Optional[PoolLease] = None
    if pending:
        pending_seeds = [seeds[index] for index in pending]
        if jobs == 1 or len(pending_seeds) <= 1:
            raw = [call(seed) for seed in pending_seeds]
        else:
            parallel_ran = True
            workers = min(jobs, len(pending_seeds))
            effective_chunksize = resolve_chunksize(
                len(pending_seeds), workers, chunksize
            )
            with PoolLease(workers) as lease:
                raw = lease.pool.map(
                    call, pending_seeds, chunksize=effective_chunksize
                )
        values = raw if on_error == "raise" else [value for _tag, value in raw]
        for index, value in zip(pending, values):
            computed[index] = value
        if trial_cache is not None:
            for index in pending:
                value = computed[index]
                if not isinstance(value, TrialFailure):
                    trial_cache.store(keys[index], value, fn_desc)

    if trial_cache is not None and hits and cache_verify:
        fraction = (
            DEFAULT_CACHE_VERIFY_FRACTION
            if cache_verify is True
            else float(cache_verify)
        )
        selected = [
            index
            for index in sorted(hits)
            if trial_cache.selected_for_verify(keys[index], fraction)
        ]
        if not selected and fraction > 0.0:
            selected = [min(hits)]  # always spot-check at least one hit
        for index in selected:
            trial_cache.verify(keys[index], hits[index], fn(seeds[index]))

    results = [
        hits[index] if index in hits else computed[index]
        for index in range(len(seeds))
    ]
    accounting.record_sweep(
        label=label or _sweep_label(fn),
        trials=len(seeds),
        executed=len(pending),
        cache_hits=len(hits),
        jobs=jobs,
        chunksize=effective_chunksize,
        parallel=parallel_ran,
        persistent_pool=bool(lease is not None and lease.persist),
        wall_seconds=time.perf_counter() - started,
    )
    if verify_fingerprints and parallel_ran:
        serial_raw = [call(seed) for seed in seeds]
        serial = (
            serial_raw
            if on_error == "raise"
            else [value for _tag, value in serial_raw]
        )
        for index, (parallel_value, serial_value) in enumerate(zip(results, serial)):
            failed = (
                isinstance(parallel_value, TrialFailure),
                isinstance(serial_value, TrialFailure),
            )
            if failed[0] != failed[1]:
                raise InvariantViolation(
                    "fingerprint",
                    f"trial {index} (seed {seeds[index]}) "
                    f"{'failed' if failed[0] else 'succeeded'} in parallel but "
                    f"{'failed' if failed[1] else 'succeeded'} serially",
                    dump={"index": index, "seed": seeds[index]},
                )
            if failed[0]:
                continue
            parallel_fp = _result_fingerprint(parallel_value)
            serial_fp = _result_fingerprint(serial_value)
            if parallel_fp != serial_fp:
                raise InvariantViolation(
                    "fingerprint",
                    f"trial {index} (seed {seeds[index]}) diverged between "
                    f"parallel and serial execution: {parallel_fp!r} != "
                    f"{serial_fp!r}",
                    dump={
                        "index": index,
                        "seed": seeds[index],
                        "parallel": repr(parallel_fp),
                        "serial": repr(serial_fp),
                    },
                )
    return results


# -- robust execution: timeouts, retries, checkpoints ---------------------------

#: bump on any change to the checkpoint file layout
CHECKPOINT_VERSION = 1


def _checkpoint_checksum(seeds: List[int], results_payload: dict) -> str:
    """Content checksum over the canonical JSON of a checkpoint's data."""
    blob = json.dumps(
        {"seeds": seeds, "results": results_payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _discard_checkpoint(path: str, reason: str) -> Dict[int, object]:
    warnings.warn(
        f"ignoring checkpoint {path!r}: {reason}; starting a fresh sweep",
        RuntimeWarning,
        stacklevel=4,
    )
    return {}


def _load_checkpoint(path: str, seeds: List[int]) -> Dict[int, object]:
    """Completed results from a previous run, or {} when absent/stale.

    A checkpoint that cannot be trusted — unreadable or truncated JSON,
    unknown version, checksum mismatch, malformed trial records — is
    *discarded with a warning* rather than crashing the sweep or, worse,
    silently resuming from garbage.  A checkpoint whose seed list differs
    belongs to a different sweep and is ignored without comment (the
    historical behavior).
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        return _discard_checkpoint(path, f"unreadable or truncated ({exc!r})")
    if (
        not isinstance(data, dict)
        or not isinstance(data.get("seeds"), list)
        or not isinstance(data.get("results"), dict)
    ):
        return _discard_checkpoint(path, "unrecognized layout")
    version = data.get("version", CHECKPOINT_VERSION)
    if version != CHECKPOINT_VERSION:
        return _discard_checkpoint(
            path,
            f"version {version!r} (this build reads version {CHECKPOINT_VERSION})",
        )
    checksum = data.get("checksum")
    if checksum is not None and checksum != _checkpoint_checksum(
        data["seeds"], data["results"]
    ):
        return _discard_checkpoint(path, "checksum mismatch (corrupt contents)")
    if data["seeds"] != list(seeds):
        # Different sweep (seed list changed) — ignore the stale file.
        return {}
    results: Dict[int, object] = {}
    try:
        for key, value in data["results"].items():
            if isinstance(value, dict) and value.get("__trial_failure__"):
                value = TrialFailure.from_dict(value)
            index = int(key)
            if index < 0 or index >= len(seeds):
                raise ValueError(f"result index {index} out of range")
            results[index] = value
    except (KeyError, TypeError, ValueError) as exc:
        return _discard_checkpoint(path, f"malformed trial records ({exc!r})")
    return results


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON via tmp file + rename (atomic on POSIX)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _save_checkpoint(path: str, seeds: List[int], results: Dict[int, object]) -> None:
    """Atomically persist completed results (tmp file + rename)."""
    results_payload = {
        str(index): (value.to_dict() if isinstance(value, TrialFailure) else value)
        for index, value in results.items()
    }
    _atomic_write_json(
        path,
        {
            "version": CHECKPOINT_VERSION,
            "seeds": list(seeds),
            "results": results_payload,
            "checksum": _checkpoint_checksum(list(seeds), results_payload),
        },
    )


class TrialSnapshotSlot:
    """One trial's persistent snapshot file for mid-trial crash resume.

    :func:`run_trials_robust` hands each trial a slot when built with
    ``snapshot_dir``; the trial periodically ``save``s a machine snapshot
    (plus its own progress record), and — after a crash, timeout, or kill
    — the retry ``load``s it, rebuilds the machine deterministically from
    the seed, ``Machine.load_state``s the snapshot, and finishes only the
    remaining work.  Instances carry just a path, so they pickle cleanly
    into pool workers.
    """

    def __init__(self, path: str):
        self.path = path

    def load(self) -> Optional[dict]:
        """The saved snapshot payload, or None when absent or unreadable.

        An unreadable or obviously-wrong file is warned about and treated
        as absent (the trial restarts from scratch); subtler corruption is
        caught downstream by the snapshot's own fingerprint check in
        :func:`repro.sanitizer.snapshot.load_state`.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            warnings.warn(
                f"ignoring trial snapshot {self.path!r}: unreadable or "
                f"truncated ({exc!r}); restarting the trial from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if not isinstance(data, dict) or not data.get("__machine_snapshot__"):
            warnings.warn(
                f"ignoring trial snapshot {self.path!r}: not a machine "
                "snapshot; restarting the trial from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return data

    def save(self, snapshot, progress: Optional[dict] = None) -> None:
        """Atomically persist ``snapshot`` (a
        :class:`~repro.sanitizer.snapshot.MachineSnapshot` or its dict
        form), with an optional trial-defined ``progress`` record stored
        alongside under the ``"progress"`` key."""
        payload = (
            snapshot.to_dict() if hasattr(snapshot, "to_dict") else dict(snapshot)
        )
        if progress is not None:
            payload["progress"] = progress
        _atomic_write_json(self.path, payload)

    def clear(self) -> None:
        """Delete the slot file (no-op when absent) — call on completion."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _accepts_snapshot(fn: Callable) -> bool:
    """Whether ``fn`` can receive a ``snapshot=`` keyword argument."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return True  # not introspectable (builtin/C callable) — trust it
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "snapshot":
            return True
    return False


def run_trials_robust(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    max_attempts: int = 2,
    checkpoint_path: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
) -> List[Union[T, TrialFailure]]:
    """:func:`run_trials` for sweeps that must survive crashing or hanging
    trials.

    Semantics:

    * a raising trial is retried with the *same seed* (trials are pure
      functions of their seed, so a retry reproduces the failure unless it
      came from the environment — exactly the distinction worth knowing);
      after ``max_attempts`` total attempts its slot holds a
      :class:`TrialFailure`;
    * with ``timeout_seconds``, each trial's result is awaited with that
      budget; a trial that exceeds it is recorded as timed out
      (``timed_out=True``) and retried like a crash.  One pool is reused
      across retry rounds (regardless of ``REPRO_POOL_PERSIST``; with it,
      across whole sweeps too) — it is torn down and rebuilt only when a
      round actually times out, to kill the wedged worker.  Timeouts
      require pool execution, so ``jobs=1`` with a timeout still runs in
      a single-worker pool (same results, but killable);
    * with ``checkpoint_path``, every completed slot is persisted (atomic
      write) after each round, and a rerun with the same seed list resumes
      from the file instead of recomputing.  A corrupt, truncated, or
      differently-versioned checkpoint is discarded with a warning and
      the sweep starts fresh.  Trial results must be JSON-serializable to
      use checkpointing;
    * with ``snapshot_dir``, each trial receives a
      :class:`TrialSnapshotSlot` as a ``snapshot=`` keyword argument (the
      trial function must accept it), letting a *retry of a killed trial
      resume mid-trial* from the machine snapshot the previous attempt
      saved, instead of restarting the trial from scratch.  Slots are
      cleared when their trial completes.

    Returns:
        Result-or-:class:`TrialFailure` per seed, in seed order.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    slots: Dict[int, TrialSnapshotSlot] = {}
    if snapshot_dir is not None:
        if not _accepts_snapshot(fn):
            raise ValueError(
                "snapshot_dir requires a trial function that accepts a "
                "'snapshot' keyword argument (the TrialSnapshotSlot)"
            )
        os.makedirs(snapshot_dir, exist_ok=True)
        slots = {
            index: TrialSnapshotSlot(
                os.path.join(snapshot_dir, f"trial-{index:04d}-{seed}.json")
            )
            for index, seed in enumerate(seeds)
        }
    results: Dict[int, object] = (
        _load_checkpoint(checkpoint_path, seeds) if checkpoint_path else {}
    )
    pending = [
        (index, seed, 1) for index, seed in enumerate(seeds) if index not in results
    ]
    call = _CatchingTrial(fn)
    use_pool = not (jobs == 1 and timeout_seconds is None)
    lease = PoolLease(min(jobs, max(len(pending), 1))) if use_pool else None

    try:
        while pending:
            outcomes: List[tuple] = []  # (index, seed, attempt, tag, value)
            if not use_pool:
                for index, seed, attempt in pending:
                    tag, value = call(seed, slots.get(index))
                    outcomes.append((index, seed, attempt, tag, value))
            else:
                # One pool serves every retry round; it is only torn down
                # (and lazily rebuilt) when a timeout leaves a worker
                # wedged on a trial that will never return.
                pool = lease.pool
                handles = [
                    (
                        index,
                        seed,
                        attempt,
                        pool.apply_async(call, (seed, slots.get(index))),
                    )
                    for index, seed, attempt in pending
                ]
                timed_out = False
                for index, seed, attempt, handle in handles:
                    try:
                        tag, value = handle.get(timeout_seconds)
                    except multiprocessing.TimeoutError:
                        timed_out = True
                        tag, value = (
                            "err",
                            TrialFailure(
                                seed=seed,
                                error_type="TrialTimeoutError",
                                message=(
                                    f"trial with seed {seed} exceeded its "
                                    f"{timeout_seconds}s budget"
                                ),
                                attempts=attempt,
                                timed_out=True,
                            ),
                        )
                    outcomes.append((index, seed, attempt, tag, value))
                if timed_out:
                    lease.invalidate()

            retry: List[tuple] = []
            for index, seed, attempt, tag, value in outcomes:
                if tag == "ok":
                    results[index] = value
                    slot = slots.get(index)
                    if slot is not None:
                        slot.clear()
                elif attempt < max_attempts:
                    retry.append((index, seed, attempt + 1))
                else:
                    if isinstance(value, TrialFailure):
                        value = TrialFailure(
                            seed=value.seed,
                            error_type=value.error_type,
                            message=value.message,
                            traceback=value.traceback,
                            attempts=attempt,
                            timed_out=value.timed_out,
                        )
                    results[index] = value
            if checkpoint_path:
                _save_checkpoint(checkpoint_path, seeds, results)
            pending = retry
    except BaseException:
        if lease is not None:
            lease.invalidate()
        raise
    finally:
        if lease is not None:
            lease.release()

    return [results[index] for index in range(len(seeds))]
