"""Ablations beyond the paper's figures.

Design choices DESIGN.md calls out, each validated by toggling it:

* **two-phase eviction** — the paper's Section 5.3 claim that a single
  forward sweep is unreliable under approximate-LRU replacement;
* **MEE replacement policy** — how the channel fares against true LRU,
  tree-PLRU and (as a mitigation) random replacement;
* **error-correcting codes** — what Hamming(7,4) and 3x repetition buy at
  aggressive window sizes (the paper reports raw rates only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.render import render_table
from ..config import MEECacheConfig, skylake_i7_6700k
from ..core.channel import ChannelConfig
from ..core.ecc import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from ..core.encoding import random_bits
from ..core.metrics import ChannelMetrics, bit_error_rate
from ..errors import ChannelError
from .common import build_ready_channel
from .runner import run_trials

__all__ = [
    "TwoPhaseAblation",
    "PolicyAblation",
    "CodingAblation",
    "run_two_phase",
    "run_policies",
    "run_coding",
    "render_two_phase",
    "render_policies",
    "render_coding",
]


# --------------------------------------------------------------------------
# Two-phase vs one-phase eviction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoPhaseAblation:
    """Error rates with and without the backward eviction pass."""

    two_phase: ChannelMetrics
    one_phase: ChannelMetrics

    @property
    def one_phase_worse(self) -> bool:
        """The paper's claim, as a predicate."""
        return self.one_phase.error_rate > self.two_phase.error_rate


def _two_phase_trial(
    task: Tuple[bool, int, Sequence[int], int]
) -> ChannelMetrics:
    """One eviction-sweep variant on a fresh channel."""
    two_phase, seed, payload, window_cycles = task
    channel_config = None if two_phase else ChannelConfig(eviction_two_phase=False)
    _, channel = build_ready_channel(seed=seed, channel_config=channel_config)
    return channel.transmit(list(payload), window_cycles=window_cycles).metrics


def run_two_phase(
    seed: int = 0,
    bits: int = 600,
    window_cycles: int = 15_000,
    jobs: Optional[int] = None,
    cache=None,
) -> TwoPhaseAblation:
    """Same payload through a two-phase and a one-phase trojan."""
    payload = tuple(random_bits(bits, np.random.default_rng(seed + 5)))
    two, one = run_trials(
        _two_phase_trial,
        [(True, seed, payload, window_cycles), (False, seed, payload, window_cycles)],
        jobs=jobs,
        cache=cache,
        label="ablation_two_phase",
    )
    return TwoPhaseAblation(two_phase=two, one_phase=one)


def render_two_phase(result: TwoPhaseAblation) -> str:
    rows = [
        ["forward+backward (paper)", f"{result.two_phase.error_rate:.3f}"],
        ["forward only", f"{result.one_phase.error_rate:.3f}"],
    ]
    verdict = "one-phase is worse, as the paper argues" if result.one_phase_worse else (
        "one-phase was NOT worse on this seed"
    )
    return render_table(["eviction sweep", "error rate"], rows) + f"\n{verdict}"


# --------------------------------------------------------------------------
# MEE replacement-policy sensitivity (including random replacement as a
# mitigation, cf. paper Section 5.5)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyAblation:
    """Channel quality per simulated MEE replacement policy."""

    metrics_by_policy: Dict[str, ChannelMetrics]
    setup_failures: Tuple[str, ...]


def _policy_trial(
    task: Tuple[str, int, Sequence[int], int]
) -> Tuple[str, Optional[ChannelMetrics]]:
    """Full attack against one replacement policy; None metrics on failure."""
    policy, seed, payload, window_cycles = task
    config = skylake_i7_6700k(seed=seed).with_mee_cache(MEECacheConfig(policy=policy))
    try:
        _, channel = build_ready_channel(seed=seed, config=config)
        result = channel.transmit(list(payload), window_cycles=window_cycles)
        return (policy, result.metrics)
    except ChannelError:
        # Setup itself failing (no eviction set / monitor) is the
        # strongest mitigation outcome.
        return (policy, None)


def run_policies(
    seed: int = 0,
    bits: int = 400,
    window_cycles: int = 15_000,
    policies: Tuple[str, ...] = ("rrip", "lru", "plru", "random"),
    jobs: Optional[int] = None,
    cache=None,
) -> PolicyAblation:
    """Run the full attack against each replacement policy."""
    payload = tuple(random_bits(bits, np.random.default_rng(seed + 6)))
    tasks = [(policy, seed, payload, window_cycles) for policy in policies]
    outcomes = run_trials(
        _policy_trial, tasks, jobs=jobs, cache=cache, label="ablation_policies"
    )
    metrics: Dict[str, ChannelMetrics] = {}
    failures: List[str] = []
    for policy, result in outcomes:
        if result is None:
            failures.append(policy)
        else:
            metrics[policy] = result
    return PolicyAblation(metrics_by_policy=metrics, setup_failures=tuple(failures))


def render_policies(result: PolicyAblation) -> str:
    rows = []
    for policy, metrics in result.metrics_by_policy.items():
        rows.append([policy, f"{metrics.error_rate:.3f}", f"{metrics.goodput:.1f}"])
    for policy in result.setup_failures:
        rows.append([policy, "setup failed", "0.0"])
    return render_table(["MEE replacement", "error rate", "goodput KBps"], rows)


# --------------------------------------------------------------------------
# Error-correcting codes (extension)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CodingAblation:
    """Residual error and goodput per coding scheme per window."""

    rows: Tuple[Tuple[str, int, float, float, float], ...]
    # (scheme, window, raw channel BER, residual data BER, data goodput KBps)


def _coding_window_trial(
    task: Tuple[int, int, Sequence[int]]
) -> Tuple[Tuple[str, int, float, float, float], ...]:
    """Every coding scheme over one window on a fresh channel: raw,
    Hamming(7,4), 3x repetition, then the reliability-stack profiles
    (SECDED, RS, interleaved RS) with soft-decision erasure flagging."""
    window, seed, data_seq = task
    data = list(data_seq)
    _, channel = build_ready_channel(seed=seed)
    rows: List[Tuple[str, int, float, float, float]] = []

    raw = channel.transmit(data, window_cycles=window)
    raw_ber = raw.metrics.error_rate
    rows.append(("raw", window, raw_ber, raw_ber, raw.metrics.goodput))

    encoded = hamming74_encode(data)
    received = channel.transmit(encoded, window_cycles=window)
    decoded, _ = hamming74_decode(received.received)
    residual = bit_error_rate(data, decoded)
    goodput = received.metrics.bit_rate * (4 / 7) * (1 - residual)
    rows.append(("hamming74", window, received.metrics.error_rate, residual, goodput))

    encoded = repetition_encode(data, factor=3)
    received = channel.transmit(encoded, window_cycles=window)
    decoded = repetition_decode(received.received, factor=3)
    residual = bit_error_rate(data, decoded)
    goodput = received.metrics.bit_rate * (1 / 3) * (1 - residual)
    rows.append(("repetition3", window, received.metrics.error_rate, residual, goodput))

    # The reliability-stack codes, soft-decision confidences included —
    # this is the same decode path the self-healing layer uses.
    from ..coding.stack import PROFILES, CodingStack

    for profile in ("secded84", "rs", "rs_interleaved"):
        stack = CodingStack(PROFILES[profile])
        wire = stack.encode(data)
        received = channel.transmit(wire, window_cycles=window)
        decoded_frame = stack.decode(
            received.received,
            data_bits=len(data),
            confidences=received.confidences,
        )
        residual = bit_error_rate(data, decoded_frame.bits)
        goodput = (
            received.metrics.bit_rate * (len(data) / len(wire)) * (1 - residual)
        )
        rows.append(
            (profile, window, received.metrics.error_rate, residual, goodput)
        )
    return tuple(rows)


def run_coding(
    seed: int = 0,
    data_bits: int = 560,  # divisible by 4 (Hamming) and honest for repetition
    windows: Tuple[int, ...] = (7500, 10000, 15000),
    jobs: Optional[int] = None,
    cache=None,
) -> CodingAblation:
    """Compare raw, Hamming(7,4), 3x repetition, SECDED(8,4) and the RS
    stacks over noisy windows.

    Each window is an independent trial on a fresh channel (the schemes
    still share one channel within a window, transmitted in order), so
    fixed arguments give a deterministic table regardless of ``jobs``.
    """
    data = tuple(random_bits(data_bits, np.random.default_rng(seed + 7)))
    tasks = [(window, seed, data) for window in windows]
    window_rows = run_trials(
        _coding_window_trial, tasks, jobs=jobs, cache=cache, label="ablation_coding"
    )
    rows: List[Tuple[str, int, float, float, float]] = []
    for trial_rows in window_rows:
        rows.extend(trial_rows)
    return CodingAblation(rows=tuple(rows))


def render_coding(result: CodingAblation) -> str:
    rows = [
        [scheme, window, f"{raw:.3f}", f"{residual:.4f}", f"{goodput:.1f}"]
        for scheme, window, raw, residual, goodput in result.rows
    ]
    return render_table(
        ["scheme", "window", "channel BER", "residual data BER", "data goodput KBps"], rows
    )
