"""Ablations beyond the paper's figures.

Design choices DESIGN.md calls out, each validated by toggling it:

* **two-phase eviction** — the paper's Section 5.3 claim that a single
  forward sweep is unreliable under approximate-LRU replacement;
* **MEE replacement policy** — how the channel fares against true LRU,
  tree-PLRU and (as a mitigation) random replacement;
* **error-correcting codes** — what Hamming(7,4) and 3x repetition buy at
  aggressive window sizes (the paper reports raw rates only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.render import render_table
from ..config import MEECacheConfig, skylake_i7_6700k
from ..core.channel import ChannelConfig
from ..core.ecc import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
)
from ..core.encoding import random_bits
from ..core.metrics import ChannelMetrics, bit_error_rate
from ..errors import ChannelError
from .common import build_ready_channel

__all__ = [
    "TwoPhaseAblation",
    "PolicyAblation",
    "CodingAblation",
    "run_two_phase",
    "run_policies",
    "run_coding",
    "render_two_phase",
    "render_policies",
    "render_coding",
]


# --------------------------------------------------------------------------
# Two-phase vs one-phase eviction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoPhaseAblation:
    """Error rates with and without the backward eviction pass."""

    two_phase: ChannelMetrics
    one_phase: ChannelMetrics

    @property
    def one_phase_worse(self) -> bool:
        """The paper's claim, as a predicate."""
        return self.one_phase.error_rate > self.two_phase.error_rate


def run_two_phase(seed: int = 0, bits: int = 600, window_cycles: int = 15_000) -> TwoPhaseAblation:
    """Same payload through a two-phase and a one-phase trojan."""
    rng = np.random.default_rng(seed + 5)
    payload = random_bits(bits, rng)

    _, channel = build_ready_channel(seed=seed)
    two = channel.transmit(payload, window_cycles=window_cycles)

    one_config = ChannelConfig(eviction_two_phase=False)
    _, channel_one = build_ready_channel(seed=seed, channel_config=one_config)
    one = channel_one.transmit(payload, window_cycles=window_cycles)

    return TwoPhaseAblation(two_phase=two.metrics, one_phase=one.metrics)


def render_two_phase(result: TwoPhaseAblation) -> str:
    rows = [
        ["forward+backward (paper)", f"{result.two_phase.error_rate:.3f}"],
        ["forward only", f"{result.one_phase.error_rate:.3f}"],
    ]
    verdict = "one-phase is worse, as the paper argues" if result.one_phase_worse else (
        "one-phase was NOT worse on this seed"
    )
    return render_table(["eviction sweep", "error rate"], rows) + f"\n{verdict}"


# --------------------------------------------------------------------------
# MEE replacement-policy sensitivity (including random replacement as a
# mitigation, cf. paper Section 5.5)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyAblation:
    """Channel quality per simulated MEE replacement policy."""

    metrics_by_policy: Dict[str, ChannelMetrics]
    setup_failures: Tuple[str, ...]


def run_policies(
    seed: int = 0,
    bits: int = 400,
    window_cycles: int = 15_000,
    policies: Tuple[str, ...] = ("rrip", "lru", "plru", "random"),
) -> PolicyAblation:
    """Run the full attack against each replacement policy."""
    rng = np.random.default_rng(seed + 6)
    payload = random_bits(bits, rng)
    metrics: Dict[str, ChannelMetrics] = {}
    failures: List[str] = []
    for policy in policies:
        config = skylake_i7_6700k(seed=seed).with_mee_cache(MEECacheConfig(policy=policy))
        try:
            _, channel = build_ready_channel(seed=seed, config=config)
            result = channel.transmit(payload, window_cycles=window_cycles)
            metrics[policy] = result.metrics
        except ChannelError:
            # Setup itself failing (no eviction set / monitor) is the
            # strongest mitigation outcome.
            failures.append(policy)
    return PolicyAblation(metrics_by_policy=metrics, setup_failures=tuple(failures))


def render_policies(result: PolicyAblation) -> str:
    rows = []
    for policy, metrics in result.metrics_by_policy.items():
        rows.append([policy, f"{metrics.error_rate:.3f}", f"{metrics.goodput:.1f}"])
    for policy in result.setup_failures:
        rows.append([policy, "setup failed", "0.0"])
    return render_table(["MEE replacement", "error rate", "goodput KBps"], rows)


# --------------------------------------------------------------------------
# Error-correcting codes (extension)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CodingAblation:
    """Residual error and goodput per coding scheme per window."""

    rows: Tuple[Tuple[str, int, float, float, float], ...]
    # (scheme, window, raw channel BER, residual data BER, data goodput KBps)


def run_coding(
    seed: int = 0,
    data_bits: int = 560,  # divisible by 4 (Hamming) and honest for repetition
    windows: Tuple[int, ...] = (7500, 10000, 15000),
) -> CodingAblation:
    """Compare raw, Hamming(7,4) and 3x repetition over noisy windows."""
    rng = np.random.default_rng(seed + 7)
    data = random_bits(data_bits, rng)
    _, channel = build_ready_channel(seed=seed)

    rows: List[Tuple[str, int, float, float, float]] = []
    for window in windows:
        raw = channel.transmit(data, window_cycles=window)
        raw_ber = raw.metrics.error_rate
        rows.append(("raw", window, raw_ber, raw_ber, raw.metrics.goodput))

        encoded = hamming74_encode(data)
        received = channel.transmit(encoded, window_cycles=window)
        decoded, _ = hamming74_decode(received.received)
        residual = bit_error_rate(data, decoded)
        goodput = received.metrics.bit_rate * (4 / 7) * (1 - residual)
        rows.append(("hamming74", window, received.metrics.error_rate, residual, goodput))

        encoded = repetition_encode(data, factor=3)
        received = channel.transmit(encoded, window_cycles=window)
        decoded = repetition_decode(received.received, factor=3)
        residual = bit_error_rate(data, decoded)
        goodput = received.metrics.bit_rate * (1 / 3) * (1 - residual)
        rows.append(("repetition3", window, received.metrics.error_rate, residual, goodput))
    return CodingAblation(rows=tuple(rows))


def render_coding(result: CodingAblation) -> str:
    rows = [
        [scheme, window, f"{raw:.3f}", f"{residual:.4f}", f"{goodput:.1f}"]
        for scheme, window, raw, residual, goodput in result.rows
    ]
    return render_table(
        ["scheme", "window", "channel BER", "residual data BER", "data goodput KBps"], rows
    )
