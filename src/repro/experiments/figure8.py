"""Figure 8: channel robustness under four noise environments.

128-bit '100100...' transmissions (window 15000) under:

(a) no added noise              — paper: ~1 error bit;
(b) main-memory/cache stress    — paper: minimal impact (MEE untouched);
(c) MEE noise, 512 B stride     — paper: ~4–5 error bits;
(d) MEE noise, 4 KB stride      — paper: ~4–5 error bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.render import render_series
from ..core.channel import ChannelResult, CovertChannel
from ..core.encoding import pattern_100100
from ..system.noise import llc_memory_stressor, mee_stride_stressor
from ..units import KIB, MIB
from .common import build_ready_channel
from .runner import run_trials

__all__ = ["Figure8Result", "ENVIRONMENTS", "run", "render"]

ENVIRONMENTS = ("no-noise", "memory-stress", "mee-512B", "mee-4KB")


@dataclass(frozen=True)
class Figure8Result:
    """One transmission per noise environment."""

    results: Dict[str, ChannelResult]
    bits: Tuple[int, ...]

    def error_counts(self) -> Dict[str, int]:
        """Error bits per environment (the paper's red circles)."""
        return {name: result.metrics.errors for name, result in self.results.items()}


def _noise_processes(
    name: str, machine, channel: CovertChannel, duration_cycles: float, noise_core: int
):
    """Extra processes implementing each Figure 8 environment."""
    if name == "no-noise":
        return []
    if name == "memory-stress":
        space = machine.new_address_space(f"stress-{machine.now:.0f}")
        region = space.mmap(8 * MIB)
        body = llc_memory_stressor(machine.dram, region, duration_cycles)
        return [(f"memstress", body, noise_core, space, None)]
    if name in ("mee-512B", "mee-4KB"):
        stride = 512 if name == "mee-512B" else 4 * KIB
        space = machine.new_address_space(f"meestress-{machine.now:.0f}")
        enclave = machine.create_enclave(f"meestress-enc-{machine.now:.0f}", space)
        region = enclave.alloc(2 * MIB)
        body = mee_stride_stressor(region, stride, duration_cycles)
        return [(f"meestress-{stride}", body, noise_core, space, enclave)]
    raise ValueError(f"unknown environment {name!r}")


def _environment_trial(task: Tuple[str, int, int, int, int]) -> ChannelResult:
    """One noise environment: fresh machine, one 128-bit transmission."""
    name, seed, bit_count, window_cycles, noise_core = task
    bits = tuple(pattern_100100(bit_count))
    machine, channel = build_ready_channel(seed=seed)
    duration = (bit_count + 10) * window_cycles + channel.config.start_slack_cycles
    extra = _noise_processes(name, machine, channel, duration, noise_core)
    return channel.transmit(bits, window_cycles=window_cycles, extra_processes=extra)


def run(
    seed: int = 0,
    bit_count: int = 128,
    window_cycles: int = 15_000,
    noise_core: int = 2,
    jobs: Optional[int] = None,
    cache=None,
) -> Figure8Result:
    """Transmit the 128-bit pattern under each environment.

    Each environment already ran on its own fresh machine with its own
    seed (``seed + index``), so fanning the four trials out over worker
    processes returns bit-identical results to the serial sweep.
    """
    bits = tuple(pattern_100100(bit_count))
    tasks = [
        (name, seed + index, bit_count, window_cycles, noise_core)
        for index, name in enumerate(ENVIRONMENTS)
    ]
    trial_results = run_trials(
        _environment_trial, tasks, jobs=jobs, cache=cache, label="figure8"
    )
    results = dict(zip(ENVIRONMENTS, trial_results))
    return Figure8Result(results=results, bits=bits)


def render(result: Figure8Result) -> str:
    """Error counts per environment plus (a)'s probe series."""
    lines: List[str] = []
    paper = {"no-noise": 1, "memory-stress": 1, "mee-512B": 4.5, "mee-4KB": 4.5}
    for name in ENVIRONMENTS:
        channel_result = result.results[name]
        errors = channel_result.metrics.errors
        lines.append(
            f"({name}) {errors} error bits / {len(result.bits)} "
            f"(paper: ~{paper[name]}) at positions {channel_result.error_positions}"
        )
    worst = max(result.results.values(), key=lambda r: r.metrics.errors)
    lines.append("")
    lines.append("probe series of the noisiest environment:")
    lines.append(render_series(worst.probe_times[:64], marks=worst.error_positions))
    return "\n".join(lines)
