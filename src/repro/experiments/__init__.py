"""Experiment harnesses: one module per paper figure/result.

Every experiment builds its own seeded machine, runs the attack code, and
returns a structured result with a ``render()``-able text form.  The
``benchmarks/`` tree calls these functions; so can users, directly::

    from repro.experiments import figure7
    result = figure7.run(seed=1, bits_per_window=500)
    print(figure7.render(result))
"""

from . import (
    ablations,
    accounting,
    algorithm1,
    coding_sweep,
    defenses,
    fault_sweep,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    headline,
)
from .cache import TrialCache, TrialCacheStats, resolve_cache
from .common import build_machine, build_ready_channel
from .pool import (
    PoolLease,
    persistence_enabled,
    resolve_chunksize,
    shutdown_persistent_pool,
)
from .runner import (
    TrialFailure,
    derive_seeds,
    resolve_jobs,
    run_trials,
    run_trials_robust,
)

__all__ = [
    "PoolLease",
    "TrialCache",
    "TrialCacheStats",
    "TrialFailure",
    "ablations",
    "accounting",
    "algorithm1",
    "build_machine",
    "build_ready_channel",
    "coding_sweep",
    "defenses",
    "derive_seeds",
    "fault_sweep",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "headline",
    "persistence_enabled",
    "resolve_cache",
    "resolve_chunksize",
    "resolve_jobs",
    "run_trials",
    "run_trials_robust",
    "shutdown_persistent_pool",
]
