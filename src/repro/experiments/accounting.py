"""Sweep-level wall-clock and cache-hit accounting.

Every :func:`repro.experiments.runner.run_trials` call records one
:class:`SweepRecord` here — how many trials ran, how many came from the
content-addressed cache, how the pool was used, and the wall-clock cost.
The registry is process-local and append-only; aggregate it with
:func:`summary` or fold it into the performance baseline with
:func:`write_perf_baseline`, which merges a ``"sweep_accounting"`` block
into ``results/perf_baseline.json`` next to the microbenchmark
throughput numbers (the sweep archivers — ``fault_sweep.main``,
``coding_sweep.main`` — and the runner-throughput benchmark both do
this).

Recording costs one list append per sweep; nothing here touches the
filesystem until asked.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "SweepRecord",
    "record_sweep",
    "records",
    "reset",
    "summary",
    "write_perf_baseline",
]


@dataclass(frozen=True)
class SweepRecord:
    """One ``run_trials`` invocation's execution accounting."""

    label: str
    trials: int
    executed: int
    cache_hits: int
    jobs: int
    chunksize: int
    parallel: bool
    persistent_pool: bool
    wall_seconds: float

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "trials": self.trials,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "jobs": self.jobs,
            "chunksize": self.chunksize,
            "parallel": self.parallel,
            "persistent_pool": self.persistent_pool,
            "wall_seconds": self.wall_seconds,
        }


_RECORDS: List[SweepRecord] = []


def record_sweep(
    label: str,
    trials: int,
    executed: int,
    cache_hits: int,
    jobs: int,
    chunksize: int,
    parallel: bool,
    persistent_pool: bool,
    wall_seconds: float,
) -> SweepRecord:
    """Append one sweep's accounting to the process-local registry."""
    record = SweepRecord(
        label=label,
        trials=trials,
        executed=executed,
        cache_hits=cache_hits,
        jobs=jobs,
        chunksize=chunksize,
        parallel=parallel,
        persistent_pool=persistent_pool,
        wall_seconds=wall_seconds,
    )
    _RECORDS.append(record)
    return record


def records() -> Tuple[SweepRecord, ...]:
    """Every record so far, oldest first."""
    return tuple(_RECORDS)


def reset() -> None:
    """Drop all records (tests and fresh measurement campaigns)."""
    _RECORDS.clear()


def summary() -> Dict[str, dict]:
    """Per-label aggregates: runs, trials, cache hits, wall seconds."""
    aggregated: Dict[str, dict] = {}
    for record in _RECORDS:
        slot = aggregated.setdefault(
            record.label,
            {
                "runs": 0,
                "trials": 0,
                "executed": 0,
                "cache_hits": 0,
                "wall_seconds": 0.0,
            },
        )
        slot["runs"] += 1
        slot["trials"] += record.trials
        slot["executed"] += record.executed
        slot["cache_hits"] += record.cache_hits
        slot["wall_seconds"] += record.wall_seconds
    for slot in aggregated.values():
        slot["wall_seconds"] = round(slot["wall_seconds"], 6)
        slot["cache_hit_rate"] = (
            slot["cache_hits"] / slot["trials"] if slot["trials"] else 0.0
        )
    return aggregated


def write_perf_baseline(path: str = "results/perf_baseline.json") -> dict:
    """Merge the accounting summary into the performance baseline file.

    The file's other keys (microbenchmark throughput numbers) are
    preserved; only the ``"sweep_accounting"`` block is replaced — and
    merged label-by-label with whatever a previous process recorded, so
    successive sweep archivers accumulate instead of clobbering each
    other.  Returns the full payload written.
    """
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, UnicodeDecodeError, ValueError):
            data = {}
    existing = data.get("sweep_accounting")
    merged = dict(existing) if isinstance(existing, dict) else {}
    merged.update(summary())
    data["sweep_accounting"] = merged
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return data
