"""Defense evaluation: the Section 5.5 countermeasures vs the real attack.

Three experiments:

* **detection** — the MEE-counter detector against the covert channel and
  against benign workloads (stride scans, memory stress): true/false
  positive behaviour;
* **partitioning** — way-partition the MEE cache between the two enclaves
  and mount the full attack;
* **noise injection** — sweep injector strength vs channel BER and
  defender duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.render import render_table
from ..core.channel import CovertChannel
from ..core.encoding import pattern_100100, random_bits
from ..defense.detector import DetectionReport, MEEActivityDetector
from ..defense.noise_injection import NoiseInjector
from ..defense.partitioning import install_way_partitioning
from ..errors import ChannelError
from ..system.workload import stride_reader
from ..units import KIB, MIB
from .common import build_machine, build_ready_channel
from .runner import run_trials

__all__ = [
    "DetectionResult",
    "PartitioningResult",
    "NoiseInjectionResult",
    "ScrubbingResult",
    "run_detection",
    "run_partitioning",
    "run_noise_injection",
    "run_scrubbing",
    "render_detection",
    "render_partitioning",
    "render_noise_injection",
    "render_scrubbing",
]


# --------------------------------------------------------------------------
# Detection
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DetectionResult:
    """Detector verdicts on the channel and on benign workloads."""

    channel_report: DetectionReport
    benign_reports: Dict[str, DetectionReport]

    @property
    def true_positive(self) -> bool:
        return self.channel_report.flagged

    @property
    def false_positives(self) -> Tuple[str, ...]:
        return tuple(name for name, report in self.benign_reports.items() if report.flagged)


def _is_access_event(event) -> bool:
    """Module-level trace filter (picklable, reused by every detection run)."""
    return event.kind == "access"


def _benign_detection_trial(task: Tuple[str, int, int, int]) -> DetectionReport:
    """Run one benign enclave workload under the detector's trace."""
    name, stride, seed, bits = task
    detector = MEEActivityDetector()
    benign = build_machine(seed=seed)
    space = benign.new_address_space(f"benign-{name}")
    enclave = benign.create_enclave(f"benign-{name}-e", space)
    region = enclave.alloc(4 * MIB)
    benign.spawn(
        name,
        stride_reader(region, stride, bits * 10),
        core=0,
        space=space,
        enclave=enclave,
    )
    with benign.trace.section(filter=_is_access_event):
        benign.run()
    return detector.analyze(benign)


def run_detection(
    seed: int = 0, bits: int = 200, jobs: Optional[int] = None, cache=None
) -> DetectionResult:
    """Score the detector against the channel and two benign workloads."""
    detector = MEEActivityDetector()

    # Covert channel under observation.
    machine, channel = build_ready_channel(seed=seed)
    with machine.trace.section(filter=_is_access_event, clear=True):
        channel.transmit(pattern_100100(bits))
    channel_report = detector.analyze(machine)

    benign_tasks = [
        ("sequential-scan", 512, seed + 7, bits),
        ("page-walk", 4096, seed + 7, bits),
    ]
    reports = run_trials(
        _benign_detection_trial,
        benign_tasks,
        jobs=jobs,
        cache=cache,
        label="defense_detection",
    )
    benign_reports = {task[0]: report for task, report in zip(benign_tasks, reports)}

    return DetectionResult(channel_report=channel_report, benign_reports=benign_reports)


def render_detection(result: DetectionResult) -> str:
    lines = [f"covert channel : {result.channel_report.summary()}"]
    for name, report in result.benign_reports.items():
        lines.append(f"{name:>15}: {report.summary()}")
    verdict = "detected" if result.true_positive else "MISSED"
    fps = ", ".join(result.false_positives) or "none"
    lines.append(f"-> channel {verdict}; false positives: {fps}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Way partitioning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitioningResult:
    """Attack outcome with and without the partitioned MEE cache."""

    baseline_error_rate: float
    defended_outcome: str  # "setup-failed" or "error=<rate>"
    defended_error_rate: float  # 1.0 when setup failed

    @property
    def defense_effective(self) -> bool:
        return self.defended_error_rate >= 0.25


def _partitioning_trial(task: Tuple[str, int, int]) -> Tuple[str, float]:
    """One attack mount: shared baseline or way-partitioned machine.

    Returns ``(outcome_text, error_rate)``.
    """
    kind, seed, bits = task
    if kind == "baseline":
        _, channel = build_ready_channel(seed=seed)
        result = channel.transmit(random_bits(bits, np.random.default_rng(seed)))
        return (f"error={result.metrics.error_rate:.3f}", result.metrics.error_rate)

    machine = build_machine(seed=seed)
    defended = CovertChannel(machine)
    # Partition the 8 ways between the two (future) enclaves; the enclaves
    # exist as soon as the channel object is built.
    install_way_partitioning(
        machine,
        {"trojan-enclave": (0, 1, 2, 3), "spy-enclave": (4, 5, 6, 7)},
    )
    try:
        defended.setup()
    except ChannelError as exc:
        return (f"setup-failed ({exc})", 1.0)
    result = defended.transmit(random_bits(bits, np.random.default_rng(seed)))
    return (f"error={result.metrics.error_rate:.3f}", result.metrics.error_rate)


def run_partitioning(
    seed: int = 0, bits: int = 200, jobs: Optional[int] = None, cache=None
) -> PartitioningResult:
    """Mount the attack against a baseline and a partitioned machine."""
    (_, baseline_error), (defended_outcome, defended_error) = run_trials(
        _partitioning_trial,
        [("baseline", seed, bits), ("partitioned", seed, bits)],
        jobs=jobs,
        cache=cache,
        label="defense_partitioning",
    )
    return PartitioningResult(
        baseline_error_rate=baseline_error,
        defended_outcome=defended_outcome,
        defended_error_rate=defended_error,
    )


def render_partitioning(result: PartitioningResult) -> str:
    rows = [
        ["shared MEE cache (baseline)", f"{result.baseline_error_rate:.3f}"],
        ["way-partitioned (4+4)", result.defended_outcome],
    ]
    verdict = (
        "partitioning kills the versions-line channel"
        if result.defense_effective
        else "partitioning did NOT stop the attack"
    )
    return render_table(["configuration", "attack outcome"], rows) + f"\n{verdict}"


# --------------------------------------------------------------------------
# Noise injection
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NoiseInjectionResult:
    """Channel BER vs injector strength."""

    rows: Tuple[Tuple[int, float, float], ...]  # (period, duty, BER)

    def ber_at(self, period: int) -> float:
        for row_period, _, ber in self.rows:
            if row_period == period:
                return ber
        raise KeyError(period)


def _noise_trial(task: Tuple[int, int, Sequence[int], int]) -> Tuple[int, float, float]:
    """One injector-period point on a fresh channel: (period, duty, BER)."""
    period, seed, payload, noise_core = task
    machine, channel = build_ready_channel(seed=seed)
    extra = []
    duty = 0.0
    if period > 0:
        space = machine.new_address_space("injector-proc")
        enclave = machine.create_enclave("injector-enclave", space)
        region = enclave.alloc(512 * KIB)
        injector = NoiseInjector(region=region, period_cycles=period, seed=seed)
        duration = (len(payload) + 20) * channel.config.window_cycles
        extra = [("injector", injector.body(duration), noise_core, space, enclave)]
        duty = injector.duty_cycle
    result = channel.transmit(list(payload), extra_processes=extra)
    return (period, duty, result.metrics.error_rate)


def run_noise_injection(
    seed: int = 0,
    bits: int = 200,
    periods: Tuple[int, ...] = (0, 40_000, 10_000, 4_000),
    noise_core: int = 3,
    jobs: Optional[int] = None,
    cache=None,
) -> NoiseInjectionResult:
    """Sweep injector period (0 = defense off), one fresh channel per point."""
    payload = tuple(random_bits(bits, np.random.default_rng(seed + 1)))
    tasks = [(period, seed, payload, noise_core) for period in periods]
    rows = run_trials(
        _noise_trial, tasks, jobs=jobs, cache=cache, label="defense_noise_injection"
    )
    return NoiseInjectionResult(rows=tuple(rows))


def render_noise_injection(result: NoiseInjectionResult) -> str:
    rows = [
        ["off" if period == 0 else period, f"{duty:.1%}", f"{ber:.3f}"]
        for period, duty, ber in result.rows
    ]
    return render_table(["injector period (cyc)", "defender duty", "channel BER"], rows)


# --------------------------------------------------------------------------
# Hardware cache scrubbing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ScrubbingResult:
    """Attacker BER and benign-workload cost vs scrub strength."""

    rows: Tuple[Tuple[float, float, float], ...]
    # (scrub rate lines/kcycle, attacker BER, benign median access cycles)

    def ber_at_rate(self, rate: float) -> float:
        for row_rate, ber, _ in self.rows:
            if abs(row_rate - rate) < 1e-9:
                return ber
        raise KeyError(rate)


def _scrub_trial(
    task: Tuple[int, int, Sequence[int], int, int, int]
) -> Tuple[float, float, float]:
    """One scrub-strength point: (rate lines/kcycle, attacker BER, benign cost)."""
    from ..defense.scrubbing import CacheScrubber

    lines, seed, payload, period_cycles, benign_core, scrub_core = task
    machine, channel = build_ready_channel(seed=seed)
    duration = (len(payload) + 20) * channel.config.window_cycles
    extra = []

    benign_space = machine.new_address_space("benign-tenant")
    benign_enclave = machine.create_enclave("benign-tenant-e", benign_space)
    benign_region = benign_enclave.alloc(1 * MIB)
    benign_latencies: List[float] = []
    benign_count = max(int(duration // 900), 200)
    extra.append(
        (
            "benign",
            stride_reader(benign_region, 64, benign_count, latencies_out=benign_latencies),
            benign_core,
            benign_space,
            benign_enclave,
        )
    )

    rate = 0.0
    if lines > 0:
        scrubber = CacheScrubber(
            machine=machine,
            period_cycles=period_cycles,
            lines_per_scrub=lines,
            seed=seed,
        )
        rate = scrubber.scrub_rate_lines_per_kcycle
        scrub_space = machine.new_address_space("scrubber")
        extra.append(("scrubber", scrubber.body(duration), scrub_core, scrub_space, None))

    result = channel.transmit(list(payload), extra_processes=extra)
    benign_cost = float(np.median(benign_latencies)) if benign_latencies else 0.0
    return (rate, result.metrics.error_rate, benign_cost)


def run_scrubbing(
    seed: int = 0,
    bits: int = 200,
    lines_per_scrub: Tuple[int, ...] = (0, 8, 32, 96),
    period_cycles: int = 15_000,
    benign_core: int = 2,
    scrub_core: int = 3,
    jobs: Optional[int] = None,
    cache=None,
) -> ScrubbingResult:
    """Sweep hardware scrub strength against the attack + a benign tenant.

    The benign tenant reads its own enclave at a 64 B stride — a
    versions-hit-friendly pattern whose latency directly shows the cost of
    scrubbed (re-verified) tree nodes.
    """
    payload = tuple(random_bits(bits, np.random.default_rng(seed + 2)))
    tasks = [
        (lines, seed, payload, period_cycles, benign_core, scrub_core)
        for lines in lines_per_scrub
    ]
    rows = run_trials(
        _scrub_trial, tasks, jobs=jobs, cache=cache, label="defense_scrubbing"
    )
    return ScrubbingResult(rows=tuple(rows))


def render_scrubbing(result: ScrubbingResult) -> str:
    rows = [
        ["off" if rate == 0 else f"{rate:.1f}", f"{ber:.3f}", f"{cost:.0f}"]
        for rate, ber, cost in result.rows
    ]
    return render_table(
        ["scrub rate (lines/kcycle)", "attacker BER", "benign median access (cyc)"],
        rows,
    )
