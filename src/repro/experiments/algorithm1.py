"""Algorithm 1 / Section 4: reverse-engineering the full MEE cache geometry.

Combines the Figure 4 capacity inference with Algorithm 1's associativity
discovery to reproduce the paper's conclusion: a 64 KB, 8-way cache with
128 sets and 64 B lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.render import render_table
from ..core.candidates import allocate_candidate_pages
from ..core.latency import calibrate_classifier
from ..core.reverse_engineering import EvictionSetResult, find_eviction_set
from ..sgx.timing import CounterThreadTimer
from . import figure4
from .common import build_machine

__all__ = ["Algorithm1Result", "run", "render"]


@dataclass(frozen=True)
class Algorithm1Result:
    """The recovered geometry, paper-style."""

    eviction_result: EvictionSetResult
    capacity_bytes: int

    @property
    def associativity(self) -> int:
        return self.eviction_result.associativity

    @property
    def num_sets(self) -> int:
        """capacity / (line * ways) — the paper's final inference."""
        return self.capacity_bytes // (64 * max(self.associativity, 1))


def run(seed: int = 0, candidate_pool: int = 128, unit: int = 3, capacity_trials: int = 60) -> Algorithm1Result:
    """Capacity probe + Algorithm 1 on fresh machines."""
    capacity = figure4.run(seed=seed, trials=capacity_trials).inferred_capacity_bytes

    machine = build_machine(seed=seed + 1)
    space = machine.new_address_space("alg1-proc")
    enclave = machine.create_enclave("alg1-enclave", space)
    timer = CounterThreadTimer(machine.config.timers.counter_thread_read_cycles)
    calibration = calibrate_classifier(machine, space, enclave, timer, core=0)
    candidates = allocate_candidate_pages(enclave, candidate_pool, unit)
    eviction_result = find_eviction_set(
        machine, space, enclave, candidates, timer, calibration.classifier
    )
    return Algorithm1Result(eviction_result=eviction_result, capacity_bytes=capacity)


def render(result: Algorithm1Result) -> str:
    """The recovered configuration vs. the paper's."""
    rows = [
        ["capacity", f"{result.capacity_bytes // 1024} KB", "64 KB"],
        ["associativity", result.associativity, 8],
        ["sets", result.num_sets, 128],
        ["line size", "64 B", "64 B"],
        ["index set size found", result.eviction_result.index_set_size, "-"],
    ]
    return render_table(["parameter", "recovered", "paper"], rows)
