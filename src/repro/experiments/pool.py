"""Persistent worker-pool management for the trial runner.

Every sweep in the repo funnels through :func:`repro.experiments.runner.
run_trials`, and historically every call paid a fresh
``multiprocessing.Pool`` spawn — figure sweeps that call ``run_trials``
once per sub-experiment (and ``run_trials_robust`` once per *retry
round*) paid it many times over.  This module keeps one pool alive for
the life of the process and hands it out on demand:

* ``REPRO_POOL_PERSIST=1`` enables process-wide pool reuse: the first
  parallel sweep creates the pool lazily, later sweeps (and retry
  rounds) reuse it, and an ``atexit`` hook tears it down.  Any other
  value (or unset) keeps the historical per-call pools — the safe
  default for callers that fork their own state.
* :class:`PoolLease` is the runner-facing handle.  It resolves the
  persist decision once, creates the pool on first use, survives across
  retry rounds, and knows how to *invalidate* itself — terminate a pool
  whose workers may be stuck on a timed-out trial so the next round gets
  a fresh one — without leaking the global slot.
* :func:`resolve_chunksize` replaces the historical ``chunksize=1``
  default with an adaptive split: long trials still go one at a time,
  but a sweep of hundreds of tiny trials stops paying one IPC round-trip
  per trial.

Reuse is invisible to results: ``Pool.map`` preserves order, trials are
pure functions of their seeds, and worker processes never carry state
between trials that a trial could observe (trial functions build their
own machines from scratch).  The bit-identical parallel/serial guarantee
of the runner therefore holds with or without persistence.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool as _mp_pool
import os
from typing import Optional

__all__ = [
    "POOL_PERSIST_ENV",
    "PoolLease",
    "persistence_enabled",
    "pool_stats",
    "resolve_chunksize",
    "shutdown_persistent_pool",
]

#: environment variable enabling process-wide pool reuse ("1"/"true"/"on")
POOL_PERSIST_ENV = "REPRO_POOL_PERSIST"

#: adaptive chunking targets this many chunks per worker, so stragglers
#: can rebalance, while one chunk never grows past ``MAX_CHUNKSIZE``
#: trials (keeps per-chunk latency bounded for mixed-cost sweeps)
CHUNKS_PER_WORKER = 4
MAX_CHUNKSIZE = 32

#: the process-wide pool: {"pool": Pool | None, "jobs": int}
_PERSISTENT = {"pool": None, "jobs": 0}
_ATEXIT_REGISTERED = False

#: observability counters (see :func:`pool_stats`)
_STATS = {"created": 0, "reused": 0, "invalidated": 0}


def persistence_enabled() -> bool:
    """Whether ``REPRO_POOL_PERSIST`` asks for process-wide pool reuse."""
    return os.environ.get(POOL_PERSIST_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def resolve_chunksize(tasks: int, jobs: int, chunksize: Optional[int] = None) -> int:
    """Effective ``Pool.map`` chunksize: explicit value, else adaptive.

    The adaptive split aims for :data:`CHUNKS_PER_WORKER` chunks per
    worker (so a slow chunk can be absorbed by idle workers) and caps a
    chunk at :data:`MAX_CHUNKSIZE` trials.  Small sweeps — fewer tasks
    than ``jobs * CHUNKS_PER_WORKER`` — resolve to 1, the historical
    default, which is optimal for the long simulation trials the figure
    sweeps run.  Chunking never affects results: ``Pool.map`` reorders
    nothing, it only batches the IPC.
    """
    if chunksize is not None:
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        return chunksize
    if jobs <= 1 or tasks <= 0:
        return 1
    adaptive = tasks // (jobs * CHUNKS_PER_WORKER)
    return max(1, min(adaptive, MAX_CHUNKSIZE))


def pool_stats() -> dict:
    """Counters for pools created / persistent reuses / invalidations."""
    return dict(_STATS)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        # Platform without fork (e.g. Windows): spawn still works because
        # trial functions are importable module-level callables.
        return multiprocessing.get_context("spawn")


def _create_pool(jobs: int):
    _STATS["created"] += 1
    return _pool_context().Pool(processes=jobs)


def _pool_alive(pool) -> bool:
    """Best-effort liveness check (guards against externally-closed pools)."""
    return getattr(pool, "_state", _mp_pool.RUN) == _mp_pool.RUN


def shutdown_persistent_pool() -> None:
    """Terminate and forget the process-wide pool (idempotent)."""
    pool = _PERSISTENT["pool"]
    _PERSISTENT["pool"] = None
    _PERSISTENT["jobs"] = 0
    if pool is not None:
        pool.terminate()
        pool.join()


def _borrow_persistent(jobs: int):
    """The process-wide pool with exactly ``jobs`` workers, creating or
    resizing (teardown + rebuild) as needed."""
    global _ATEXIT_REGISTERED
    pool = _PERSISTENT["pool"]
    if pool is not None and _PERSISTENT["jobs"] == jobs and _pool_alive(pool):
        _STATS["reused"] += 1
        return pool
    shutdown_persistent_pool()
    pool = _create_pool(jobs)
    _PERSISTENT["pool"] = pool
    _PERSISTENT["jobs"] = jobs
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_persistent_pool)
        _ATEXIT_REGISTERED = True
    return pool


class PoolLease:
    """One sweep's handle on a worker pool.

    Created with the worker count, used across any number of rounds
    (``lease.pool`` creates lazily and returns the same pool until
    invalidated), and released exactly once:

    * persistent mode (``REPRO_POOL_PERSIST=1`` or ``persist=True``):
      the pool is the process-wide one; ``release`` leaves it alive for
      the next sweep;
    * per-call mode: the pool belongs to this lease; ``release``
      terminates it (the historical ``with Pool(...)`` behavior).

    ``invalidate`` terminates the current pool unconditionally — the
    remedy when a timed-out trial leaves a worker wedged — and clears
    the persistent slot if it held the same pool, so the next ``.pool``
    access builds a fresh one.
    """

    def __init__(self, jobs: int, persist: Optional[bool] = None):
        if jobs < 1:
            raise ValueError(f"job count must be >= 1, got {jobs}")
        self.jobs = jobs
        self.persist = persistence_enabled() if persist is None else persist
        self._pool = None

    @property
    def pool(self):
        if self._pool is None or not _pool_alive(self._pool):
            if self.persist:
                self._pool = _borrow_persistent(self.jobs)
            else:
                self._pool = _create_pool(self.jobs)
        return self._pool

    def invalidate(self) -> None:
        """Kill the current pool (stuck workers included); the next
        ``.pool`` access creates a fresh one."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        _STATS["invalidated"] += 1
        if pool is _PERSISTENT["pool"]:
            shutdown_persistent_pool()
        else:
            pool.terminate()
            pool.join()

    def release(self) -> None:
        """Give the pool back: keep it (persistent) or tear it down."""
        pool, self._pool = self._pool, None
        if pool is None or self.persist:
            return
        pool.terminate()
        pool.join()

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An in-flight exception may leave workers mid-task; never hand a
        # dirty pool to the next sweep.
        if exc_type is not None:
            self.invalidate()
        self.release()
