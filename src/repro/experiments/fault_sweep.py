"""Robustness sweep: channel degradation vs fault intensity.

The paper measures the channel on a quiet machine; this experiment asks
what an operator should expect on a hostile one.  For each fault intensity
(preemption storms on the *trojan's* core — the realistic direction, since
the trojan lives inside the victim enclave and eats the OS-induced
preemptions and AEX storms that CacheZoom-style monitoring inflicts, while
the spy sits on an attacker-controlled quiet core) the sweep delivers the
same message two ways:

* ``fixed``    — the paper's 15000-cycle operating point, no adaptation;
* ``adaptive`` — the AIMD window controller of :mod:`repro.core.adaptive`.

Each (policy, intensity) cell runs the same derived seeds, so the
comparison is paired.  Results aggregate into robustness curves — goodput,
frame error rate, resyncs, time-to-recover vs intensity — rendered as a
table and archived to ``results/fault_sweep.json``.

The physics of why adaptation wins: at 15000 cycles the window has
``15000 - probe_margin(1200) - eviction(~9000) ≈ 4800`` spare cycles, so
any stolen 12000–24000-cycle time slice that lands on an active trojan
window destroys that frame; backed off to 45000–60000 cycles the same
slice fits in the slack and the frame survives.  On a quiet machine the
controller never backs off and the two policies transmit identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.robustness import (
    RobustnessCurvePoint,
    aggregate_point,
    render_robustness_table,
)
from ..core.selfheal import SelfHealingChannel, SelfHealingConfig
from ..faults.plan import preemption_storm
from . import accounting
from .common import build_ready_channel
from .runner import TrialFailure, derive_seeds, run_trials

__all__ = ["FaultSweepResult", "run", "render", "main", "DEFAULT_INTENSITIES"]

#: preemptions per million cycles; 0 is the quiet-machine control
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 2.0, 5.0, 8.0)
#: the ablation baseline: the paper's fixed operating point
FIXED_WINDOW_CYCLES = 15_000
#: storm coverage — long enough to span the slowest backed-off delivery
STORM_CYCLES = 250_000_000.0
DEFAULT_PAYLOAD = b"MEE covert channel fault sweep."


def _cell_trial(
    spec: Tuple[int, float, Optional[int]],
    payload_hex: str,
    storm_cycles: float,
) -> Dict:
    """One (seed, intensity, policy) trial; returns RobustnessMetrics.to_dict().

    Module-level and bound with :func:`functools.partial` so it pickles
    into pool workers.
    """
    seed, intensity, fixed_window = spec
    machine, channel = build_ready_channel(seed=seed)
    if intensity > 0.0:
        plan = preemption_storm(
            seed=seed,
            core=channel.config.trojan_core,
            start_cycle=machine.now,
            duration_cycles=storm_cycles,
            rate_per_cycle=intensity * 1e-6,
        )
        machine.inject_faults(plan)
    healer = SelfHealingChannel(
        channel, SelfHealingConfig(fixed_window_cycles=fixed_window)
    )
    result = healer.send(bytes.fromhex(payload_hex))
    return result.metrics.to_dict()


@dataclass
class FaultSweepResult:
    """Aggregated robustness curves plus the raw per-trial records."""

    root_seed: int
    trials: int
    payload_bytes: int
    intensities: List[float]
    points: List[RobustnessCurvePoint]
    #: "policy@intensity" -> per-trial metrics dicts (seed order)
    per_trial: Dict[str, List[Dict]] = field(default_factory=dict)
    #: "policy@intensity" -> TrialFailure records, if any trial crashed
    failures: Dict[str, List[Dict]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "experiment": "fault_sweep",
            "root_seed": self.root_seed,
            "trials": self.trials,
            "payload_bytes": self.payload_bytes,
            "intensities": self.intensities,
            "points": [p.to_dict() for p in self.points],
            "per_trial": self.per_trial,
            "failures": self.failures,
        }


def run(
    seed: int = 0,
    trials: int = 3,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    payload: bytes = DEFAULT_PAYLOAD,
    jobs: Optional[int] = None,
    storm_cycles: float = STORM_CYCLES,
    cache=None,
) -> FaultSweepResult:
    """Run the sweep; deterministic for fixed arguments regardless of ``jobs``."""
    seeds = derive_seeds(seed, trials)
    policies: List[Tuple[str, Optional[int]]] = [
        ("fixed", FIXED_WINDOW_CYCLES),
        ("adaptive", None),
    ]
    # One flat trial list so a parallel run spans the whole sweep, not one
    # cell at a time; run_trials preserves order, so cells unpack cleanly.
    specs = [
        (trial_seed, intensity, fixed_window)
        for intensity in intensities
        for _policy, fixed_window in policies
        for trial_seed in seeds
    ]
    fn = partial(
        _cell_trial, payload_hex=payload.hex(), storm_cycles=storm_cycles
    )
    outcomes = run_trials(
        fn, specs, jobs=jobs, on_error="record", cache=cache, label="fault_sweep"
    )

    points: List[RobustnessCurvePoint] = []
    per_trial: Dict[str, List[Dict]] = {}
    failures: Dict[str, List[Dict]] = {}
    cursor = 0
    for intensity in intensities:
        for policy, _fixed_window in policies:
            cell = outcomes[cursor : cursor + trials]
            cursor += trials
            key = f"{policy}@{intensity:g}"
            good = [o for o in cell if not isinstance(o, TrialFailure)]
            bad = [o.to_dict() for o in cell if isinstance(o, TrialFailure)]
            per_trial[key] = good
            if bad:
                failures[key] = bad
            if good:
                points.append(aggregate_point(policy, intensity, good))
    return FaultSweepResult(
        root_seed=seed,
        trials=trials,
        payload_bytes=len(payload),
        intensities=list(intensities),
        points=points,
        per_trial=per_trial,
        failures=failures,
    )


def render(result: FaultSweepResult) -> str:
    """Degradation table plus the headline comparison."""
    lines = [
        "Fault sweep: self-healing channel vs trojan-core preemption storms",
        f"(seed {result.root_seed}, {result.trials} trials/cell, "
        f"{result.payload_bytes}-byte message; intensity = preemptions per "
        "million cycles)",
        "",
        render_robustness_table(result.points),
    ]
    stormy = [p for p in result.points if p.intensity > 0]
    if stormy:
        # Headline the harshest storm either policy still survives; past
        # that point the curve only shows saturation, not the contrast.
        delivering = [p.intensity for p in stormy if p.delivery_rate > 0]
        top = max(delivering) if delivering else max(p.intensity for p in stormy)
        by_policy = {p.policy: p for p in stormy if p.intensity == top}
        if {"adaptive", "fixed"} <= by_policy.keys():
            a, f = by_policy["adaptive"], by_policy["fixed"]
            lines.append("")
            lines.append(
                f"At intensity {top:g}: adaptive delivers "
                f"{a.delivery_rate:.0%} of messages at {a.goodput_kbps:.3f} "
                f"KBps vs fixed {f.delivery_rate:.0%} at "
                f"{f.goodput_kbps:.3f} KBps."
            )
    if result.failures:
        lines.append("")
        lines.append(f"Crashed trials in {sorted(result.failures)} (see archive).")
    return "\n".join(lines)


def main(output_path: str = "results/fault_sweep.json") -> FaultSweepResult:
    """Run the sweep with archive defaults and write the JSON artifact."""
    result = run()
    os.makedirs(os.path.dirname(output_path) or ".", exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    accounting.write_perf_baseline()
    print(render(result))
    print(f"\narchived to {output_path}")
    return result


if __name__ == "__main__":
    main()
