"""Configuration dataclasses for the simulated machine.

Every tunable of the reproduction lives here: cache geometries, DRAM timing,
the MEE latency anchors from DESIGN.md Section 5, SGX timer costs, and the
``skylake_i7_6700k`` preset that mirrors the paper's evaluation platform
(i7-6700K, 4 cores, 32 GB DRAM, 128 MB MEE region, ~4.2 GHz turbo).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .units import CACHE_LINE, KIB, MIB, is_power_of_two

__all__ = [
    "CacheGeometry",
    "HierarchyConfig",
    "DRAMConfig",
    "MEECacheConfig",
    "MEELatencyConfig",
    "PagingConfig",
    "TimerConfig",
    "NoiseConfig",
    "SystemConfig",
    "skylake_i7_6700k",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        size_bytes: total capacity in bytes.
        ways: associativity.
        line_bytes: cache-line size in bytes.
        hit_cycles: access latency on a hit, in core cycles.
        policy: replacement policy name ("lru", "plru" or "random").
    """

    size_bytes: int
    ways: int
    line_bytes: int = CACHE_LINE
    hit_cycles: int = 4
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                f"cache size {self.size_bytes} is not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )
        if self.policy not in ("lru", "plru", "rrip", "random"):
            raise ConfigurationError(f"unknown replacement policy {self.policy!r}")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class HierarchyConfig:
    """The on-chip data-cache hierarchy (L1D, L2, inclusive LLC)."""

    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * KIB, 8, hit_cycles=4)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * KIB, 4, hit_cycles=14)
    )
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8 * MIB, 16, hit_cycles=42)
    )
    clflush_cycles: int = 40
    mfence_cycles: int = 25


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM timing model.

    ``access_cycles`` is the mean line-fetch latency; Gaussian jitter with
    ``jitter_sigma`` plus, with probability ``tail_probability``, an
    exponential spike of mean ``tail_mean_cycles`` model real-system noise
    (row conflicts, refresh, memory-controller queueing).  The heavy tail is
    what makes the 8-access Prime+Probe probe unreliable in Figure 6(a).
    """

    access_cycles: float = 165.0
    jitter_sigma: float = 40.0
    tail_probability: float = 0.02
    tail_mean_cycles: float = 220.0
    #: additional mean latency per concurrent stressor process (bus contention)
    contention_cycles_per_stressor: float = 18.0

    def __post_init__(self) -> None:
        if self.access_cycles <= 0:
            raise ConfigurationError("DRAM access latency must be positive")
        if not 0.0 <= self.tail_probability <= 1.0:
            raise ConfigurationError("tail_probability must be in [0, 1]")


@dataclass(frozen=True)
class MEECacheConfig:
    """Geometry of the MEE cache (ground truth the attack rediscovers)."""

    size_bytes: int = 64 * KIB
    ways: int = 8
    line_bytes: int = CACHE_LINE
    #: "approximate LRU" per the paper; 2-bit SRRIP matches the observed
    #: behaviour (two-phase sweeps needed, single-line eviction reliable)
    policy: str = "rrip"
    lookup_cycles: int = 2

    def __post_init__(self) -> None:
        geometry = CacheGeometry(
            self.size_bytes, self.ways, self.line_bytes, policy=self.policy
        )
        # geometry validates divisibility / power-of-two constraints
        object.__setattr__(self, "_num_sets", geometry.num_sets)

    @property
    def num_sets(self) -> int:
        """Number of MEE cache sets (128 for the paper's configuration)."""
        return self.size_bytes // (self.ways * self.line_bytes)

    def as_geometry(self, hit_cycles: int = 2) -> CacheGeometry:
        """View this configuration as a generic :class:`CacheGeometry`."""
        return CacheGeometry(
            self.size_bytes,
            self.ways,
            self.line_bytes,
            hit_cycles=hit_cycles,
            policy=self.policy,
        )


@dataclass(frozen=True)
class MEELatencyConfig:
    """Latency anchors for protected-region accesses (DESIGN.md Section 5).

    A protected access always pays ``uncore_cycles`` + one DRAM data fetch +
    ``mee_base_cycles`` (decrypt + MAC).  Each integrity-tree level that
    *misses* in the MEE cache adds the corresponding entry of
    ``level_miss_cycles`` (index 0 = versions miss, 1 = L0 miss, ...).
    With the defaults: versions hit ≈ 480, versions miss/L0 hit ≈ 750,
    L1 hit ≈ 950, L2 hit ≈ 1100, root ≈ 1160 cycles.
    """

    uncore_cycles: float = 215.0
    mee_base_cycles: float = 100.0
    level_miss_cycles: tuple = (270.0, 200.0, 150.0, 60.0)

    def __post_init__(self) -> None:
        if len(self.level_miss_cycles) < 2:
            raise ConfigurationError(
                "level_miss_cycles needs at least versions + one tree level"
            )

    def expected_latency(self, dram_cycles: float, hit_level: int) -> float:
        """Mean total latency when the walk first hits at ``hit_level``.

        ``hit_level`` 0 means a versions hit; ``len(level_miss_cycles)``
        means the walk went all the way to the SRAM root.
        """
        extra = sum(self.level_miss_cycles[:hit_level])
        return self.uncore_cycles + dram_cycles + self.mee_base_cycles + extra


@dataclass(frozen=True)
class PagingConfig:
    """Virtual-memory configuration for simulated processes."""

    #: frames available to the allocator inside the protected region
    protected_frames: int = 32768  # 128 MB / 4 KB
    #: frames available outside the protected region
    general_frames: int = 262144
    #: randomize physical frame selection (True matches a real OS and is
    #: what makes Figure 4 probabilistic)
    randomize_frames: bool = True
    #: mean sequential-run length of the EPC free list (set to model an SGX
    #: driver handing out mostly-ascending frames); None = fully random,
    #: the default — candidate-to-set mapping is then uniform, which is
    #: what makes Figure 4 a smooth sigmoid
    epc_cluster_mean_run: Optional[int] = None
    #: EPC oversubscription: maximum protected pages resident at once,
    #: enforced via EWB/ELDU paging; None (default) disables paging — the
    #: paper's 128 MB MEE region is never oversubscribed in its evaluation
    epc_resident_limit_pages: Optional[int] = None


@dataclass(frozen=True)
class TimerConfig:
    """Costs of the three timing mechanisms of paper Figure 2."""

    rdtsc_cycles: int = 24
    ocall_min_cycles: int = 8000
    ocall_max_cycles: int = 15000
    counter_thread_read_cycles: int = 50
    #: staleness of the counter-thread value: the helper thread updates the
    #: shared slot every ~update_interval cycles, so a read observes a value
    #: up to that many cycles old.
    counter_thread_update_interval: int = 30


@dataclass(frozen=True)
class NoiseConfig:
    """Background-noise environment knobs (paper Figure 8)."""

    #: probability per spy window that ambient system activity (OS, SGX
    #: driver, other tenants) touches a protected page that collides with
    #: the channel's MEE cache set.  Produces the paper's ~1.7% error floor.
    ambient_collision_probability: float = 0.012
    #: cycles a memory stressor spends per iteration touching DRAM
    stressor_period_cycles: int = 2200


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of the simulated machine."""

    cores: int = 4
    clock_hz: float = 4.2e9
    #: per-core relative clock-rate mismatch (trojan and spy drift apart)
    clock_skew_ppm: float = 30.0
    #: expected OS interrupts per core cycle (timer ticks, RCU, IPIs — a
    #: quiet pinned core loses a slice roughly every 1.4 ms)
    interrupt_rate_per_cycle: float = 1.0 / 6.0e6
    #: mean cycles stolen per interrupt
    interrupt_duration_cycles: float = 8000.0
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    mee_cache: MEECacheConfig = field(default_factory=MEECacheConfig)
    mee_latency: MEELatencyConfig = field(default_factory=MEELatencyConfig)
    paging: PagingConfig = field(default_factory=PagingConfig)
    timers: TimerConfig = field(default_factory=TimerConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    mee_region_bytes: int = 128 * MIB
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("need at least one core")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")

    def with_seed(self, seed: int) -> "SystemConfig":
        """Return a copy of this configuration with a different RNG seed."""
        return replace(self, seed=seed)

    def with_mee_cache(self, mee_cache: MEECacheConfig) -> "SystemConfig":
        """Return a copy with a different MEE cache geometry (ablations)."""
        return replace(self, mee_cache=mee_cache)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core cycles to wall-clock seconds at ``clock_hz``."""
        return cycles / self.clock_hz


def skylake_i7_6700k(seed: int = 0, noise: Optional[NoiseConfig] = None) -> SystemConfig:
    """The paper's evaluation platform: i7-6700K, 4 cores, 128 MB MEE region.

    Args:
        seed: RNG seed for the machine (frame placement, DRAM jitter...).
        noise: optional noise-environment override.

    Returns:
        A fully populated :class:`SystemConfig`.
    """
    if noise is None:
        noise = NoiseConfig()
    return SystemConfig(cores=4, clock_hz=4.2e9, seed=seed, noise=noise)
