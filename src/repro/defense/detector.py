"""Performance-counter-style detection of MEE-cache covert channels.

Adapts the hardware-performance-counter detection line of work the paper
cites (CacheShield, Flush+Flush detection) to MEE-visible signals.  The
channel's fingerprint in MEE counters is distinctive:

1. **set concentration** — the trojan's evictions hammer one cache set;
   benign working sets spread over many sets;
2. **window-lattice periodicity** — eviction *bursts* (one per '1' bit)
   arrive on the `Tsync` grid: inter-burst gaps are near-integer multiples
   of the window size.  Benign traffic has no such lattice;
3. **versions-miss alternation** — the spy's monitor line flips between
   hit and miss at the signaling rate.

The detector consumes the machine's access trace (standing in for MEE
event counters sampled by microcode/uncore PMU) and scores those three
features; it never looks at process identities or simulator ground truth
beyond what counters could expose (timestamps, set indices, hit levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["DetectionReport", "MEEActivityDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """Scores and verdict for one observation window."""

    events: int
    evictions: int
    hottest_set: int
    set_concentration: float  # fraction of evictions in the hottest set
    bursts: int  # eviction bursts in the hottest set
    lattice_score: float  # fraction of burst gaps on the window lattice
    miss_alternation: float  # hit/miss flip rate of the hottest set's accesses
    flagged: bool

    def summary(self) -> str:
        return (
            f"events={self.events} evictions={self.evictions} "
            f"hottest_set={self.hottest_set} concentration={self.set_concentration:.2f} "
            f"bursts={self.bursts} lattice={self.lattice_score:.2f} "
            f"alternation={self.miss_alternation:.2f} "
            f"-> {'COVERT CHANNEL SUSPECTED' if self.flagged else 'benign'}"
        )


class MEEActivityDetector:
    """Post-hoc analysis of MEE access events.

    Thresholds default to values separating the Algorithm 2 channel from
    the benign workloads in this repository's tests; like any anomaly
    detector they are a policy knob.
    """

    def __init__(
        self,
        concentration_threshold: float = 0.5,
        lattice_threshold: float = 0.7,
        alternation_threshold: float = 0.3,
        min_evictions: int = 8,
        min_bursts: int = 6,
        burst_gap_cycles: float = 4000.0,
    ):
        self.concentration_threshold = concentration_threshold
        self.lattice_threshold = lattice_threshold
        self.alternation_threshold = alternation_threshold
        self.min_evictions = min_evictions
        self.min_bursts = min_bursts
        self.burst_gap_cycles = burst_gap_cycles

    # -- event extraction -------------------------------------------------

    @staticmethod
    def extract_events(machine) -> List[tuple]:
        """(time, versions_set, hit_level, evicted_sets) per MEE access.

        Reads the machine trace; tracing must have been enabled around the
        observation window.
        """
        num_sets = machine.config.mee_cache.num_sets
        events = []
        for event in machine.trace.of_kind("access"):
            outcome = event.detail
            if outcome.mee is None:
                continue
            versions_set = machine.layout.versions_set(outcome.paddr, num_sets)
            evicted_sets = tuple(
                (line // 64) % num_sets for line in outcome.mee.evicted_lines
            )
            events.append((event.time, versions_set, outcome.mee.hit_level, evicted_sets))
        return events

    # -- scoring ------------------------------------------------------------

    def _bursts(self, times: Sequence[float]) -> List[float]:
        """Collapse eviction timestamps into burst start times."""
        bursts: List[float] = []
        for time in sorted(times):
            if not bursts or time - bursts[-1] > self.burst_gap_cycles:
                bursts.append(time)
        return bursts

    @staticmethod
    def _lattice_score(times: np.ndarray) -> float:
        """Spectral peak of the inter-burst-gap distribution.

        The channel's bursts sit at fixed phases of the ``Tsync`` grid, so
        burst *gaps* are near-multiples of the window (plus fixed phase
        offsets): for the true period T the phasor sum
        ``|mean(exp(2*pi*i*gap/T))|`` is large, while Poisson-like benign
        gaps smear it toward ``1/sqrt(N)``.  Scoring gaps rather than
        absolute times keeps the required period resolution independent of
        the observation length.  The detector scans a period grid — it
        does not know Tsync.
        """
        if len(times) < 6:
            return 0.0
        gaps = np.diff(np.sort(np.asarray(times, dtype=float)))
        gaps = gaps[gaps > 0]
        if len(gaps) < 5:
            return 0.0
        periods = np.geomspace(4000.0, 60000.0, 220)
        best = 0.0
        for period in periods:
            phases = np.exp(2j * np.pi * gaps / period)
            best = max(best, float(np.abs(phases.mean())))
        return best

    def analyze_events(self, events: Sequence[tuple]) -> DetectionReport:
        """Score an event list (see :meth:`extract_events` for the shape)."""
        if not events:
            return DetectionReport(0, 0, -1, 0.0, 0, 0.0, 0.0, False)

        eviction_times: dict = {}
        for time, _, _, evicted_sets in events:
            for set_index in evicted_sets:
                eviction_times.setdefault(set_index, []).append(time)

        total_evictions = sum(len(times) for times in eviction_times.values())
        if total_evictions < self.min_evictions:
            return DetectionReport(
                len(events), total_evictions, -1, 0.0, 0, 0.0, 0.0, False
            )

        hottest_set, hot_times = max(eviction_times.items(), key=lambda kv: len(kv[1]))
        concentration = len(hot_times) / total_evictions

        bursts = self._bursts(hot_times)
        lattice = self._lattice_score(np.asarray(bursts))

        # Hit/miss alternation of accesses touching the hottest set.
        verdicts = [
            1 if hit_level > 0 else 0
            for _, versions_set, hit_level, _ in events
            if versions_set == hottest_set
        ]
        if len(verdicts) >= 2:
            flips = sum(1 for a, b in zip(verdicts, verdicts[1:]) if a != b)
            alternation = flips / (len(verdicts) - 1)
        else:
            alternation = 0.0

        flagged = (
            concentration >= self.concentration_threshold
            and len(bursts) >= self.min_bursts
            and lattice >= self.lattice_threshold
            and alternation >= self.alternation_threshold
        )
        return DetectionReport(
            events=len(events),
            evictions=total_evictions,
            hottest_set=hottest_set,
            set_concentration=concentration,
            bursts=len(bursts),
            lattice_score=lattice,
            miss_alternation=alternation,
            flagged=flagged,
        )

    def analyze(self, machine) -> DetectionReport:
        """Extract events from the machine trace and score them."""
        return self.analyze_events(self.extract_events(machine))
