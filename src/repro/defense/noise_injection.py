"""Noise injection: poisoning the MEE timing oracle with dummy fills.

A software (or microcode) defense that periodically touches random
protected lines, inserting integrity-tree data into the MEE cache.  Each
dummy fill can evict channel state, and the attacker cannot tell defense
evictions from trojan evictions — raising the channel's bit error rate at
a quantifiable performance cost (extra DRAM traffic and lost MEE hits for
honest workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..mem.paging import MappedRegion
from ..sim.ops import Access, Busy, Flush, Operation, OpResult
from ..units import CHUNK_SIZE, PAGE_SIZE

__all__ = ["NoiseInjector"]


@dataclass
class NoiseInjector:
    """A configurable dummy-access defense process.

    Attributes:
        region: protected region whose lines are used for dummy fills
            (a real implementation would use a dedicated system range).
        accesses_per_burst: dummy touches per activation.
        period_cycles: activation period; smaller = stronger + costlier.
        seed: RNG seed for address selection.
    """

    region: MappedRegion
    accesses_per_burst: int = 8
    period_cycles: int = 20_000
    seed: int = 0

    def body(self, duration_cycles: float) -> Generator[Operation, OpResult, int]:
        """Process body: inject dummy fills until ``duration_cycles``.

        Returns:
            Total dummy accesses issued.
        """
        rng = np.random.default_rng(self.seed)
        pages = max(self.region.size // PAGE_SIZE, 1)
        units = PAGE_SIZE // CHUNK_SIZE
        elapsed = 0.0
        issued = 0
        while elapsed < duration_cycles:
            yield Busy(self.period_cycles)
            elapsed += self.period_cycles
            for _ in range(self.accesses_per_burst):
                page = int(rng.integers(0, pages))
                unit = int(rng.integers(0, units))
                vaddr = self.region.base + page * PAGE_SIZE + unit * CHUNK_SIZE
                result = yield Access(vaddr)
                elapsed += result.latency
                yield Flush(vaddr)
                elapsed += 40
                issued += 1
        return issued

    @property
    def duty_cycle(self) -> float:
        """Approximate fraction of time spent injecting (cost proxy)."""
        burst_cycles = self.accesses_per_burst * 800.0
        return burst_cycles / (burst_cycles + self.period_cycles)
