"""Countermeasures against the MEE-cache covert channel (paper Section 5.5).

The paper surveys LLC defenses — performance-counter detection, cache
partitioning, replacement-policy changes — and argues they need rework for
the MEE cache because the integrity tree is *shared* below the versions
level.  This package implements the three MEE-adapted families so they can
be evaluated against the actual attack:

* :mod:`~repro.defense.detector` — an anomaly detector over MEE-cache
  behaviour (versions-miss rate and its periodicity), the
  hardware-performance-counter approach of CacheShield et al. adapted to
  MEE counters;
* :mod:`~repro.defense.partitioning` — per-enclave way-partitioning of the
  MEE cache (Catalyst-style), including the shared-tree caveat the paper
  points out;
* :mod:`~repro.defense.noise_injection` — an MEE-side fuzzing defense that
  issues dummy integrity-tree fills to poison the timing oracle.
"""

from .detector import DetectionReport, MEEActivityDetector
from .noise_injection import NoiseInjector
from .partitioning import WayPartitionPolicy, install_way_partitioning
from .scrubbing import CacheScrubber

__all__ = [
    "CacheScrubber",
    "DetectionReport",
    "MEEActivityDetector",
    "NoiseInjector",
    "WayPartitionPolicy",
    "install_way_partitioning",
]
