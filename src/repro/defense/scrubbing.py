"""MEE-cache scrubbing: a hardware-level randomization defense.

Software noise injection (:mod:`~repro.defense.noise_injection`) turns out
to be weak — its dummy fills rarely land in the channel's set, and SRRIP
protects the resident lines it would need to displace.  A *hardware*
defense does not have that problem: the MEE can simply invalidate randomly
chosen cache lines at a configurable rate.  An invalidated node is merely
re-verified on next use (integrity is unaffected; the walk runs again), so
the only cost is extra tree traffic — which this module's evaluation
quantifies against the attacker's error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..sim.ops import Busy, Operation, OpResult

__all__ = ["CacheScrubber"]


@dataclass
class CacheScrubber:
    """Periodically invalidates random MEE-cache lines.

    Modeled as a generator body for scheduling convenience; semantically
    this is microcode/hardware inside the MEE, not a software thread — it
    manipulates the MEE cache directly, which no simulated program can.

    Attributes:
        machine: the machine whose MEE cache is scrubbed.
        period_cycles: time between scrub events.
        lines_per_scrub: random resident lines dropped per event.
        seed: RNG seed for line selection.
    """

    machine: object
    period_cycles: int = 15_000
    lines_per_scrub: int = 8
    seed: int = 0

    def body(self, duration_cycles: float) -> Generator[Operation, OpResult, int]:
        """Scrub until ``duration_cycles``; returns lines invalidated."""
        rng = np.random.default_rng(self.seed)
        cache = self.machine.mee.cache
        num_sets = cache.geometry.num_sets
        elapsed = 0.0
        scrubbed = 0
        while elapsed < duration_cycles:
            yield Busy(self.period_cycles)
            elapsed += self.period_cycles
            for _ in range(self.lines_per_scrub):
                set_index = int(rng.integers(0, num_sets))
                resident = cache.resident_lines(set_index)
                if not resident:
                    continue
                line = resident[int(rng.integers(0, len(resident)))]
                cache.invalidate(line)
                scrubbed += 1
        return scrubbed

    @property
    def scrub_rate_lines_per_kcycle(self) -> float:
        """Average invalidations per 1000 cycles (strength knob)."""
        return 1000.0 * self.lines_per_scrub / self.period_cycles
