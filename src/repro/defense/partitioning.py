"""Way-partitioning the MEE cache (Catalyst-style, adapted per §5.5).

The paper: "way-based partitioning cannot be directly applied to MEE cache
as simply partitioning the cache across different users will not work
since the integrity tree is shared."  The adaptation implemented here
partitions by the *owner of the protected frame a metadata line guards*:

* versions / PD_Tag lines belong to exactly one frame, hence one enclave —
  they are confined to that enclave's ways;
* L1/L2 nodes cover 8/64-frame groups that may span enclaves; lines whose
  group has multiple owners fall into the ``shared`` domain and may use
  every way — the residual the paper warns about.

Against *this* attack the defense is decisive: the channel lives entirely
in versions lines, and a trojan confined to its own ways can no longer
evict the spy's monitor line.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..mem.cache import EvictionRecord, SetAssociativeCache, _CacheSet
from ..units import CACHE_LINE, PAGE_SIZE

__all__ = ["WayPartitionPolicy", "PartitionedMEECache", "install_way_partitioning"]

#: domain name for metadata lines not attributable to a single enclave
SHARED_DOMAIN = "shared"


class WayPartitionPolicy:
    """Maps ownership domains to the cache ways they may occupy."""

    def __init__(self, ways: int, assignments: Dict[str, Tuple[int, ...]]):
        self.ways = ways
        claimed: List[int] = []
        for domain, domain_ways in assignments.items():
            for way in domain_ways:
                if not 0 <= way < ways:
                    raise ConfigurationError(
                        f"domain {domain!r} assigned invalid way {way}"
                    )
            claimed.extend(domain_ways)
        if len(claimed) != len(set(claimed)):
            raise ConfigurationError("way assignments overlap between domains")
        self.assignments = {
            domain: tuple(domain_ways) for domain, domain_ways in assignments.items()
        }

    def ways_for(self, domain: Optional[str]) -> Tuple[int, ...]:
        """Allowed ways for ``domain``; unknown/shared domains get all ways."""
        if domain is None or domain == SHARED_DOMAIN:
            return tuple(range(self.ways))
        assigned = self.assignments.get(domain)
        if assigned is None:
            return tuple(range(self.ways))
        return assigned


class PartitionedMEECache(SetAssociativeCache):
    """A set-associative cache whose fills respect per-domain way masks.

    Within each (set, domain) slice an exact LRU order is kept — the
    partition walls dominate behaviour, so the intra-domain policy choice
    is secondary.
    """

    def __init__(self, geometry, owner_of_line: Callable[[int], Optional[str]],
                 partition: WayPartitionPolicy, rng=None):
        super().__init__(geometry, rng=rng)
        self._owner_of_line = owner_of_line
        self.partition = partition
        # (set_index, domain) -> MRU-first list of ways
        self._domain_lru: Dict[Tuple[int, str], List[int]] = {}

    def _fill(self, cache_set: _CacheSet, set_index: int, line: int) -> Optional[EvictionRecord]:
        domain = self._owner_of_line(line) or SHARED_DOMAIN
        allowed = self.partition.ways_for(domain)
        lru_key = (set_index, domain)
        order = self._domain_lru.setdefault(lru_key, [])

        target_way = None
        for way in allowed:
            if cache_set.tags[way] is None:
                target_way = way
                break
        evicted: Optional[EvictionRecord] = None
        if target_way is None:
            # Evict the domain's LRU way (never another domain's line).
            for way in reversed(order):
                if way in allowed:
                    target_way = way
                    break
            if target_way is None:
                target_way = allowed[-1]
            old = cache_set.tags[target_way]
            if old is not None:
                del cache_set.lookup[old]
                evicted = EvictionRecord(line_addr=old, set_index=set_index, way=target_way)
                self.stats.evictions += 1
        cache_set.tags[target_way] = line
        cache_set.lookup[line] = target_way
        cache_set.policy.fill(target_way)
        if target_way in order:
            order.remove(target_way)
        order.insert(0, target_way)
        return evicted


def _build_frame_owner_map(machine) -> Dict[int, str]:
    """protected frame index -> owning enclave name."""
    owners: Dict[int, str] = {}
    base = machine.physical.protected_base
    for name, enclave in machine._enclaves.items():
        for region in enclave.regions:
            for page in range(region.size // PAGE_SIZE):
                paddr = enclave.host_space.translate(region.base + page * PAGE_SIZE)
                owners[(paddr - base) // PAGE_SIZE] = name
    return owners


def _line_owner_resolver(machine) -> Callable[[int], Optional[str]]:
    """Resolve a metadata line address to its owning domain.

    Ownership is re-derived whenever the EPC allocation state changes
    (modeling an EPCM lookup), so enclaves created or grown *after* the
    defense is installed are partitioned correctly.
    """
    physical = machine.physical
    meta_base, l0_base = physical.meta_base, physical.l0_base
    l1_base, l2_base = physical.l1_base, physical.l2_base
    state = {"stamp": -1, "owners": {}}

    def owners_map() -> Dict[int, str]:
        stamp = machine.epc.used_pages
        if stamp != state["stamp"]:
            state["owners"] = _build_frame_owner_map(machine)
            state["stamp"] = stamp
        return state["owners"]

    def frames_of_line(line_addr: int) -> range:
        if meta_base <= line_addr < meta_base + physical.meta_bytes:
            frame = (line_addr - meta_base) // (16 * CACHE_LINE)
            return range(frame, frame + 1)
        if l0_base <= line_addr < l0_base + physical.l0_bytes:
            frame = (line_addr - l0_base) // (2 * CACHE_LINE)
            return range(frame, frame + 1)
        if l1_base <= line_addr < l1_base + physical.l1_bytes:
            group = (line_addr - l1_base) // (2 * CACHE_LINE)
            return range(group * 8, group * 8 + 8)
        if l2_base <= line_addr < l2_base + physical.l2_bytes:
            group = (line_addr - l2_base) // (2 * CACHE_LINE)
            return range(group * 64, group * 64 + 64)
        return range(0)

    def resolve(line_addr: int) -> Optional[str]:
        owners = owners_map()
        domains = {owners.get(frame) for frame in frames_of_line(line_addr)}
        domains.discard(None)
        if len(domains) == 1:
            return domains.pop()
        return SHARED_DOMAIN  # unowned or spanning enclaves

    return resolve


def install_way_partitioning(
    machine, assignments: Dict[str, Tuple[int, ...]]
) -> PartitionedMEECache:
    """Replace the machine's MEE cache with a way-partitioned one.

    Args:
        machine: the target :class:`~repro.system.machine.Machine`.
        assignments: enclave name -> tuple of way indices it owns.  Lines
            of unlisted enclaves and multi-owner tree nodes use all ways.

    Returns:
        The installed cache (empty — as after a partition reconfiguration).
    """
    partition = WayPartitionPolicy(machine.config.mee_cache.ways, assignments)
    resolver = _line_owner_resolver(machine)
    cache = PartitionedMEECache(
        machine.config.mee_cache.as_geometry(),
        owner_of_line=resolver,
        partition=partition,
        rng=machine.streams.stream("mee-partitioned"),
    )
    machine.mee.cache = cache
    return cache
