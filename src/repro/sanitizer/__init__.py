"""repro.sanitizer — the simulation's correctness backstop.

Opt-in runtime validation for the discrete-event simulator: an invariant
engine over live machine state (:mod:`~repro.sanitizer.invariants`),
deterministic state fingerprinting (:mod:`~repro.sanitizer.fingerprint`),
crash-resumable snapshot/restore (:mod:`~repro.sanitizer.snapshot`), and
a differential oracle that diffs the fast-path caches against a slow
reference model (:mod:`~repro.sanitizer.oracle`).

Enable everywhere with ``REPRO_SANITIZE=1`` (phase-boundary checks),
``REPRO_SANITIZE=<N>`` (additionally check every N operations) and
``REPRO_ORACLE=1`` (shadow caches with the reference model), or
programmatically::

    machine = Machine(skylake_i7_6700k(seed=7))
    machine.install_sanitizer(SanitizerConfig(every_n_events=10_000))
    ...
    machine.sanitize()                  # on-demand sweep
    print(machine.fingerprint())        # stable state hash
    snapshot = machine.save_state()     # crash-resume checkpoint
"""

from .fingerprint import fingerprint_state, machine_fingerprint
from .invariants import (
    DEFAULT_CHECKERS,
    Sanitizer,
    SanitizerConfig,
    check_cache,
    check_clocks,
    check_hierarchy,
    check_mee,
    check_scheduler,
)
from .oracle import (
    DifferentialCache,
    ReferenceCache,
    attach_differential_oracle,
    replay_trace,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    MachineSnapshot,
    capture_state,
    load_state,
    save_state,
)

__all__ = [
    "DEFAULT_CHECKERS",
    "DifferentialCache",
    "MachineSnapshot",
    "ReferenceCache",
    "SNAPSHOT_VERSION",
    "Sanitizer",
    "SanitizerConfig",
    "attach_differential_oracle",
    "capture_state",
    "check_cache",
    "check_clocks",
    "check_hierarchy",
    "check_mee",
    "check_scheduler",
    "fingerprint_state",
    "load_state",
    "machine_fingerprint",
    "replay_trace",
    "save_state",
]
