"""Differential oracle: diff the fast-path cache against a slow reference.

The fast-path cache (:mod:`repro.mem.cache`) inlines its SRRIP policy and
fill logic into the access path for speed.  The oracle re-derives every
decision from a deliberately naive model — dict-of-sets, one
policy-method call per step, division instead of shift/mask address
decomposition — and raises :class:`~repro.errors.OracleDivergence` the
moment the two disagree on a hit, an eviction or a presence query.

Two ways to use it:

* **live shadowing** — :class:`DifferentialCache` *is* a fast-path cache
  (same inlined hot loop) that mirrors every operation into a
  :class:`ReferenceCache` and compares outcomes in place; install on a
  whole machine with :func:`attach_differential_oracle` (or
  ``SanitizerConfig(differential_oracle=True)`` / ``REPRO_ORACLE=1``);
* **trace replay** — record operations (``record_trace=True``) and
  re-check them later against a fresh reference with :func:`replay_trace`,
  e.g. to validate a trace captured on another machine or an older build.

Random replacement cannot be shadowed (two policy instances would drain
the RNG stream twice and diverge by construction); the oracle refuses it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import CacheGeometry
from ..errors import ConfigurationError, OracleDivergence
from ..mem.cache import SetAssociativeCache
from ..mem.replacement import make_policy

__all__ = [
    "ReferenceCache",
    "DifferentialCache",
    "attach_differential_oracle",
    "replay_trace",
]


class ReferenceCache:
    """Textbook set-associative cache: slow, obvious, and independent.

    Mirrors the *semantics* of :class:`SetAssociativeCache` with none of
    its optimizations: no inlined policies, no shift/mask geometry, no
    dense set table — every step is a plain policy-method call over a
    dict of sets, so a bug in the fast path cannot also live here.
    """

    def __init__(self, geometry: CacheGeometry):
        if geometry.policy == "random":
            raise ConfigurationError(
                "the differential oracle cannot shadow random replacement: "
                "two policy instances would drain the RNG twice and diverge"
            )
        self.geometry = geometry
        self._sets: dict = {}  # set_index -> {"tags": [..], "policy": policy}

    # Deliberately arithmetic (not shift/mask): an independent derivation
    # of the same geometry.
    def line_of(self, addr: int) -> int:
        return addr - (addr % self.geometry.line_bytes)

    def set_index_of(self, addr: int) -> int:
        return (addr // self.geometry.line_bytes) % self.geometry.num_sets

    def _set(self, set_index: int) -> dict:
        entry = self._sets.get(set_index)
        if entry is None:
            entry = {
                "tags": [None] * self.geometry.ways,
                "policy": make_policy(self.geometry.policy, self.geometry.ways),
            }
            self._sets[set_index] = entry
        return entry

    def contains(self, addr: int) -> bool:
        entry = self._sets.get(self.set_index_of(addr))
        return entry is not None and self.line_of(addr) in entry["tags"]

    def probe(self, addr: int) -> bool:
        entry = self._sets.get(self.set_index_of(addr))
        if entry is None:
            return False
        line = self.line_of(addr)
        if line not in entry["tags"]:
            return False
        entry["policy"].touch(entry["tags"].index(line))
        return True

    def access(self, addr: int) -> Tuple[bool, Optional[int]]:
        """Look up (and on miss, fill); return ``(hit, evicted_line)``."""
        entry = self._set(self.set_index_of(addr))
        line = self.line_of(addr)
        tags, policy = entry["tags"], entry["policy"]
        if line in tags:
            policy.touch(tags.index(line))
            return True, None
        return False, self._place(entry, line)

    def fill(self, addr: int) -> Optional[int]:
        """Insert without counting an access; touch when already present."""
        entry = self._set(self.set_index_of(addr))
        line = self.line_of(addr)
        tags = entry["tags"]
        if line in tags:
            entry["policy"].touch(tags.index(line))
            return None
        return self._place(entry, line)

    def _place(self, entry: dict, line: int) -> Optional[int]:
        tags, policy = entry["tags"], entry["policy"]
        evicted = None
        if None in tags:
            way = tags.index(None)
        else:
            way = policy.victim()
            evicted = tags[way]
        tags[way] = line
        policy.fill(way)
        return evicted

    def invalidate(self, addr: int) -> bool:
        entry = self._sets.get(self.set_index_of(addr))
        if entry is None:
            return False
        line = self.line_of(addr)
        if line not in entry["tags"]:
            return False
        entry["tags"][entry["tags"].index(line)] = None
        return True

    def clear(self) -> None:
        self._sets = {}

    def __len__(self) -> int:
        return sum(
            sum(tag is not None for tag in entry["tags"])
            for entry in self._sets.values()
        )


class DifferentialCache(SetAssociativeCache):
    """A fast-path cache that shadows every operation into a reference.

    Subclasses :class:`SetAssociativeCache` so the *inlined* hot loop is
    exactly what runs (``_fill`` is not overridden, keeping the inline
    fill active); each public operation then replays into the
    :class:`ReferenceCache` and compares outcomes.

    Attributes:
        oracle_name: label used in divergence reports.
        ops_checked: operations diffed so far.
        trace: recorded ``(op, addr, outcome)`` tuples when built with
            ``record_trace=True``, else None.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        rng: Optional[np.random.Generator] = None,
        name: str = "cache",
        record_trace: bool = False,
    ):
        super().__init__(geometry, rng=rng)
        self._ref = ReferenceCache(geometry)
        self.oracle_name = name
        self.ops_checked = 0
        self.trace: Optional[List[tuple]] = [] if record_trace else None

    def _diverged(self, op: str, addr: int, fast, reference) -> None:
        raise OracleDivergence(
            "oracle",
            f"{self.oracle_name}.{op}({addr:#x}): fast path says {fast!r}, "
            f"reference model says {reference!r}",
            dump={
                "cache": self.oracle_name,
                "op": op,
                "addr": addr,
                "fast": repr(fast),
                "reference": repr(reference),
                "ops_checked": self.ops_checked,
            },
        )

    def _note(self, op: str, addr: int, outcome) -> None:
        self.ops_checked += 1
        if self.trace is not None:
            self.trace.append((op, addr, outcome))

    def probe(self, addr: int) -> bool:
        hit = super().probe(addr)
        ref_hit = self._ref.probe(addr)
        if hit != ref_hit:
            self._diverged("probe", addr, hit, ref_hit)
        self._note("probe", addr, hit)
        return hit

    def access(self, addr: int):
        result = super().access(addr)
        ref_hit, ref_evicted = self._ref.access(addr)
        evicted = result.evicted.line_addr if result.evicted is not None else None
        if result.hit != ref_hit or evicted != ref_evicted:
            self._diverged(
                "access", addr, (result.hit, evicted), (ref_hit, ref_evicted)
            )
        self._note("access", addr, (result.hit, evicted))
        return result

    def fill(self, addr: int):
        record = super().fill(addr)
        ref_evicted = self._ref.fill(addr)
        evicted = record.line_addr if record is not None else None
        if evicted != ref_evicted:
            self._diverged("fill", addr, evicted, ref_evicted)
        self._note("fill", addr, evicted)
        return record

    def invalidate(self, addr: int) -> bool:
        present = super().invalidate(addr)
        ref_present = self._ref.invalidate(addr)
        if present != ref_present:
            self._diverged("invalidate", addr, present, ref_present)
        self._note("invalidate", addr, present)
        return present

    def clear(self) -> None:
        super().clear()
        self._ref.clear()
        if self.trace is not None:
            self.trace.append(("clear", 0, None))


def attach_differential_oracle(machine, record_trace: bool = False) -> None:
    """Replace every cache on ``machine`` with a shadowed differential one.

    Must run before the machine simulates anything — shadowing cannot
    reconstruct history, so non-empty caches are refused.

    Raises:
        SimulationError: when any cache already holds lines.
        ConfigurationError: when a cache uses random replacement.
    """
    from ..errors import SimulationError

    hierarchy = machine.hierarchy
    caches = [*hierarchy.l1, *hierarchy.l2, hierarchy.llc, machine.mee.cache]
    if any(len(cache) for cache in caches):
        raise SimulationError(
            "differential oracle must be attached to a fresh machine "
            "(caches already hold lines)"
        )
    config = machine.config
    hierarchy.l1 = [
        DifferentialCache(
            config.hierarchy.l1, rng=cache._rng, name=f"l1[{core}]",
            record_trace=record_trace,
        )
        for core, cache in enumerate(hierarchy.l1)
    ]
    hierarchy.l2 = [
        DifferentialCache(
            config.hierarchy.l2, rng=cache._rng, name=f"l2[{core}]",
            record_trace=record_trace,
        )
        for core, cache in enumerate(hierarchy.l2)
    ]
    hierarchy.llc = DifferentialCache(
        config.hierarchy.llc, rng=hierarchy.llc._rng, name="llc",
        record_trace=record_trace,
    )
    machine.mee.cache = DifferentialCache(
        config.mee_cache.as_geometry(), rng=machine.mee.cache._rng, name="mee",
        record_trace=record_trace,
    )


def replay_trace(geometry: CacheGeometry, trace) -> List[dict]:
    """Re-run a recorded operation trace through a fresh reference model.

    Args:
        geometry: the traced cache's geometry.
        trace: ``(op, addr, outcome)`` tuples as recorded by a
            :class:`DifferentialCache` built with ``record_trace=True``.

    Returns:
        One divergence record per disagreement (empty list = the fast
        path and the reference model agree on the whole trace).
    """
    reference = ReferenceCache(geometry)
    divergences: List[dict] = []
    for index, (op, addr, outcome) in enumerate(trace):
        if op == "probe":
            replayed = reference.probe(addr)
        elif op == "access":
            replayed = reference.access(addr)
        elif op == "fill":
            replayed = reference.fill(addr)
        elif op == "invalidate":
            replayed = reference.invalidate(addr)
        elif op == "clear":
            reference.clear()
            continue
        else:
            raise ValueError(f"unknown trace op {op!r} at index {index}")
        if replayed != outcome:
            divergences.append(
                {"index": index, "op": op, "addr": addr,
                 "recorded": outcome, "replayed": replayed}
            )
    return divergences
