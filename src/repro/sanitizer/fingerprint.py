"""Deterministic fingerprinting of architectural machine state.

A fingerprint is a SHA-256 hash over a canonical JSON encoding of the
machine's architectural state: every cache's tags and replacement
metadata, the integrity tree's counters, per-core clock positions, DRAM
and pager accounting, and the positions of all named RNG streams.  Two
machines with equal fingerprints will produce bit-identical simulated
futures from that point on (process/generator state aside, which lives in
the trial code, not the machine).

Uses:

* parallel/serial equivalence — ``run_trials`` compares per-trial
  fingerprints, not just final results, when asked to verify;
* snapshot integrity — :mod:`repro.sanitizer.snapshot` stamps each
  snapshot with the fingerprint at save time and refuses to restore a
  payload whose post-restore fingerprint disagrees (truncation, bit rot,
  hand edits).

Stability contract: the hash is a pure function of the state dict
produced by :func:`repro.sanitizer.snapshot.capture_state` — keys are
sorted, floats round-trip exactly through ``repr``-faithful JSON, and
iteration order never leaks in.  It is stable across processes and runs
of the same code version, *not* across snapshot format versions.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["fingerprint_state", "machine_fingerprint"]


def _jsonify(value):
    """Coerce numpy scalars that may hide in RNG states to plain Python."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot fingerprint value of type {type(value)!r}: {value!r}")


def fingerprint_state(state: dict) -> str:
    """SHA-256 hex digest of a canonical encoding of ``state``."""
    blob = json.dumps(
        state, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def machine_fingerprint(machine) -> str:
    """Stable hash of one machine's architectural state.

    Equal fingerprints mean equal caches (tags, replacement metadata and
    statistics), integrity tree, clocks, DRAM/pager/EPC accounting and
    RNG stream positions — everything :func:`capture_state` covers.
    """
    from .snapshot import capture_state

    return fingerprint_state(capture_state(machine))
