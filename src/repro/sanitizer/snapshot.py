"""Crash-resumable machine snapshots: versioned, JSON-safe, fingerprinted.

:func:`save_state` captures a machine's architectural state into a
:class:`MachineSnapshot` — a plain dataclass whose payload survives both
``pickle`` and ``json`` round trips — and :func:`load_state` restores it
into a machine built from the same configuration.  Restore recomputes the
fingerprint and raises :class:`~repro.errors.SnapshotError` on mismatch,
so a truncated or bit-rotted checkpoint is detected instead of silently
corrupting a resumed sweep.

What a snapshot covers (architectural state): every cache level and the
MEE cache (tags, replacement metadata, statistics), the holder map, the
integrity tree, per-core clocks, DRAM/pager/EPC accounting, scheduler
operation count and all named RNG stream positions.

What it does **not** cover: live process bodies (Python generators are
not serializable) and OS-construction state (address spaces, page
tables, enclaves).  The supported resume pattern is therefore: rebuild
the machine *deterministically from its seed* (re-running the same
setup), ``load_state`` the snapshot over it, and re-spawn the remaining
work — exactly what chunked trials under
:func:`repro.experiments.runner.run_trials_robust` do with their
per-trial snapshot slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import SnapshotError
from .fingerprint import fingerprint_state

__all__ = ["SNAPSHOT_VERSION", "MachineSnapshot", "capture_state", "save_state", "load_state"]

#: bump on any change to the capture_state layout; load_state refuses
#: snapshots from other versions rather than guessing at migrations
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class MachineSnapshot:
    """One saved machine state.

    Attributes:
        version: snapshot format version (:data:`SNAPSHOT_VERSION`).
        seed: the machine's root seed — a snapshot only restores into a
            machine built from the same seed/configuration.
        fingerprint: :func:`fingerprint_state` of ``state`` at save time.
        state: the JSON-safe architectural state payload.
    """

    version: int
    seed: int
    fingerprint: str
    state: dict

    def to_dict(self) -> dict:
        """Plain-dict form for JSON checkpoint files."""
        return {
            "__machine_snapshot__": True,
            "version": self.version,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSnapshot":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            SnapshotError: when required fields are missing or mistyped.
        """
        if not isinstance(data, dict):
            raise SnapshotError(f"snapshot payload is {type(data).__name__}, not dict")
        try:
            version = int(data["version"])
            seed = int(data["seed"])
            fingerprint = data["fingerprint"]
            state = data["state"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot payload: {exc!r}") from exc
        if not isinstance(fingerprint, str) or not isinstance(state, dict):
            raise SnapshotError("malformed snapshot payload: bad field types")
        return cls(version=version, seed=seed, fingerprint=fingerprint, state=state)


def capture_state(machine) -> dict:
    """The JSON-safe architectural state dict for ``machine``.

    This is the single source of truth for both snapshots and
    fingerprints; every key is a string and every value JSON-encodable.
    """
    state = {
        "hierarchy": machine.hierarchy.export_state(),
        "mee": machine.mee.export_state(),
        "clocks": [clock.export_state() for clock in machine.clocks],
        "dram": machine.dram.export_state(),
        "epc": machine.epc.export_state(),
        "pager": machine.pager.export_state() if machine.pager is not None else None,
        "streams": machine.streams.export_state(),
        "scheduler": {"total_ops": machine.scheduler.total_ops},
    }
    return state


def save_state(machine) -> MachineSnapshot:
    """Capture ``machine`` into a fingerprinted, versioned snapshot."""
    state = capture_state(machine)
    return MachineSnapshot(
        version=SNAPSHOT_VERSION,
        seed=int(machine.config.seed),
        fingerprint=fingerprint_state(state),
        state=state,
    )


def load_state(machine, snapshot: Union[MachineSnapshot, dict]) -> None:
    """Restore ``snapshot`` into ``machine`` and verify the fingerprint.

    The machine must have been built from the same configuration (same
    seed, core count, cache geometry); typically it was just rebuilt by
    re-running the trial's deterministic setup.

    Raises:
        SnapshotError: on version mismatch, wrong seed, malformed payload,
            a machine in differential-oracle mode (reference models cannot
            be rewound), or a post-restore fingerprint mismatch — i.e. the
            snapshot was corrupted or does not describe this machine.
    """
    if isinstance(snapshot, dict):
        snapshot = MachineSnapshot.from_dict(snapshot)
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if snapshot.seed != int(machine.config.seed):
        raise SnapshotError(
            f"snapshot was saved from seed {snapshot.seed}, machine was "
            f"built from seed {machine.config.seed}"
        )
    from .oracle import DifferentialCache

    if isinstance(machine.mee.cache, DifferentialCache) or any(
        isinstance(cache, DifferentialCache)
        for cache in (*machine.hierarchy.l1, *machine.hierarchy.l2, machine.hierarchy.llc)
    ):
        raise SnapshotError(
            "differential-oracle machines cannot load snapshots: the slow "
            "reference models cannot be rewound to the saved state"
        )
    state = snapshot.state
    try:
        machine.hierarchy.restore_state(state["hierarchy"])
        machine.mee.restore_state(state["mee"])
        for clock, payload in zip(machine.clocks, state["clocks"]):
            clock.restore_state(payload)
        machine.dram.restore_state(state["dram"])
        machine.epc.restore_state(state["epc"])
        if state["pager"] is not None:
            if machine.pager is None:
                raise SnapshotError(
                    "snapshot includes EPC pager state but the machine has "
                    "no pager configured"
                )
            machine.pager.restore_state(state["pager"])
        machine.streams.restore_state(state["streams"])
        machine.scheduler.total_ops = int(state["scheduler"]["total_ops"])
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"snapshot payload failed to restore: {exc!r}") from exc
    restored = fingerprint_state(capture_state(machine))
    if restored != snapshot.fingerprint:
        raise SnapshotError(
            "snapshot fingerprint mismatch after restore "
            f"({snapshot.fingerprint[:12]}... saved vs {restored[:12]}... "
            "restored) — the checkpoint is corrupt or belongs to a "
            "different machine"
        )
