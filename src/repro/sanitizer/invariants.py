"""The runtime invariant engine: checkers over the live machine.

Every headline number rests on the discrete-event simulator keeping its
microarchitectural state consistent while fast-path rewrites and fault
injectors mutate caches, clocks and the integrity tree from many code
paths.  The :class:`Sanitizer` registers checkers over a live
:class:`~repro.system.machine.Machine` and fires them at configurable
cadences:

* **every N events** — the machine's operation executor is wrapped so a
  full check runs every ``every_n_events`` executed operations;
* **phase boundaries** — every :class:`~repro.sim.ops.Label` operation
  (experiments label their phases) triggers a check;
* **on demand** — ``machine.sanitize()`` / :meth:`Sanitizer.check`.

A failing checker raises a typed
:class:`~repro.errors.InvariantViolation` carrying a minimized dump of
only the offending structures.  Checkers are read-only: running them any
number of times never perturbs simulation results (the determinism tests
pin this down).

Checkers (names accepted by :class:`SanitizerConfig` and ``check``):

``cache``
    Per-set consistency of every :class:`SetAssociativeCache` (all
    hierarchy levels plus the MEE cache): tags and the lookup index stay
    in bijection, no duplicate tags, tags line-aligned and in the set
    they map to, SRRIP metadata in range and the inlined RRPV view still
    shared with the policy.
``hierarchy``
    Inclusive-LLC bookkeeping: every private L1/L2 line is present in
    the LLC and recorded in the holder map, and the holder map only
    names LLC-resident lines.
``mee``
    Cached-node freshness: a tree node resident in the MEE cache is by
    definition verified, so its embedded counter must match its parent's
    record (version/MAC consistency of cached vs. authoritative state).
``clock``
    Per-core clocks are finite, non-negative and monotonic between
    checks; the DVFS rate scale stays within configured bounds and the
    cached rate divisor matches ``(1 + skew) * rate_scale``.
``scheduler``
    No orphaned pending operations on finished/failed/cancelled
    processes; heap entries are finite and reference known processes.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import InvariantViolation
from ..mem.cache import SetAssociativeCache
from ..sim.process import ProcessState

__all__ = [
    "DEFAULT_CHECKERS",
    "SanitizerConfig",
    "Sanitizer",
    "check_cache",
    "check_hierarchy",
    "check_mee",
    "check_clocks",
    "check_scheduler",
]

#: every checker the engine knows, in the order ``check()`` runs them
DEFAULT_CHECKERS: Tuple[str, ...] = ("cache", "hierarchy", "mee", "clock", "scheduler")

#: environment variable enabling the sanitizer on every new Machine;
#: ``1`` enables phase-boundary checks, an integer > 1 is additionally
#: used as the every-N-events cadence
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_DONE_STATES = (ProcessState.FINISHED, ProcessState.FAILED, ProcessState.CANCELLED)


@dataclass(frozen=True)
class SanitizerConfig:
    """How often the invariant engine fires and what it checks.

    Attributes:
        every_n_events: run a full check every N executed operations
            (``None`` disables the event cadence — phase-boundary and
            on-demand checks still run).
        phase_boundaries: check at every ``Label`` operation.
        checkers: subset of :data:`DEFAULT_CHECKERS` to run.
        rate_scale_bounds: legal DVFS range for ``CoreClock.rate_scale``.
        differential_oracle: shadow every cache with the slow reference
            model and diff each operation (see :mod:`repro.sanitizer.oracle`).
    """

    every_n_events: Optional[int] = None
    phase_boundaries: bool = True
    checkers: Tuple[str, ...] = DEFAULT_CHECKERS
    rate_scale_bounds: Tuple[float, float] = (0.01, 100.0)
    differential_oracle: bool = False

    @classmethod
    def from_environment(cls) -> Optional["SanitizerConfig"]:
        """Config implied by ``REPRO_SANITIZE`` / ``REPRO_ORACLE``, or None.

        ``REPRO_SANITIZE=1`` enables phase-boundary checking; an integer
        value > 1 is also used as the every-N-events cadence.
        ``REPRO_ORACLE=1`` additionally shadows every cache with the
        reference model.
        """
        raw = os.environ.get(SANITIZE_ENV_VAR, "")
        oracle = os.environ.get("REPRO_ORACLE", "") not in ("", "0")
        if raw in ("", "0") and not oracle:
            return None
        every: Optional[int] = None
        if raw.isdigit() and int(raw) > 1:
            every = int(raw)
        return cls(every_n_events=every, differential_oracle=oracle)


# -- individual checkers ----------------------------------------------------


def check_cache(cache: SetAssociativeCache, name: str = "cache") -> None:
    """Structural consistency of one set-associative cache.

    Raises:
        InvariantViolation: on duplicate tags, tag/lookup desync,
            misplaced or unaligned tags, or SRRIP metadata out of range.
    """
    ways = cache.geometry.ways
    for set_index, tags, lookup, policy in cache.iter_set_states():
        if len(tags) != ways:
            raise InvariantViolation(
                "cache",
                f"{name} set {set_index} has {len(tags)} ways, geometry says {ways}",
                dump={"set": set_index, "tags": list(tags)},
            )
        from_tags: Dict[int, int] = {}
        for way, tag in enumerate(tags):
            if tag is None:
                continue
            if tag in from_tags:
                raise InvariantViolation(
                    "cache",
                    f"{name} set {set_index} holds line {tag:#x} in ways "
                    f"{from_tags[tag]} and {way} (duplicate tag)",
                    dump={"set": set_index, "tags": list(tags)},
                )
            from_tags[tag] = way
            if cache.line_of(tag) != tag:
                raise InvariantViolation(
                    "cache",
                    f"{name} set {set_index} way {way} tag {tag:#x} is not "
                    "line-aligned",
                    dump={"set": set_index, "way": way, "tag": tag},
                )
            if cache.set_index_of(tag) != set_index:
                raise InvariantViolation(
                    "cache",
                    f"{name} line {tag:#x} stored in set {set_index} but maps "
                    f"to set {cache.set_index_of(tag)}",
                    dump={"set": set_index, "way": way, "tag": tag},
                )
        if lookup != from_tags:
            raise InvariantViolation(
                "cache",
                f"{name} set {set_index} lookup index desynced from tags",
                dump={
                    "set": set_index,
                    "tags": list(tags),
                    "lookup": dict(lookup),
                },
            )
        rrpv = getattr(policy, "_rrpv", None)
        if rrpv is not None:
            shared = cache._sets[set_index].rrpv
            if shared is not None and shared is not rrpv:
                raise InvariantViolation(
                    "cache",
                    f"{name} set {set_index} inlined RRPV view was rebound "
                    "away from its policy",
                    dump={"set": set_index},
                )
            for way, value in enumerate(rrpv):
                if not 0 <= value <= 3:
                    raise InvariantViolation(
                        "cache",
                        f"{name} set {set_index} way {way} RRPV {value} out of "
                        "range [0, 3]",
                        dump={"set": set_index, "rrpv": list(rrpv)},
                    )


def _resident_lines(cache: SetAssociativeCache) -> Iterable[int]:
    for _set_index, _tags, lookup, _policy in cache.iter_set_states():
        yield from lookup


def check_hierarchy(hierarchy) -> None:
    """Inclusive-LLC and holder-map consistency.

    Raises:
        InvariantViolation: when a private line is missing from the LLC
            (inclusivity breach), a private line has no holder record
            (back-invalidation would miss it), or the holder map names a
            line the LLC no longer holds.
    """
    llc_lines = set(_resident_lines(hierarchy.llc))
    holders = hierarchy._private_holders
    for core in range(hierarchy.cores):
        for level_name, cache in (("l1", hierarchy.l1[core]), ("l2", hierarchy.l2[core])):
            for line in _resident_lines(cache):
                if line not in llc_lines:
                    raise InvariantViolation(
                        "hierarchy",
                        f"{level_name}[{core}] holds line {line:#x} that is "
                        "not in the inclusive LLC",
                        dump={"core": core, "level": level_name, "line": line},
                    )
                recorded = holders.get(line)
                if recorded is None or core not in recorded:
                    raise InvariantViolation(
                        "hierarchy",
                        f"{level_name}[{core}] holds line {line:#x} with no "
                        "holder record — back-invalidation would miss it",
                        dump={
                            "core": core,
                            "level": level_name,
                            "line": line,
                            "holders": sorted(recorded) if recorded else [],
                        },
                    )
    for line in holders:
        if line not in llc_lines:
            raise InvariantViolation(
                "hierarchy",
                f"holder map names line {line:#x} that is not LLC-resident",
                dump={"line": line, "holders": sorted(holders[line])},
            )


def check_mee(mee) -> None:
    """Freshness of cached integrity-tree nodes.

    A node resident in the MEE cache is by definition already verified
    (paper Section 2.2), so its embedded counter must match its parent's
    record; a mismatch means the cached copy diverged from authoritative
    tree state (tamper, replay, or a scrubbing bug).

    Raises:
        InvariantViolation: on any cached-node counter mismatch.
    """
    recorded = mee.tree.recorded_counters()
    counters = mee.tree._node_counters
    for line in _resident_lines(mee.cache):
        own = counters.get(line, 0)
        expected = recorded.get(line, 0)
        if own != expected:
            raise InvariantViolation(
                "mee",
                f"cached tree node {line:#x} has counter {own} but its "
                f"parent recorded {expected} (stale or tampered while cached)",
                dump={"line": line, "counter": own, "recorded": expected},
            )


def check_clocks(
    machine,
    last_seen: Optional[Dict[int, float]] = None,
    rate_scale_bounds: Tuple[float, float] = (0.01, 100.0),
) -> None:
    """Per-core clock sanity: finite, non-negative, monotonic, DVFS in bounds.

    Args:
        machine: the machine whose ``clocks`` to check.
        last_seen: mutable map of core index -> ``now`` at the previous
            check; updated in place so successive calls detect backward
            movement.  Pass None for a one-shot check.
        rate_scale_bounds: allowed ``(min, max)`` for ``rate_scale``.

    Raises:
        InvariantViolation: on any violated clock invariant.
    """
    low, high = rate_scale_bounds
    for index, clock in enumerate(machine.clocks):
        now = clock.now
        if not math.isfinite(now) or now < 0.0:
            raise InvariantViolation(
                "clock",
                f"core {clock.core_id} clock at non-physical time {now!r}",
                dump={"core": clock.core_id, "now": now},
            )
        if last_seen is not None:
            previous = last_seen.get(index)
            if previous is not None and now < previous:
                raise InvariantViolation(
                    "clock",
                    f"core {clock.core_id} clock ran backwards: "
                    f"{previous!r} -> {now!r}",
                    dump={"core": clock.core_id, "previous": previous, "now": now},
                )
            last_seen[index] = now
        if not low <= clock.rate_scale <= high:
            raise InvariantViolation(
                "clock",
                f"core {clock.core_id} DVFS rate scale {clock.rate_scale!r} "
                f"outside [{low}, {high}]",
                dump={"core": clock.core_id, "rate_scale": clock.rate_scale},
            )
        expected_rate = (1.0 + clock.skew) * clock.rate_scale
        if abs(clock._rate - expected_rate) > 1e-12 * max(1.0, abs(expected_rate)):
            raise InvariantViolation(
                "clock",
                f"core {clock.core_id} cached rate divisor {clock._rate!r} "
                f"desynced from (1 + skew) * rate_scale = {expected_rate!r}",
                dump={"core": clock.core_id, "rate": clock._rate},
            )
        if not math.isfinite(clock.interrupt_cycles) or clock.interrupt_cycles < 0.0:
            raise InvariantViolation(
                "clock",
                f"core {clock.core_id} interrupt accounting is "
                f"{clock.interrupt_cycles!r}",
                dump={"core": clock.core_id},
            )


def check_scheduler(scheduler) -> None:
    """Scheduler bookkeeping: no orphaned pending ops, sane heap entries.

    Raises:
        InvariantViolation: when a finished/failed/cancelled process still
            owns a pending operation (it would be silently re-executed on
            resume) or a heap entry is non-finite or for an unknown process.
    """
    known = set(map(id, scheduler._processes))
    for process in scheduler._processes:
        if process.state in _DONE_STATES and process.pending_op is not None:
            raise InvariantViolation(
                "scheduler",
                f"{process!r} is {process.state.value} but still holds "
                f"pending operation {process.pending_op!r}",
                dump={"process": repr(process)},
            )
    for queued_time, process in scheduler.pending_entries():
        if not math.isfinite(queued_time) or queued_time < 0.0:
            raise InvariantViolation(
                "scheduler",
                f"heap entry for {process!r} queued at non-physical time "
                f"{queued_time!r}",
                dump={"process": repr(process), "time": queued_time},
            )
        if id(process) not in known:
            raise InvariantViolation(
                "scheduler",
                f"heap references unknown process {process!r}",
                dump={"process": repr(process)},
            )


# -- the engine -------------------------------------------------------------


class Sanitizer:
    """Runs registered checkers over one machine at the configured cadence.

    Attach via :meth:`repro.system.machine.Machine.install_sanitizer` (or
    the ``REPRO_SANITIZE`` environment variable); the machine then calls
    :meth:`on_event` / :meth:`on_phase` from its execution path.

    Attributes:
        checks_run: full invariant sweeps completed.
        events_seen: operations observed through the event hook.
        phases_seen: phase boundaries (Label operations) observed.
    """

    def __init__(self, machine, config: Optional[SanitizerConfig] = None):
        config = config if config is not None else SanitizerConfig()
        unknown = set(config.checkers) - set(DEFAULT_CHECKERS)
        if unknown:
            raise ValueError(
                f"unknown checker(s) {sorted(unknown)}; "
                f"valid names: {list(DEFAULT_CHECKERS)}"
            )
        if config.every_n_events is not None and config.every_n_events < 1:
            raise ValueError(
                f"every_n_events must be >= 1, got {config.every_n_events}"
            )
        self.machine = machine
        self.config = config
        self.checks_run = 0
        self.events_seen = 0
        self.phases_seen = 0
        self._clock_marks: Dict[int, float] = {}

    # -- cadence hooks -----------------------------------------------------

    def on_event(self) -> None:
        """Called by the machine after every executed operation."""
        self.events_seen += 1
        every = self.config.every_n_events
        if every is not None and self.events_seen % every == 0:
            self.check()

    def on_phase(self, label: str) -> None:
        """Called by the machine at every Label (phase-boundary) operation."""
        self.phases_seen += 1
        if self.config.phase_boundaries:
            self.check()

    # -- the sweep ---------------------------------------------------------

    def check(self, checkers: Optional[Iterable[str]] = None) -> int:
        """Run one full invariant sweep (or the named subset).

        Returns:
            The number of checkers that ran.

        Raises:
            InvariantViolation: from the first checker that fails.
        """
        machine = self.machine
        selected = tuple(checkers) if checkers is not None else self.config.checkers
        ran = 0
        for name in selected:
            if name == "cache":
                for core in range(machine.config.cores):
                    check_cache(machine.hierarchy.l1[core], name=f"l1[{core}]")
                    check_cache(machine.hierarchy.l2[core], name=f"l2[{core}]")
                check_cache(machine.hierarchy.llc, name="llc")
                check_cache(machine.mee.cache, name="mee")
            elif name == "hierarchy":
                check_hierarchy(machine.hierarchy)
            elif name == "mee":
                check_mee(machine.mee)
            elif name == "clock":
                check_clocks(
                    machine,
                    last_seen=self._clock_marks,
                    rate_scale_bounds=self.config.rate_scale_bounds,
                )
            elif name == "scheduler":
                check_scheduler(machine.scheduler)
            else:
                raise ValueError(f"unknown checker {name!r}")
            ran += 1
        self.checks_run += 1
        return ran
