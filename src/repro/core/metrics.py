"""Channel quality metrics: bit rate, error rate, confusion counts.

The paper reports bit rate in KBps — kilo*bytes* per second — computed
from the cycle budget per bit: one bit per timing window at ``clock_hz``
cycles per second gives ``clock_hz / window / 8 / 1000`` KBps; 15000
cycles at 4.2 GHz is the paper's 35 KBps headline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "bit_rate_kbps",
    "bit_error_rate",
    "binary_entropy",
    "ChannelMetrics",
    "RobustnessMetrics",
]


def binary_entropy(p: float) -> float:
    """H2(p) in bits; 0 at p in {0, 1}, 1 at p = 0.5."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability out of range: {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def bit_rate_kbps(window_cycles: float, clock_hz: float) -> float:
    """Raw channel bit rate in kilobytes per second (one bit per window)."""
    if window_cycles <= 0:
        raise ValueError("window must be positive")
    bits_per_second = clock_hz / window_cycles
    return bits_per_second / 8.0 / 1000.0


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of positions where ``received`` differs from ``sent``.

    Sequences must be equal length — the channel is synchronous, one bit
    per window, so insertions/deletions cannot occur by construction.
    """
    if len(sent) != len(received):
        raise ValueError(f"length mismatch: sent {len(sent)}, received {len(received)}")
    if not sent:
        return 0.0
    errors = sum(1 for s, r in zip(sent, received) if s != r)
    return errors / len(sent)


@dataclass(frozen=True)
class ChannelMetrics:
    """Summary of one transmission."""

    bits: int
    errors: int
    window_cycles: float
    clock_hz: float
    false_ones: int  # sent 0, decoded 1 (spurious eviction / latency tail)
    false_zeros: int  # sent 1, decoded 0 (eviction failed / timing slip)

    @property
    def error_rate(self) -> float:
        """Bit error rate over the transmission."""
        return self.errors / self.bits if self.bits else 0.0

    @property
    def bit_rate(self) -> float:
        """Raw rate in KBps (paper's unit)."""
        return bit_rate_kbps(self.window_cycles, self.clock_hz)

    @property
    def goodput(self) -> float:
        """Error-discounted rate in KBps (1 - BER scaling)."""
        return self.bit_rate * (1.0 - self.error_rate)

    @property
    def capacity_kbps(self) -> float:
        """Information-theoretic rate: bit_rate x (1 - H2(BER)).

        Treats the channel as binary-symmetric — the right figure of merit
        when comparing operating points, since a 50%-error channel carries
        no information no matter how fast it signals.
        """
        ber = min(self.error_rate, 0.5)
        return self.bit_rate * (1.0 - binary_entropy(ber))

    @classmethod
    def from_bits(
        cls,
        sent: Sequence[int],
        received: Sequence[int],
        window_cycles: float,
        clock_hz: float,
    ) -> "ChannelMetrics":
        """Build metrics from the two bit streams."""
        if len(sent) != len(received):
            raise ValueError("sent and received must be equal length")
        false_ones = sum(1 for s, r in zip(sent, received) if s == 0 and r == 1)
        false_zeros = sum(1 for s, r in zip(sent, received) if s == 1 and r == 0)
        return cls(
            bits=len(sent),
            errors=false_ones + false_zeros,
            window_cycles=window_cycles,
            clock_hz=clock_hz,
            false_ones=false_ones,
            false_zeros=false_zeros,
        )


@dataclass(frozen=True)
class RobustnessMetrics:
    """Degradation summary of one self-healing transmission under faults.

    Where :class:`ChannelMetrics` describes raw bits,
    :class:`RobustnessMetrics` describes *delivery*: how much payload
    arrived intact per unit time once retransmissions, resynchronization
    and window backoff are paid for.
    """

    #: payload bytes the message contained
    payload_bytes: int
    #: payload bytes delivered intact (== payload_bytes on full delivery)
    delivered_bytes: int
    #: frame transmissions attempted (including retransmissions)
    frames_attempted: int
    #: distinct frames delivered with a good CRC and the right sequence
    frames_delivered: int
    #: extra attempts beyond one per frame
    retransmissions: int
    #: times the receiver had to re-lock the preamble away from the
    #: expected stream position (desync events survived)
    resyncs: int
    #: reference cycles the whole exchange took
    elapsed_cycles: float
    #: mean cycles from a failed frame to the next delivered one
    #: (math.nan when no failure ever happened)
    time_to_recover_cycles: float
    clock_hz: float
    #: frames whose *first* transmission was corrupted but delivered anyway
    #: because the FEC repaired it before the CRC check — coding's wins
    fec_corrected_frames: int = 0
    #: frames delivered only by retransmission (CRC-triggered selective
    #: repeat) — the errors FEC could not absorb; separating this from
    #: ``fec_corrected_frames`` is what lets the coding-sweep curves
    #: attribute reliability to the code versus the ARQ loop
    arq_recovered_frames: int = 0

    @property
    def delivered(self) -> bool:
        """True when the complete message arrived intact."""
        return self.delivered_bytes == self.payload_bytes

    @property
    def frame_error_rate(self) -> float:
        """Fraction of attempted frames that failed."""
        if self.frames_attempted == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_attempted

    @property
    def goodput_kbps(self) -> float:
        """Delivered payload in KBps of wall-clock time — the figure of
        merit the fault sweep compares controllers on."""
        if self.elapsed_cycles <= 0:
            return 0.0
        seconds = self.elapsed_cycles / self.clock_hz
        return self.delivered_bytes / seconds / 1000.0

    def to_dict(self) -> dict:
        """JSON-serializable form (sweep archives)."""
        return {
            "payload_bytes": self.payload_bytes,
            "delivered_bytes": self.delivered_bytes,
            "frames_attempted": self.frames_attempted,
            "frames_delivered": self.frames_delivered,
            "retransmissions": self.retransmissions,
            "resyncs": self.resyncs,
            "elapsed_cycles": self.elapsed_cycles,
            "time_to_recover_cycles": self.time_to_recover_cycles,
            "clock_hz": self.clock_hz,
            "goodput_kbps": self.goodput_kbps,
            "frame_error_rate": self.frame_error_rate,
            "delivered": self.delivered,
            "fec_corrected_frames": self.fec_corrected_frames,
            "arq_recovered_frames": self.arq_recovered_frames,
        }
