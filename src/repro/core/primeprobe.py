"""The classic Prime+Probe baseline — and why it fails on the MEE cache.

Paper Section 5.2: in LLC Prime+Probe the *spy* holds the eviction set and
probes all ways; eviction by the trojan shows up as one extra miss.  On
the MEE cache every probe access is a main-memory access (~480+ cycles
each), so an 8-way probe costs >3500 cycles with the summed jitter of
eight DRAM fetches — the ~300-cycle single-eviction signal drowns
(Figure 6a).  This module implements that baseline faithfully so the
failure is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

import numpy as np

from ..errors import ChannelError
from ..sgx.timing import CounterThreadTimer, TimerMechanism
from ..sim.ops import Access, Busy, Fence, Flush, Operation, OpResult
from .candidates import allocate_candidate_pages
from .channel import ChannelConfig, wait_until
from .latency import calibrate_classifier
from .metrics import ChannelMetrics
from .monitor import find_monitor_address
from .reverse_engineering import find_eviction_set

__all__ = ["PrimeProbeResult", "PrimeProbeChannel", "run_prime_probe_channel"]


def _probe_set_body(
    eviction_set: Sequence[int], timer: TimerMechanism
) -> Generator[Operation, OpResult, float]:
    """Measure the total time to access (and flush) every way of the set."""
    start = yield from timer.read()
    for vaddr in eviction_set:
        yield Access(vaddr)
    end = yield from timer.read()
    for vaddr in eviction_set:
        yield Flush(vaddr)
    yield Fence()
    return float(end - start)


def pp_spy_body(
    bit_count: int,
    eviction_set: Sequence[int],
    start_time: float,
    window_cycles: int,
    probe_margin: int,
    timer: TimerMechanism,
    threshold: float,
    probe_times_out: List[float],
    bits_out: List[int],
) -> Generator[Operation, OpResult, int]:
    """Prime+Probe spy: probe the whole set once per window."""
    # Initial prime.
    for vaddr in eviction_set:
        yield Access(vaddr)
        yield Flush(vaddr)
    yield Fence()
    for index in range(bit_count):
        deadline = start_time + index * window_cycles + (window_cycles - probe_margin)
        yield from wait_until(timer, deadline)
        elapsed = yield from _probe_set_body(eviction_set, timer)
        probe_times_out.append(elapsed)
        bits_out.append(1 if elapsed > threshold else 0)
    return bit_count


def pp_trojan_body(
    bits: Sequence[int],
    conflict_address: int,
    start_time: float,
    window_cycles: int,
    timer: TimerMechanism,
) -> Generator[Operation, OpResult, int]:
    """Prime+Probe trojan: one access evicts one way of the spy's set."""
    yield from wait_until(timer, start_time)
    for index, bit in enumerate(bits):
        if bit == 1:
            yield Access(conflict_address)
            yield Flush(conflict_address)
            yield Fence()
        yield from wait_until(timer, start_time + (index + 1) * window_cycles)
    return len(bits)


def _idle_probe_body(
    eviction_set: Sequence[int],
    timer: TimerMechanism,
    samples: int,
    out: List[float],
) -> Generator[Operation, OpResult, None]:
    """Baseline probe times with no trojan activity (threshold calibration)."""
    for vaddr in eviction_set:
        yield Access(vaddr)
        yield Flush(vaddr)
    yield Fence()
    for _ in range(samples):
        elapsed = yield from _probe_set_body(eviction_set, timer)
        out.append(elapsed)
        yield Busy(2000)


@dataclass
class PrimeProbeResult:
    """One Prime+Probe transmission's record (mirrors ChannelResult)."""

    sent: List[int]
    received: List[int]
    probe_times: List[float]
    window_cycles: int
    clock_hz: float
    threshold: float
    idle_probe_times: List[float]
    metrics: ChannelMetrics = field(init=False)

    def __post_init__(self) -> None:
        self.metrics = ChannelMetrics.from_bits(
            self.sent, self.received, self.window_cycles, self.clock_hz
        )


class PrimeProbeChannel:
    """Prime+Probe over the MEE cache, spy-holds-the-set (the paper's
    Section 5.2 strawman)."""

    def __init__(self, machine, config: Optional[ChannelConfig] = None):
        self.machine = machine
        self.config = config if config is not None else ChannelConfig()
        timers = machine.config.timers
        self.spy_timer = CounterThreadTimer(timers.counter_thread_read_cycles)
        self.trojan_timer = CounterThreadTimer(timers.counter_thread_read_cycles)

        self.spy_space = machine.new_address_space("pp-spy-proc")
        self.trojan_space = machine.new_address_space("pp-trojan-proc")
        self.spy_enclave = machine.create_enclave("pp-spy-enclave", self.spy_space)
        self.trojan_enclave = machine.create_enclave("pp-trojan-enclave", self.trojan_space)

        self.calibration = None
        self.eviction_result = None
        self.conflict_address: Optional[int] = None
        self.threshold: Optional[float] = None
        self.idle_probe_times: List[float] = []

    def setup(self) -> None:
        """Spy builds the eviction set; trojan finds a conflicting address."""
        config = self.config
        self.calibration = calibrate_classifier(
            self.machine,
            self.spy_space,
            self.spy_enclave,
            self.spy_timer,
            samples=config.calibration_samples,
            core=config.spy_core,
        )
        classifier = self.calibration.classifier

        candidates = allocate_candidate_pages(
            self.spy_enclave, config.candidate_pool, config.unit
        )
        self.eviction_result = find_eviction_set(
            self.machine,
            self.spy_space,
            self.spy_enclave,
            candidates,
            self.spy_timer,
            classifier,
            repeats=config.repeats,
            core=config.spy_core,
        )

        # Roles swapped vs. the MEE channel: the *spy* sweeps its set while
        # the *trojan* hunts for an address the set evicts.
        trojan_candidates = allocate_candidate_pages(
            self.trojan_enclave, config.monitor_candidates, config.unit
        )
        search = find_monitor_address(
            self.machine,
            self.trojan_space,
            self.trojan_enclave,
            self.spy_space,
            self.spy_enclave,
            self.eviction_result.eviction_set,
            trojan_candidates,
            self.trojan_timer,
            classifier,
            trials=config.monitor_trials,
            spy_core=config.trojan_core,
            trojan_core=config.spy_core,
        )
        self.conflict_address = search.monitor

        # Threshold: idle probe baseline + half the single-miss delta.
        idle: List[float] = []
        self.machine.spawn(
            "pp-idle-calibration",
            _idle_probe_body(self.eviction_result.eviction_set, self.spy_timer, 32, idle),
            core=config.spy_core,
            space=self.spy_space,
            enclave=self.spy_enclave,
        )
        self.machine.run()
        self.idle_probe_times = idle
        delta = self.calibration.classifier.miss_estimate - (
            self.calibration.classifier.hit_estimate
        )
        self.threshold = float(np.median(idle) + delta / 2.0)

    def transmit(
        self, bits: Sequence[int], window_cycles: Optional[int] = None
    ) -> PrimeProbeResult:
        """Send ``bits`` and return the (badly) decoded stream."""
        if self.threshold is None or self.conflict_address is None:
            raise ChannelError("call setup() before transmit()")
        config = self.config
        window = window_cycles if window_cycles is not None else config.window_cycles
        start_time = self.machine.now + config.start_slack_cycles

        probe_times: List[float] = []
        received: List[int] = []
        self.machine.spawn(
            "pp-trojan",
            pp_trojan_body(
                list(bits), self.conflict_address, start_time, window, self.trojan_timer
            ),
            core=config.trojan_core,
            space=self.trojan_space,
            enclave=self.trojan_enclave,
        )
        self.machine.spawn(
            "pp-spy",
            pp_spy_body(
                len(bits),
                list(self.eviction_result.eviction_set),
                start_time,
                window,
                config.probe_margin,
                self.spy_timer,
                self.threshold,
                probe_times,
                received,
            ),
            core=config.spy_core,
            space=self.spy_space,
            enclave=self.spy_enclave,
        )
        self.machine.run()
        return PrimeProbeResult(
            sent=list(bits),
            received=received,
            probe_times=probe_times,
            window_cycles=window,
            clock_hz=self.machine.config.clock_hz,
            threshold=self.threshold,
            idle_probe_times=list(self.idle_probe_times),
        )


def run_prime_probe_channel(
    machine, bits: Sequence[int], config: Optional[ChannelConfig] = None
) -> PrimeProbeResult:
    """Convenience wrapper: setup + one transmission."""
    channel = PrimeProbeChannel(machine, config=config)
    channel.setup()
    return channel.transmit(bits)
