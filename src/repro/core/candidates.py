"""Candidate address sets (paper Section 4 / Figure 3).

A *candidate address set* is a set of virtual addresses that can load their
versions data into the same *index set*: virtual addresses at a 4 KB stride
sharing the same 512 B unit within their page.  Which *actual* MEE-cache
set each one lands in depends on the (unknown to the attacker) physical
frame, so candidate sets are the raw material both for the capacity probe
(Figure 4) and for Algorithm 1's eviction-set search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChannelError
from ..mem.paging import MappedRegion
from ..sgx.enclave import Enclave
from ..units import CHUNK_SIZE, CHUNKS_PER_PAGE, PAGE_SIZE

__all__ = ["CandidateAddressSet", "allocate_candidate_pages"]


@dataclass(frozen=True)
class CandidateAddressSet:
    """Virtual addresses with 4 KB stride and a common in-page 512 B unit.

    Attributes:
        unit: the agreed 512 B unit within each 4 KB page (0..7) — the
            paper's "same index in consecutive versions data region".
        addresses: one virtual address per page, at that unit's offset.
    """

    unit: int
    addresses: tuple

    def __post_init__(self) -> None:
        if not 0 <= self.unit < CHUNKS_PER_PAGE:
            raise ChannelError(f"unit must be 0..7, got {self.unit}")
        for vaddr in self.addresses:
            if (vaddr % PAGE_SIZE) // CHUNK_SIZE != self.unit:
                raise ChannelError(
                    f"address {vaddr:#x} does not sit on unit {self.unit}"
                )

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self):
        return iter(self.addresses)

    def subset(self, count: int) -> "CandidateAddressSet":
        """The first ``count`` candidates (capacity sweeps use prefixes)."""
        if count > len(self.addresses):
            raise ChannelError(
                f"requested {count} candidates, only {len(self.addresses)} available"
            )
        return CandidateAddressSet(unit=self.unit, addresses=self.addresses[:count])

    @classmethod
    def from_region(
        cls, region: MappedRegion, unit: int, count: int = None
    ) -> "CandidateAddressSet":
        """Build candidates from every page of ``region`` at ``unit``."""
        pages = region.size // PAGE_SIZE
        if count is None:
            count = pages
        if count > pages:
            raise ChannelError(f"region has {pages} pages, need {count}")
        addresses = tuple(
            region.base + page * PAGE_SIZE + unit * CHUNK_SIZE for page in range(count)
        )
        return cls(unit=unit, addresses=addresses)


def allocate_candidate_pages(
    enclave: Enclave, pages: int, unit: int
) -> CandidateAddressSet:
    """Allocate ``pages`` enclave pages and derive their candidate set.

    Returns:
        A :class:`CandidateAddressSet` with one address per fresh page.
    """
    region = enclave.alloc(pages * PAGE_SIZE)
    return CandidateAddressSet.from_region(region, unit=unit, count=pages)
