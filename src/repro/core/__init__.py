"""The paper's contribution: the MEE-cache covert channel.

Everything in this package plays by attacker rules: it observes only the
latencies of its own operations (via the Figure 2 timers) and the agreed
parameters of the protocol — never the simulator's ground-truth state.

Modules map to the paper's sections:

* :mod:`~repro.core.latency` — latency classification (Figure 5),
* :mod:`~repro.core.candidates` — candidate address sets (Section 4),
* :mod:`~repro.core.reverse_engineering` — capacity probing (Figure 4) and
  Algorithm 1 (eviction sets / associativity),
* :mod:`~repro.core.monitor` — the spy's monitor-address discovery,
* :mod:`~repro.core.channel` — Algorithm 2, the working covert channel,
* :mod:`~repro.core.primeprobe` — the failing Prime+Probe baseline
  (Figure 6a),
* :mod:`~repro.core.encoding` / :mod:`~repro.core.ecc` — payload framing
  and error-correcting extensions,
* :mod:`~repro.core.metrics` — bit-rate / error-rate accounting.
"""

from .adaptive import (
    AdaptiveCodeRateConfig,
    AdaptiveCodeRateController,
    AdaptiveWindowConfig,
    AdaptiveWindowController,
)
from .candidates import CandidateAddressSet, allocate_candidate_pages
from .channel import (
    ChannelConfig,
    ChannelResult,
    CovertChannel,
    spy_body,
    trojan_body,
    wait_until,
)
from .encoding import (
    alternating_bits,
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    pattern_100100,
    text_to_bits,
)
from .ecc import (
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
    secded84_decode,
    secded84_encode,
)
from .latency import (
    LatencyCalibration,
    SoftBit,
    ThresholdClassifier,
    calibrate_classifier,
)
from .metrics import ChannelMetrics, RobustnessMetrics, bit_error_rate, bit_rate_kbps
from .monitor import find_monitor_address
from .multichannel import MultiChannel, MultiChannelResult, lane_window_cycles
from .protocol import SEQ_MODULUS, DecodedFrame, FrameCodec, crc16_ccitt
from .primeprobe import PrimeProbeResult, run_prime_probe_channel
from .selfheal import (
    FrameAttempt,
    SelfHealingChannel,
    SelfHealingConfig,
    SelfHealingResult,
)
from .reverse_engineering import (
    EvictionSetResult,
    capacity_experiment,
    eviction_test,
    find_eviction_set,
)

__all__ = [
    "AdaptiveCodeRateConfig",
    "AdaptiveCodeRateController",
    "AdaptiveWindowConfig",
    "AdaptiveWindowController",
    "CandidateAddressSet",
    "ChannelConfig",
    "ChannelMetrics",
    "DecodedFrame",
    "FrameAttempt",
    "FrameCodec",
    "crc16_ccitt",
    "ChannelResult",
    "CovertChannel",
    "EvictionSetResult",
    "LatencyCalibration",
    "MultiChannel",
    "MultiChannelResult",
    "PrimeProbeResult",
    "RobustnessMetrics",
    "SEQ_MODULUS",
    "SelfHealingChannel",
    "SelfHealingConfig",
    "SelfHealingResult",
    "SoftBit",
    "ThresholdClassifier",
    "lane_window_cycles",
    "allocate_candidate_pages",
    "alternating_bits",
    "bit_error_rate",
    "bit_rate_kbps",
    "bits_to_bytes",
    "bits_to_text",
    "bytes_to_bits",
    "calibrate_classifier",
    "capacity_experiment",
    "eviction_test",
    "find_eviction_set",
    "find_monitor_address",
    "hamming74_decode",
    "hamming74_encode",
    "pattern_100100",
    "repetition_decode",
    "repetition_encode",
    "run_prime_probe_channel",
    "secded84_decode",
    "secded84_encode",
    "spy_body",
    "text_to_bits",
    "trojan_body",
    "wait_until",
]
