"""Reverse engineering the MEE cache (paper Section 4).

Two procedures, both built on the *eviction test* of Algorithm 1:

* the **capacity probe** (Figure 4): grow a candidate address set until
  accessing all of it reliably evicts a victim's versions data; the paper
  reaches 100% eviction probability at 64 addresses and infers
  ``64 × (16 × 64 B) = 64 KB``;
* **Algorithm 1** (associativity): split an *index address set* out of the
  candidates, then peel it down to the *eviction address set* — the
  addresses mapping to one cache set — whose size is the way count (8).

One deliberate refinement over the paper's pseudocode: every eviction
sweep accesses the address set forward *and* backward.  The paper itself
establishes (Section 5.3) that the MEE cache's approximate-LRU replacement
makes single-direction sweeps unreliable; its channel uses two-phase
eviction, and the same is needed here for the discovery loops to converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Sequence

import numpy as np

from ..errors import ChannelError
from ..sgx.timing import TimerMechanism, measured_access
from ..sim.ops import Access, Fence, Flush, Operation, OpResult
from .candidates import CandidateAddressSet
from .latency import ThresholdClassifier

__all__ = [
    "eviction_test",
    "sweep_addresses",
    "capacity_experiment",
    "CapacityCurve",
    "find_eviction_set",
    "EvictionSetResult",
]


def sweep_addresses(
    addresses: Sequence[int], two_phase: bool = True, rotation: int = 0
) -> Generator[Operation, OpResult, None]:
    """Access+flush every address, forward then (optionally) backward.

    This is the trojan's eviction primitive (Algorithm 2) and the inner
    loop of every reverse-engineering sweep.

    ``rotation`` cyclically shifts the sweep order.  Pseudo-LRU victim
    selection is deterministic in the access order, and a *fixed* order can
    settle into a replacement cycle that permanently spares the one line
    the sweep is supposed to evict; varying the rotation from sweep to
    sweep breaks such cycles while preserving the two-phase eviction
    guarantee (every address is still touched twice per sweep).
    """
    if rotation and addresses:
        shift = rotation % len(addresses)
        addresses = list(addresses[shift:]) + list(addresses[:shift])
    for vaddr in addresses:
        yield Access(vaddr)
        yield Flush(vaddr)
    yield Fence()
    if two_phase:
        for vaddr in reversed(addresses):
            yield Access(vaddr)
            yield Flush(vaddr)
        yield Fence()


def eviction_test(
    address_set: Sequence[int],
    victim: int,
    timer: TimerMechanism,
    two_phase: bool = True,
) -> Generator[Operation, OpResult, float]:
    """Algorithm 1's ``eviction test``: prime victim, sweep set, time victim.

    Returns:
        The measured victim re-access latency in cycles.  A versions-hit
        class latency means the set did *not* evict the victim.
    """
    yield Access(victim)
    yield Flush(victim)
    yield Fence()
    yield from sweep_addresses(address_set, two_phase=two_phase)
    elapsed = yield from measured_access(timer, victim, flush_after=True)
    return float(elapsed)


# --------------------------------------------------------------------------
# Capacity probe (Figure 4)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CapacityCurve:
    """Eviction probability as a function of candidate-set size."""

    sizes: tuple
    probabilities: tuple
    trials: int

    def saturation_size(self, level: float = 0.99) -> int:
        """Smallest candidate count whose eviction probability >= level."""
        for size, probability in zip(self.sizes, self.probabilities):
            if probability >= level:
                return size
        raise ChannelError(f"no candidate count reached {level:.0%} eviction")

    def inferred_capacity_bytes(self, level: float = 0.99) -> int:
        """Paper Section 4.1 arithmetic: N_sat × (16 × 64 B)."""
        return self.saturation_size(level) * 16 * 64


def _capacity_trial_body(
    candidates: CandidateAddressSet,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    out: List[bool],
) -> Generator[Operation, OpResult, None]:
    """One Figure 4 trial.

    Paper Section 4.1: access *all* of the candidate addresses, then check
    whether at least one candidate's versions data was evicted — which
    must happen once the set's versions footprint exceeds what the MEE
    cache can hold.  Each candidate is re-accessed once through the timer;
    any versions-miss classification counts the trial as an eviction.
    """
    for vaddr in candidates:
        yield Access(vaddr)
        yield Flush(vaddr)
    yield Fence()
    evicted = False
    for vaddr in candidates:
        elapsed = yield from measured_access(timer, vaddr, flush_after=True)
        if classifier.is_miss(elapsed):
            evicted = True
    out.append(evicted)


def capacity_experiment(
    machine,
    space,
    enclave,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    sizes: Iterable[int] = (2, 4, 8, 16, 32, 64),
    trials: int = 100,
    unit: int = 3,
    core: int = 0,
) -> CapacityCurve:
    """Reproduce Figure 4: eviction probability vs. candidate-set size.

    Every trial draws ``size`` fresh candidate pages (new physical frames —
    frame placement is the random variable the probability is over),
    accesses them all, and checks whether any candidate's versions data
    fell out of the MEE cache.
    """
    sizes = tuple(sizes)
    probabilities: List[float] = []
    for size in sizes:
        evictions: List[bool] = []
        for trial in range(trials):
            region = enclave.alloc(size * 4096)
            candidates = CandidateAddressSet.from_region(region, unit=unit)
            machine.spawn(
                f"cap-{size}-{trial}",
                _capacity_trial_body(candidates, timer, classifier, evictions),
                core=core,
                space=space,
                enclave=enclave,
            )
            machine.run()
            space.munmap(region)
        probabilities.append(sum(evictions) / len(evictions))
    return CapacityCurve(sizes=sizes, probabilities=tuple(probabilities), trials=trials)


# --------------------------------------------------------------------------
# Algorithm 1: eviction address set / associativity
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EvictionSetResult:
    """Output of Algorithm 1."""

    eviction_set: tuple
    index_set_size: int
    test_address: int

    @property
    def associativity(self) -> int:
        """The discovered way count = |eviction address set|."""
        return len(self.eviction_set)


def peel_repeats(repeats: int) -> int:
    """Survival attempts per peel-down target (one extra over ``repeats``)."""
    return max(repeats + 1, 2)


def _classify_repeated(
    address_set: Sequence[int],
    victim: int,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    repeats: int,
) -> Generator[Operation, OpResult, bool]:
    """Median-of-``repeats`` eviction test; True when victim was evicted."""
    samples: List[float] = []
    for _ in range(repeats):
        elapsed = yield from eviction_test(address_set, victim, timer)
        samples.append(elapsed)
    return classifier.is_miss(float(np.median(samples)))


def algorithm1_body(
    candidates: CandidateAddressSet,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    result_out: List[EvictionSetResult],
    repeats: int = 3,
) -> Generator[Operation, OpResult, None]:
    """Algorithm 1 as a single simulated process.

    Phase 1 (paper lines 13–18): build the *index address set* — candidates
    not evicted by the set collected so far.  Phase 2 (lines 19–23): find a
    *test address* among the leftovers that the index set does evict.
    Phase 3 (lines 24–32): drop index-set members one at a time; members
    whose removal lets the test address survive form the eviction set.
    """
    index_set: List[int] = []
    for candidate in candidates:
        evicted = yield from _classify_repeated(
            index_set, candidate, timer, classifier, repeats
        )
        if not evicted:
            index_set.append(candidate)

    leftovers = [vaddr for vaddr in candidates if vaddr not in set(index_set)]
    test_address = None
    for test in leftovers:
        yield from sweep_addresses(index_set)
        evicted = yield from _classify_repeated(
            index_set, test, timer, classifier, repeats
        )
        if evicted:
            test_address = test
            break
    if test_address is None:
        raise ChannelError(
            "Algorithm 1 found no test address: candidate pool too small "
            "to overflow any MEE cache set"
        )

    # Peel-down refinements over the paper's pseudocode (both forced by the
    # approximate-LRU replacement the paper itself identifies in §5.3):
    #
    # * pre-sweep the *reduced* set rather than the full index set, so the
    #   in-set case leaves a free way for the test address and the
    #   measurement sweep runs without replacement churn;
    # * across repeats, *rotate* the sweep order.  Pseudo-LRU victim
    #   selection is deterministic in the access order and can settle into
    #   a cycle that keeps spuriously evicting the test address for
    #   specific targets; cyclic shifts break those cycles while — unlike
    #   arbitrary shuffles — still reliably flushing a never-retouched
    #   line out of a 9-lines-into-8-ways conflict.
    #
    # The residual noise is one-sided (churn can only fake "evicted", never
    # "survived"), so any survival across the repeats confirms membership.
    eviction_set: List[int] = []
    for target in index_set:
        reduced = [vaddr for vaddr in index_set if vaddr != target]
        for attempt in range(peel_repeats(repeats)):
            shift = (attempt * 17) % max(len(reduced), 1)
            order = reduced[shift:] + reduced[:shift]
            yield from sweep_addresses(order)
            elapsed = yield from eviction_test(order, test_address, timer)
            if not classifier.is_miss(elapsed):
                eviction_set.append(target)
                break

    result_out.append(
        EvictionSetResult(
            eviction_set=tuple(eviction_set),
            index_set_size=len(index_set),
            test_address=test_address,
        )
    )


def find_eviction_set(
    machine,
    space,
    enclave,
    candidates: CandidateAddressSet,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    repeats: int = 3,
    core: int = 0,
) -> EvictionSetResult:
    """Run Algorithm 1 on the machine and return the eviction set.

    The candidate pool should be comfortably larger than the suspected
    capacity slice (the paper uses >= 64; 96–128 is robust).
    """
    results: List[EvictionSetResult] = []
    machine.spawn(
        "algorithm1",
        algorithm1_body(candidates, timer, classifier, results, repeats=repeats),
        core=core,
        space=space,
        enclave=enclave,
    )
    machine.run()
    if not results:
        raise ChannelError("Algorithm 1 process did not produce a result")
    return results[0]
