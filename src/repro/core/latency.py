"""Latency classification: turning measured cycles into hit/miss verdicts.

The channel decodes bits from the ~300-cycle gap between a versions-data
hit (~480 cycles) and a versions-data miss (~750 cycles) when accessing
protected memory (paper Figure 5 / Section 5.4).  Attack code measures
with a :class:`~repro.sgx.timing.TimerMechanism`, so every sample carries
the timer's own overhead; classification therefore calibrates on samples
measured *the same way* the channel will measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

import numpy as np

from ..mem.paging import MappedRegion
from ..sgx.timing import TimerMechanism, measured_access
from ..sim.ops import Access, Flush, Operation, OpResult
from ..units import PAGE_SIZE

__all__ = [
    "ThresholdClassifier",
    "SoftBit",
    "LatencyCalibration",
    "calibrate_classifier",
]


@dataclass(frozen=True)
class ThresholdClassifier:
    """Versions hit/miss decision by a single threshold.

    ``measured <= threshold`` → versions hit (bit 0); otherwise miss
    (bit 1), per paper Section 5.4 (≈480 vs ≈750 cycles).
    """

    threshold: float
    hit_estimate: float
    miss_estimate: float

    def is_miss(self, measured: float) -> bool:
        """True when ``measured`` indicates a versions-data miss."""
        return measured > self.threshold

    def decode_bit(self, measured: float) -> int:
        """Bit value: trojan eviction (miss) encodes '1'."""
        return 1 if self.is_miss(measured) else 0

    def confidence(self, measured: float) -> float:
        """Soft-decision confidence in [0, 1] for one probe.

        The hard decision only keeps the *sign* of the latency margin;
        the margin's magnitude is the demodulator's best evidence of
        reliability.  A probe landing on the calibrated hit (~480 cycles)
        or miss (~750 cycles) estimate scores 1.0; one landing exactly on
        the threshold — where an interrupt slip or a partially-completed
        eviction parks it — scores 0.0.  Erasure-aware decoders
        (:mod:`repro.coding`) treat low-confidence bits as erasures,
        which cost a Reed-Solomon codeword half the budget of an
        unlocated error.
        """
        half_gap = (self.miss_estimate - self.hit_estimate) / 2.0
        if half_gap <= 0:
            return 1.0
        return min(abs(measured - self.threshold) / half_gap, 1.0)

    def soft_decode(self, measured: float) -> "SoftBit":
        """Hard bit plus its confidence, as one record."""
        return SoftBit(bit=self.decode_bit(measured), confidence=self.confidence(measured))


@dataclass(frozen=True)
class SoftBit:
    """One demodulated bit with its soft-decision confidence."""

    bit: int
    confidence: float


@dataclass(frozen=True)
class LatencyCalibration:
    """Raw calibration samples plus the classifier derived from them."""

    hit_samples: tuple
    miss_samples: tuple
    classifier: ThresholdClassifier

    @property
    def separation(self) -> float:
        """Gap between the miss and hit means — paper quotes ≥ ~300 cycles."""
        return self.classifier.miss_estimate - self.classifier.hit_estimate


def calibration_body(
    region: MappedRegion,
    timer: TimerMechanism,
    hit_out: List[float],
    miss_out: List[float],
    samples: int = 64,
) -> Generator[Operation, OpResult, None]:
    """Process body that collects hit-side and miss-side latency samples.

    Hit side: access the same chunk twice, flushing the data line between —
    the second access finds its versions node in the MEE cache.  Miss side:
    the first touch of a fresh 512 B chunk inside a page whose L0 node was
    just warmed — a versions miss that stops at L0, which is exactly the
    latency class a trojan eviction produces (paper Section 5.4, ≈750
    cycles).  Both are measured through ``timer`` exactly like channel
    probes will be.
    """
    pages = region.size // PAGE_SIZE
    miss_pages_needed = (samples + 6) // 7
    if pages < miss_pages_needed + 2:
        raise ValueError(f"region too small: {pages} pages for {samples} samples")

    # Warm + measure hits on one chunk.
    warm = region.base
    yield Access(warm)
    yield Flush(warm)
    for _ in range(samples):
        elapsed = yield from measured_access(timer, warm, flush_after=True)
        hit_out.append(float(elapsed))

    # Versions-miss / L0-hit samples: warm a page's L0 via its first chunk,
    # then measure the first touch of each remaining chunk.
    for page in range(1, miss_pages_needed + 1):
        page_vaddr = region.base + page * PAGE_SIZE
        yield Access(page_vaddr)
        yield Flush(page_vaddr)
        for unit in range(1, 8):
            if len(miss_out) >= samples:
                return
            vaddr = page_vaddr + unit * 512
            elapsed = yield from measured_access(timer, vaddr, flush_after=True)
            miss_out.append(float(elapsed))


def classifier_from_samples(
    hit_samples: Sequence[float], miss_samples: Sequence[float]
) -> ThresholdClassifier:
    """Midpoint threshold between robust hit/miss estimates.

    Medians are used because the miss side mixes several tree levels
    (L0/L1/L2/root) and DRAM tails skew means upward.
    """
    hit = float(np.median(hit_samples))
    miss = float(np.median(miss_samples))
    if miss <= hit:
        raise ValueError(
            f"calibration failed: miss estimate {miss:.0f} <= hit estimate {hit:.0f}"
        )
    return ThresholdClassifier(
        threshold=(hit + miss) / 2.0, hit_estimate=hit, miss_estimate=miss
    )


def calibrate_classifier(
    machine,
    space,
    enclave,
    timer: TimerMechanism,
    samples: int = 64,
    core: int = 0,
) -> LatencyCalibration:
    """Run a calibration process on ``machine`` and build the classifier.

    Allocates a scratch enclave region, measures ``samples`` hit and miss
    latencies through ``timer``, and returns the calibration.
    """
    region = enclave.alloc((samples + 2) * PAGE_SIZE)
    hits: List[float] = []
    misses: List[float] = []
    machine.spawn(
        "calibrate",
        calibration_body(region, timer, hits, misses, samples=samples),
        core=core,
        space=space,
        enclave=enclave,
    )
    machine.run()
    classifier = classifier_from_samples(hits, misses)
    return LatencyCalibration(
        hit_samples=tuple(hits), miss_samples=tuple(misses), classifier=classifier
    )
