"""Self-healing message delivery over the covert channel.

The raw channel of Algorithm 2 is a synchronous bit pipe: one bit per
window, no concept of a message surviving a desynchronization.  Under the
fault regimes of :mod:`repro.faults` (preemption storms, AEX trains, EPC
pressure) whole windows disappear and the paper's quiet-room operating
point stops being the right one.  This module layers delivery semantics on
top:

* messages are split into small frames, each carrying an 8-bit sequence
  number (:class:`~repro.core.protocol.FrameCodec` with
  ``sequence_numbers=True``) — the receiver can reorder duplicates from
  retransmissions and knows exactly which pieces are still missing;
* every frame is preceded by a quiet guard so the receiver re-locks the
  preamble by sliding correlation even when the previous frame ended in
  a desynchronized mess (re-lock positions are counted as *resyncs*);
* failed frames are retransmitted, and the timing window adapts through an
  :class:`~repro.core.adaptive.AdaptiveWindowController` — back off while
  the machine is hostile, return to the 15000-cycle operating point when
  it calms down;
* the whole exchange is summarized as
  :class:`~repro.core.metrics.RobustnessMetrics` (goodput, frame error
  rate, resyncs, time-to-recover) — the quantities the fault sweep plots.

Feedback assumption: the trojan learns per-frame delivery outcomes.  The
paper's scenario ships exfiltrated data onward through the spy, which
gives the pair an out-of-band acknowledgement path at frame granularity
(not per-bit); the controller only consumes that one bit per frame, and
both endpoints derive identical window schedules from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ChannelError
from .adaptive import AdaptiveWindowConfig, AdaptiveWindowController
from .channel import CovertChannel
from .metrics import RobustnessMetrics
from .protocol import SEQ_MODULUS, FrameCodec

__all__ = [
    "SelfHealingConfig",
    "FrameAttempt",
    "SelfHealingResult",
    "SelfHealingChannel",
]


@dataclass(frozen=True)
class SelfHealingConfig:
    """Delivery-layer parameters."""

    #: payload bytes per frame (small frames localize fault damage)
    frame_payload_bytes: int = 8
    #: give up on a frame after this many transmissions; generous because
    #: ambient bit noise alone fails a fair share of frames and clears on
    #: retry (the window controller only pays for *persistent* failure)
    max_attempts_per_frame: int = 10
    #: quiet windows before each frame's preamble (re-lock guard)
    guard_windows: int = 6
    #: extra windows past a frame's nominal end before the run is cut off
    deadline_slack_windows: int = 40
    #: adaptive-controller knobs (base/max window, backoff, recovery)
    adaptive: AdaptiveWindowConfig = AdaptiveWindowConfig()
    #: set to pin a fixed window instead of adapting (the ablation the
    #: fault sweep compares against)
    fixed_window_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.frame_payload_bytes < 1:
            raise ChannelError("frames need at least one payload byte")
        if self.max_attempts_per_frame < 1:
            raise ChannelError("need at least one attempt per frame")
        if self.guard_windows < 0 or self.deadline_slack_windows < 1:
            raise ChannelError("guard/deadline windows out of range")


@dataclass(frozen=True)
class FrameAttempt:
    """One transmission of one frame."""

    seq: int
    attempt: int  # 1 = first transmission
    window_cycles: int
    delivered: bool
    resynced: bool  # preamble re-locked away from the nominal position
    bit_errors: int  # raw channel errors in this frame's stream
    truncated_bits: int  # spy probes cut off by the deadline
    start_cycle: float
    end_cycle: float


@dataclass
class SelfHealingResult:
    """Full record of one self-healing message delivery."""

    payload: bytes
    recovered: bytes
    attempts: List[FrameAttempt]
    metrics: RobustnessMetrics
    #: (window, delivered) history of the controller (empty when fixed)
    window_history: List[tuple] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        """True when the message arrived intact and complete."""
        return self.recovered == self.payload


class SelfHealingChannel:
    """Frame-level reliable delivery on top of a ready :class:`CovertChannel`.

    Typical use::

        machine, channel = build_ready_channel(seed=7)
        machine.inject_faults(plan)
        healer = SelfHealingChannel(channel)
        result = healer.send(b"key=0x2b7e1516")
        print(result.metrics.goodput_kbps, result.metrics.resyncs)
    """

    def __init__(self, channel: CovertChannel, config: Optional[SelfHealingConfig] = None):
        if not channel.is_ready:
            raise ChannelError("SelfHealingChannel needs a set-up CovertChannel")
        self.channel = channel
        self.config = config if config is not None else SelfHealingConfig()
        self.codec = FrameCodec(
            sequence_numbers=True,
            max_payload_bytes=self.config.frame_payload_bytes,
        )

    def _chunks(self, payload: bytes) -> List[bytes]:
        size = self.config.frame_payload_bytes
        return [payload[i : i + size] for i in range(0, len(payload), size)]

    def send(self, payload: bytes) -> SelfHealingResult:
        """Deliver ``payload``; returns the recovered bytes + degradation
        metrics.  Missing frames (attempts exhausted) are dropped from the
        recovered message rather than aborting the rest."""
        config = self.config
        machine = self.channel.machine
        controller = AdaptiveWindowController(config.adaptive)
        attempts: List[FrameAttempt] = []
        recovered_chunks: List[Optional[bytes]] = []
        recover_samples: List[float] = []
        pending_failure_at: Optional[float] = None
        resyncs = 0
        started = machine.now

        for index, chunk in enumerate(self._chunks(payload)):
            seq = index % SEQ_MODULUS
            frame_bits = self.codec.encode(chunk, seq=seq)
            delivered_chunk: Optional[bytes] = None
            for attempt in range(1, config.max_attempts_per_frame + 1):
                window = (
                    config.fixed_window_cycles
                    if config.fixed_window_cycles is not None
                    else controller.window_cycles
                )
                stream = [0] * config.guard_windows + frame_bits
                start_cycle = machine.now
                result = self.channel.transmit(
                    stream,
                    window_cycles=window,
                    deadline_slack_windows=config.deadline_slack_windows,
                )
                frames = self.codec.decode_stream(result.received)
                match = next(
                    (f for f in frames if f.crc_ok and f.seq == seq), None
                )
                delivered = match is not None
                resynced = delivered and match.start_index != config.guard_windows
                if resynced:
                    resyncs += 1
                end_cycle = machine.now
                attempts.append(
                    FrameAttempt(
                        seq=seq,
                        attempt=attempt,
                        window_cycles=window,
                        delivered=delivered,
                        resynced=resynced,
                        bit_errors=result.metrics.errors,
                        truncated_bits=result.truncated,
                        start_cycle=start_cycle,
                        end_cycle=end_cycle,
                    )
                )
                if config.fixed_window_cycles is None:
                    controller.record_frame(delivered)
                if delivered:
                    if pending_failure_at is not None:
                        recover_samples.append(end_cycle - pending_failure_at)
                        pending_failure_at = None
                    delivered_chunk = match.payload
                    break
                if pending_failure_at is None:
                    pending_failure_at = start_cycle
            recovered_chunks.append(delivered_chunk)

        delivered_frames = sum(1 for chunk in recovered_chunks if chunk is not None)
        recovered = b"".join(chunk for chunk in recovered_chunks if chunk is not None)
        metrics = RobustnessMetrics(
            payload_bytes=len(payload),
            delivered_bytes=len(recovered),
            frames_attempted=len(attempts),
            frames_delivered=delivered_frames,
            retransmissions=len(attempts) - len(recovered_chunks),
            resyncs=resyncs,
            elapsed_cycles=machine.now - started,
            time_to_recover_cycles=(
                float(sum(recover_samples) / len(recover_samples))
                if recover_samples
                else math.nan
            ),
            clock_hz=machine.config.clock_hz,
        )
        return SelfHealingResult(
            payload=payload,
            recovered=recovered,
            attempts=attempts,
            metrics=metrics,
            window_history=list(controller.history),
        )
