"""Self-healing message delivery over the covert channel.

The raw channel of Algorithm 2 is a synchronous bit pipe: one bit per
window, no concept of a message surviving a desynchronization.  Under the
fault regimes of :mod:`repro.faults` (preemption storms, AEX trains, EPC
pressure) whole windows disappear and the paper's quiet-room operating
point stops being the right one.  This module layers delivery semantics on
top:

* messages are split into small frames, each carrying an 8-bit sequence
  number (:class:`~repro.core.protocol.FrameCodec` with
  ``sequence_numbers=True``) — the receiver can reorder duplicates from
  retransmissions and knows exactly which pieces are still missing;
* every frame is preceded by a quiet guard so the receiver re-locks the
  preamble by sliding correlation even when the previous frame ended in
  a desynchronized mess (re-lock positions are counted as *resyncs*);
* failed frames are retransmitted, and the timing window adapts through an
  :class:`~repro.core.adaptive.AdaptiveWindowController` — back off while
  the machine is hostile, return to the 15000-cycle operating point when
  it calms down;
* the whole exchange is summarized as
  :class:`~repro.core.metrics.RobustnessMetrics` (goodput, frame error
  rate, resyncs, time-to-recover) — the quantities the fault sweep plots.

Feedback assumption: the trojan learns per-frame delivery outcomes.  The
paper's scenario ships exfiltrated data onward through the spy, which
gives the pair an out-of-band acknowledgement path at frame granularity
(not per-bit); the window controller only consumes that one bit per
frame, and both endpoints derive identical window schedules from it.
With adaptive coding the acknowledgement additionally carries the spy's
channel-quality digest (smoothed symbol-error and erasure rates from FEC
telemetry — a few bits per frame on the same out-of-band path), from
which both endpoints compute the same code-rate schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..errors import ChannelError
from .adaptive import (
    AdaptiveCodeRateConfig,
    AdaptiveCodeRateController,
    AdaptiveWindowConfig,
    AdaptiveWindowController,
)
from .channel import CovertChannel
from .metrics import RobustnessMetrics
from .protocol import SEQ_MODULUS, FrameCodec

if TYPE_CHECKING:  # repro.coding imports repro.core.ecc; resolve lazily
    from ..coding.stack import CodingProfile, CodingStack

__all__ = [
    "SelfHealingConfig",
    "FrameAttempt",
    "SelfHealingResult",
    "SelfHealingChannel",
]


@dataclass(frozen=True)
class SelfHealingConfig:
    """Delivery-layer parameters."""

    #: payload bytes per frame (small frames localize fault damage)
    frame_payload_bytes: int = 8
    #: give up on a frame after this many transmissions; generous because
    #: ambient bit noise alone fails a fair share of frames and clears on
    #: retry (the window controller only pays for *persistent* failure)
    max_attempts_per_frame: int = 10
    #: quiet windows before each frame's preamble (re-lock guard)
    guard_windows: int = 6
    #: extra windows past a frame's nominal end before the run is cut off
    deadline_slack_windows: int = 40
    #: adaptive-controller knobs (base/max window, backoff, recovery)
    adaptive: AdaptiveWindowConfig = AdaptiveWindowConfig()
    #: set to pin a fixed window instead of adapting (the ablation the
    #: fault sweep compares against)
    fixed_window_cycles: Optional[int] = None
    #: FEC applied inside each frame attempt — a profile name from
    #: :data:`repro.coding.PROFILES`, a
    #: :class:`~repro.coding.CodingProfile`, or None for the uncoded
    #: legacy path.  With coding, delivery is *hybrid ARQ*: the FEC
    #: absorbs what it can first, and the CRC-triggered retransmission
    #: loop only pays for residually corrupt frames.
    coding: Optional[Union[str, "CodingProfile"]] = None
    #: auto-select the code rate per frame by walking ``coding_ladder``
    #: with an :class:`~repro.core.adaptive.AdaptiveCodeRateController`
    #: fed by FEC-load telemetry (overrides ``coding``)
    adaptive_coding: bool = False
    #: ladder for adaptive coding, lightest rung first (names or
    #: profiles); None → :data:`repro.coding.DEFAULT_LADDER`
    coding_ladder: Optional[tuple] = None
    #: code-rate controller knobs
    adaptive_code_rate: AdaptiveCodeRateConfig = AdaptiveCodeRateConfig()

    def __post_init__(self) -> None:
        if self.frame_payload_bytes < 1:
            raise ChannelError("frames need at least one payload byte")
        if self.max_attempts_per_frame < 1:
            raise ChannelError("need at least one attempt per frame")
        if self.guard_windows < 0 or self.deadline_slack_windows < 1:
            raise ChannelError("guard/deadline windows out of range")
        if self.adaptive_coding and self.coding is not None:
            raise ChannelError(
                "adaptive_coding selects its own profile; leave coding=None"
            )


@dataclass(frozen=True)
class FrameAttempt:
    """One transmission of one frame."""

    seq: int
    attempt: int  # 1 = first transmission
    window_cycles: int
    delivered: bool
    resynced: bool  # preamble re-locked away from the nominal position
    bit_errors: int  # raw channel errors in this frame's stream
    truncated_bits: int  # spy probes cut off by the deadline
    start_cycle: float
    end_cycle: float
    #: coding profile this attempt used ("raw" = uncoded legacy path)
    profile: str = "raw"
    #: symbols/words the FEC repaired before the CRC check
    fec_corrected: int = 0
    #: soft-decision erasure flags the decoder consumed
    fec_erasures: int = 0
    #: False when some block exceeded its correction budget
    fec_ok: bool = True


@dataclass
class SelfHealingResult:
    """Full record of one self-healing message delivery."""

    payload: bytes
    recovered: bytes
    attempts: List[FrameAttempt]
    metrics: RobustnessMetrics
    #: (window, delivered) history of the controller (empty when fixed)
    window_history: List[tuple] = field(default_factory=list)
    #: (profile, delivered, fec_load) per attempt (empty when uncoded)
    coding_history: List[tuple] = field(default_factory=list)
    #: (symbol_error_rate, erasure_rate, frame_failure_rate) after each
    #: attempt, from the channel-quality estimator (empty when uncoded)
    quality_history: List[tuple] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        """True when the message arrived intact and complete."""
        return self.recovered == self.payload


class SelfHealingChannel:
    """Frame-level reliable delivery on top of a ready :class:`CovertChannel`.

    Typical use::

        machine, channel = build_ready_channel(seed=7)
        machine.inject_faults(plan)
        healer = SelfHealingChannel(channel)
        result = healer.send(b"key=0x2b7e1516")
        print(result.metrics.goodput_kbps, result.metrics.resyncs)
    """

    def __init__(self, channel: CovertChannel, config: Optional[SelfHealingConfig] = None):
        if not channel.is_ready:
            raise ChannelError("SelfHealingChannel needs a set-up CovertChannel")
        self.channel = channel
        self.config = config if config is not None else SelfHealingConfig()
        self.codec = FrameCodec(
            sequence_numbers=True,
            max_payload_bytes=self.config.frame_payload_bytes,
        )
        self._fixed_stack: Optional["CodingStack"] = None
        self.rate_controller: Optional[AdaptiveCodeRateController] = None
        if self.config.adaptive_coding:
            from ..coding.stack import DEFAULT_LADDER, CodingStack

            ladder = (
                self.config.coding_ladder
                if self.config.coding_ladder is not None
                else DEFAULT_LADDER
            )
            self.rate_controller = AdaptiveCodeRateController(
                [CodingStack(self._resolve(entry)) for entry in ladder],
                self.config.adaptive_code_rate,
            )
        elif self.config.coding is not None:
            from ..coding.stack import CodingStack

            self._fixed_stack = CodingStack(self._resolve(self.config.coding))

    @staticmethod
    def _resolve(profile: Union[str, "CodingProfile"]) -> "CodingProfile":
        from ..coding.stack import profile_by_name

        return profile_by_name(profile) if isinstance(profile, str) else profile

    @property
    def uses_coding(self) -> bool:
        """True when frames pass through a reliability stack."""
        return self._fixed_stack is not None or self.rate_controller is not None

    def _chunks(self, payload: bytes) -> List[bytes]:
        size = self.config.frame_payload_bytes
        return [payload[i : i + size] for i in range(0, len(payload), size)]

    def _fec_denominator(self, stack, wire_bits: int, frame_bits: int) -> int:
        """Units the estimator normalizes by: RS symbols / SECDED words
        (both 8 wire bits), repetition vote groups, or raw bits."""
        scheme = stack.profile.scheme if stack is not None else "raw"
        if scheme in ("rs", "secded"):
            return max(wire_bits // 8, 1)
        if scheme == "repetition":
            return frame_bits
        return wire_bits

    def send(self, payload: bytes) -> SelfHealingResult:
        """Deliver ``payload``; returns the recovered bytes + degradation
        metrics.  Missing frames (attempts exhausted) are dropped from the
        recovered message rather than aborting the rest.

        With a coding profile configured, delivery is *hybrid ARQ*: each
        attempt's frame bits pass through the FEC stack — the channel's
        soft-decision confidences feeding erasure flagging — before the
        frame CRC arbitrates, so the retransmission loop only pays for
        corruption the code could not absorb.
        """
        config = self.config
        machine = self.channel.machine
        controller = AdaptiveWindowController(config.adaptive)
        estimator = None
        rung_estimators: Dict[str, object] = {}
        if self.uses_coding:
            from ..coding.estimator import ChannelQualityEstimator

            estimator = ChannelQualityEstimator()
        attempts: List[FrameAttempt] = []
        recovered_chunks: List[Optional[bytes]] = []
        recover_samples: List[float] = []
        coding_history: List[Tuple[str, bool, float]] = []
        pending_failure_at: Optional[float] = None
        resyncs = 0
        fec_corrected_frames = 0
        arq_recovered_frames = 0
        started = machine.now

        for index, chunk in enumerate(self._chunks(payload)):
            seq = index % SEQ_MODULUS
            frame_bits = self.codec.encode(chunk, seq=seq)
            delivered_chunk: Optional[bytes] = None
            for attempt in range(1, config.max_attempts_per_frame + 1):
                window = (
                    config.fixed_window_cycles
                    if config.fixed_window_cycles is not None
                    else controller.window_cycles
                )
                stack = (
                    self.rate_controller.current
                    if self.rate_controller is not None
                    else self._fixed_stack
                )
                coded = stack is not None and stack.profile.scheme != "raw"
                wire = stack.encode(frame_bits) if coded else frame_bits
                stream = [0] * config.guard_windows + wire
                start_cycle = machine.now
                result = self.channel.transmit(
                    stream,
                    window_cycles=window,
                    deadline_slack_windows=config.deadline_slack_windows,
                )
                fec_corrected = fec_erasures = 0
                fec_ok = True
                if coded:
                    body = result.received[config.guard_windows :]
                    confidences = (
                        result.confidences[config.guard_windows :]
                        if result.confidences
                        else None
                    )
                    decoded = stack.decode(
                        body, data_bits=len(frame_bits), confidences=confidences
                    )
                    fec_corrected = decoded.corrected
                    fec_erasures = decoded.erasures_used
                    fec_ok = decoded.ok
                    frames = self.codec.decode_stream(decoded.bits)
                    expected_start = 0
                else:
                    frames = self.codec.decode_stream(result.received)
                    expected_start = config.guard_windows
                match = next(
                    (f for f in frames if f.crc_ok and f.seq == seq), None
                )
                delivered = match is not None
                resynced = delivered and match.start_index != expected_start
                if resynced:
                    resyncs += 1
                end_cycle = machine.now
                profile_name = stack.profile.name if stack is not None else "raw"
                attempts.append(
                    FrameAttempt(
                        seq=seq,
                        attempt=attempt,
                        window_cycles=window,
                        delivered=delivered,
                        resynced=resynced,
                        bit_errors=result.metrics.errors,
                        truncated_bits=result.truncated,
                        start_cycle=start_cycle,
                        end_cycle=end_cycle,
                        profile=profile_name,
                        fec_corrected=fec_corrected,
                        fec_erasures=fec_erasures,
                        fec_ok=fec_ok,
                    )
                )
                if config.fixed_window_cycles is None:
                    controller.record_frame(delivered)
                if estimator is not None:
                    from ..coding.estimator import ChannelQualityEstimator

                    denominator = self._fec_denominator(
                        stack, len(wire), len(frame_bits)
                    )
                    estimator.observe_frame(
                        symbols=denominator,
                        corrected=fec_corrected,
                        erasures=fec_erasures,
                        delivered=delivered,
                    )
                    # The load estimate normalizes damage against *this
                    # code's* correction budget, so each rung keeps its own
                    # estimator: saturated failure samples from a lighter
                    # code are not evidence about a heavier one, and
                    # carrying them over makes the controller overshoot
                    # the ladder and then refuse to come back down.
                    rung = rung_estimators.setdefault(
                        profile_name, ChannelQualityEstimator()
                    )
                    rung.observe_frame(
                        symbols=denominator,
                        corrected=fec_corrected,
                        erasures=fec_erasures,
                        delivered=delivered,
                    )
                    capacity = (
                        stack.correction_capacity(len(frame_bits))
                        if stack is not None
                        else 0
                    )
                    if capacity > 0:
                        load = min(
                            rung.symbol_error_rate * denominator / capacity,
                            1.0,
                        )
                    else:
                        # Uncoded rung: no correction budget to measure
                        # against; failures are the only stress signal.
                        load = rung.frame_failure_rate
                    coding_history.append((profile_name, delivered, load))
                    if self.rate_controller is not None:
                        # Rank every rung from the shared channel-quality
                        # estimate: predicted delivery probability per wire
                        # window (guard included).  The controller jumps to
                        # the most efficient rung instead of streak-walking,
                        # so it never dwells on rungs the telemetry already
                        # rules out.
                        q = estimator.symbol_error_rate
                        e = estimator.erasure_rate
                        scores = [
                            (
                                1.0
                                - rung_stack.predicted_frame_failure(
                                    len(frame_bits), q, e
                                )
                            )
                            * len(frame_bits)
                            / (
                                rung_stack.encoded_length(len(frame_bits))
                                + config.guard_windows
                            )
                            for rung_stack in self.rate_controller.ladder
                        ]
                        self.rate_controller.record_frame(
                            delivered, load, scores
                        )
                if delivered:
                    if pending_failure_at is not None:
                        recover_samples.append(end_cycle - pending_failure_at)
                        pending_failure_at = None
                    delivered_chunk = match.payload
                    break
                if pending_failure_at is None:
                    pending_failure_at = start_cycle
            recovered_chunks.append(delivered_chunk)
            if delivered_chunk is not None:
                final = attempts[-1]
                if final.attempt > 1:
                    arq_recovered_frames += 1
                elif final.fec_corrected > 0:
                    fec_corrected_frames += 1

        delivered_frames = sum(1 for chunk in recovered_chunks if chunk is not None)
        recovered = b"".join(chunk for chunk in recovered_chunks if chunk is not None)
        metrics = RobustnessMetrics(
            payload_bytes=len(payload),
            delivered_bytes=len(recovered),
            frames_attempted=len(attempts),
            frames_delivered=delivered_frames,
            retransmissions=len(attempts) - len(recovered_chunks),
            resyncs=resyncs,
            elapsed_cycles=machine.now - started,
            time_to_recover_cycles=(
                float(sum(recover_samples) / len(recover_samples))
                if recover_samples
                else math.nan
            ),
            clock_hz=machine.config.clock_hz,
            fec_corrected_frames=fec_corrected_frames,
            arq_recovered_frames=arq_recovered_frames,
        )
        return SelfHealingResult(
            payload=payload,
            recovered=recovered,
            attempts=attempts,
            metrics=metrics,
            window_history=list(controller.history),
            coding_history=coding_history,
            quality_history=list(estimator.history) if estimator is not None else [],
        )
