"""Framing for the covert channel: preamble, length, payload, CRC-16.

The paper reports raw bit rates "without any error handling"; a usable
exfiltration tool needs more: the spy must find where a message *starts*
in its decoded bit stream, know how long it is, and tell intact messages
from corrupted ones.  This module adds a minimal link layer:

``[preamble 16b] [length 16b] [seq 8b]? [header CRC-8 8b] [payload 8*N b] [CRC-16 16b]``

* the preamble (0xF0A5 — chosen for low self-similarity) is located by a
  sliding correlation that tolerates one bit error, so the spy needs no
  agreement on the message's position, only on the window grid;
* the length field carries its own CRC-8 — a flipped length bit would
  otherwise send the parser off past the end of the stream;
* an optional 8-bit sequence number (``FrameCodec(sequence_numbers=True)``)
  lets a receiver that lost lock tell retransmissions from fresh frames and
  reassemble a multi-frame message in order — the basis of the
  self-healing protocol in :mod:`~repro.core.selfheal`;
* CRC-16/CCITT over header+payload rejects corrupted frames;
* optional whole-frame repetition (see :mod:`~repro.core.ecc`) makes
  delivery robust at aggressive window sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ChannelError
from .encoding import bits_to_bytes, bytes_to_bits

__all__ = ["crc16_ccitt", "crc8", "FrameCodec", "DecodedFrame", "SEQ_MODULUS"]

#: default preamble: 1111000010100101
PREAMBLE = 0xF0A5
_PREAMBLE_BITS = 16
_LENGTH_BITS = 16
_SEQ_BITS = 8
_HEADER_CRC_BITS = 8
_CRC_BITS = 16
#: sequence numbers wrap at this modulus
SEQ_MODULUS = 1 << _SEQ_BITS


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc8(data: bytes, seed: int = 0x00) -> int:
    """CRC-8 (poly 0x07) — guards the frame header."""
    crc = seed
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x07) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def _int_to_bits(value: int, width: int) -> List[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


@dataclass(frozen=True)
class DecodedFrame:
    """One frame recovered from a bit stream."""

    payload: bytes
    crc_ok: bool
    start_index: int  # preamble position within the stream
    preamble_errors: int  # bit errors tolerated while locking
    #: sequence number, for codecs with ``sequence_numbers=True``
    seq: Optional[int] = None


class FrameCodec:
    """Encode payloads into frames; scan bit streams for frames.

    With ``sequence_numbers=True`` every frame carries an 8-bit sequence
    number (mod :data:`SEQ_MODULUS`), covered by both the header CRC-8 and
    the frame CRC-16.  The wire format is otherwise unchanged, but the two
    modes are incompatible — sender and receiver must agree, like they
    already agree on the preamble and window grid.
    """

    def __init__(
        self,
        preamble: int = PREAMBLE,
        max_payload_bytes: int = 4096,
        sequence_numbers: bool = False,
    ):
        self.preamble_bits = _int_to_bits(preamble, _PREAMBLE_BITS)
        self.max_payload_bytes = max_payload_bytes
        self.sequence_numbers = sequence_numbers

    # -- encode -----------------------------------------------------------

    def _header_bytes(self, length: int, seq: Optional[int]) -> bytes:
        length_bytes = length.to_bytes(2, "big")
        if self.sequence_numbers:
            return length_bytes + bytes([seq & (SEQ_MODULUS - 1)])
        return length_bytes

    def encode(self, payload: bytes, seq: Optional[int] = None) -> List[int]:
        """Frame ``payload`` as preamble + header + payload + CRC bits.

        Args:
            payload: frame contents.
            seq: sequence number (required iff the codec was built with
                ``sequence_numbers=True``; wraps mod :data:`SEQ_MODULUS`).
        """
        if len(payload) > self.max_payload_bytes:
            raise ChannelError(
                f"payload of {len(payload)} bytes exceeds cap {self.max_payload_bytes}"
            )
        if self.sequence_numbers and seq is None:
            raise ChannelError("this codec requires a sequence number")
        if not self.sequence_numbers and seq is not None:
            raise ChannelError("this codec does not carry sequence numbers")
        header = self._header_bytes(len(payload), seq)
        crc = crc16_ccitt(header + payload)
        bits: List[int] = []
        bits.extend(self.preamble_bits)
        bits.extend(bytes_to_bits(header))
        bits.extend(_int_to_bits(crc8(header), _HEADER_CRC_BITS))
        bits.extend(bytes_to_bits(payload))
        bits.extend(_int_to_bits(crc, _CRC_BITS))
        return bits

    def frame_length_bits(self, payload_bytes: int) -> int:
        """Total bits a frame with ``payload_bytes`` occupies on the wire."""
        return (
            _PREAMBLE_BITS
            + _LENGTH_BITS
            + (_SEQ_BITS if self.sequence_numbers else 0)
            + _HEADER_CRC_BITS
            + 8 * payload_bytes
            + _CRC_BITS
        )

    # -- decode -----------------------------------------------------------

    def _find_preamble(
        self, stream: Sequence[int], start: int, max_errors: int
    ) -> Optional[tuple]:
        """(index, errors) of the next preamble match at/after ``start``."""
        limit = len(stream) - _PREAMBLE_BITS
        for index in range(start, limit + 1):
            errors = sum(
                1
                for expected, actual in zip(
                    self.preamble_bits, stream[index : index + _PREAMBLE_BITS]
                )
                if expected != actual
            )
            if errors <= max_errors:
                return index, errors
        return None

    def decode_stream(
        self, stream: Sequence[int], max_preamble_errors: int = 1
    ) -> List[DecodedFrame]:
        """Scan a decoded bit stream for frames.

        Tolerates ``max_preamble_errors`` flipped bits while locking onto
        a preamble.  Frames whose CRC fails are still returned (flagged),
        because a receiver may want to request retransmission.
        """
        frames: List[DecodedFrame] = []
        cursor = 0
        while True:
            match = self._find_preamble(stream, cursor, max_preamble_errors)
            if match is None:
                return frames
            index, errors = match
            header_start = index + _PREAMBLE_BITS
            length_end = header_start + _LENGTH_BITS
            seq_end = length_end + (_SEQ_BITS if self.sequence_numbers else 0)
            header_end = seq_end + _HEADER_CRC_BITS
            if header_end > len(stream):
                return frames
            length = _bits_to_int(stream[header_start:length_end])
            seq = (
                _bits_to_int(stream[length_end:seq_end])
                if self.sequence_numbers
                else None
            )
            header_crc = _bits_to_int(stream[seq_end:header_end])
            if (
                length > self.max_payload_bytes
                or header_crc != crc8(self._header_bytes(length, seq))
            ):
                # Corrupt header; resume the scan one bit later.
                cursor = index + 1
                continue
            payload_end = header_end + 8 * length
            crc_end = payload_end + _CRC_BITS
            if crc_end > len(stream):
                # Truncated frame at the end of the stream.
                cursor = index + 1
                continue
            payload = bits_to_bytes(list(stream[header_end:payload_end]))
            received_crc = _bits_to_int(stream[payload_end:crc_end])
            expected_crc = crc16_ccitt(self._header_bytes(length, seq) + payload)
            frames.append(
                DecodedFrame(
                    payload=payload,
                    crc_ok=received_crc == expected_crc,
                    start_index=index,
                    preamble_errors=errors,
                    seq=seq,
                )
            )
            cursor = crc_end
