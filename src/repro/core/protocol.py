"""Framing for the covert channel: preamble, length, payload, CRC-16.

The paper reports raw bit rates "without any error handling"; a usable
exfiltration tool needs more: the spy must find where a message *starts*
in its decoded bit stream, know how long it is, and tell intact messages
from corrupted ones.  This module adds a minimal link layer:

``[preamble 16b] [length 16b] [header CRC-8 8b] [payload 8*N b] [CRC-16 16b]``

* the preamble (0xF0A5 — chosen for low self-similarity) is located by a
  sliding correlation that tolerates one bit error, so the spy needs no
  agreement on the message's position, only on the window grid;
* the length field carries its own CRC-8 — a flipped length bit would
  otherwise send the parser off past the end of the stream;
* CRC-16/CCITT over length+payload rejects corrupted frames;
* optional whole-frame repetition (see :mod:`~repro.core.ecc`) makes
  delivery robust at aggressive window sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ChannelError
from .encoding import bits_to_bytes, bytes_to_bits

__all__ = ["crc16_ccitt", "crc8", "FrameCodec", "DecodedFrame"]

#: default preamble: 1111000010100101
PREAMBLE = 0xF0A5
_PREAMBLE_BITS = 16
_LENGTH_BITS = 16
_HEADER_CRC_BITS = 8
_CRC_BITS = 16


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def crc8(data: bytes, seed: int = 0x00) -> int:
    """CRC-8 (poly 0x07) — guards the frame header."""
    crc = seed
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ 0x07) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
    return crc


def _int_to_bits(value: int, width: int) -> List[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


@dataclass(frozen=True)
class DecodedFrame:
    """One frame recovered from a bit stream."""

    payload: bytes
    crc_ok: bool
    start_index: int  # preamble position within the stream
    preamble_errors: int  # bit errors tolerated while locking


class FrameCodec:
    """Encode payloads into frames; scan bit streams for frames."""

    def __init__(self, preamble: int = PREAMBLE, max_payload_bytes: int = 4096):
        self.preamble_bits = _int_to_bits(preamble, _PREAMBLE_BITS)
        self.max_payload_bytes = max_payload_bytes

    # -- encode -----------------------------------------------------------

    def encode(self, payload: bytes) -> List[int]:
        """Frame ``payload`` as preamble + length + payload + CRC bits."""
        if len(payload) > self.max_payload_bytes:
            raise ChannelError(
                f"payload of {len(payload)} bytes exceeds cap {self.max_payload_bytes}"
            )
        length_bytes = len(payload).to_bytes(2, "big")
        crc = crc16_ccitt(length_bytes + payload)
        bits: List[int] = []
        bits.extend(self.preamble_bits)
        bits.extend(bytes_to_bits(length_bytes))
        bits.extend(_int_to_bits(crc8(length_bytes), _HEADER_CRC_BITS))
        bits.extend(bytes_to_bits(payload))
        bits.extend(_int_to_bits(crc, _CRC_BITS))
        return bits

    def frame_length_bits(self, payload_bytes: int) -> int:
        """Total bits a frame with ``payload_bytes`` occupies on the wire."""
        return (
            _PREAMBLE_BITS
            + _LENGTH_BITS
            + _HEADER_CRC_BITS
            + 8 * payload_bytes
            + _CRC_BITS
        )

    # -- decode -----------------------------------------------------------

    def _find_preamble(
        self, stream: Sequence[int], start: int, max_errors: int
    ) -> Optional[tuple]:
        """(index, errors) of the next preamble match at/after ``start``."""
        limit = len(stream) - _PREAMBLE_BITS
        for index in range(start, limit + 1):
            errors = sum(
                1
                for expected, actual in zip(
                    self.preamble_bits, stream[index : index + _PREAMBLE_BITS]
                )
                if expected != actual
            )
            if errors <= max_errors:
                return index, errors
        return None

    def decode_stream(
        self, stream: Sequence[int], max_preamble_errors: int = 1
    ) -> List[DecodedFrame]:
        """Scan a decoded bit stream for frames.

        Tolerates ``max_preamble_errors`` flipped bits while locking onto
        a preamble.  Frames whose CRC fails are still returned (flagged),
        because a receiver may want to request retransmission.
        """
        frames: List[DecodedFrame] = []
        cursor = 0
        while True:
            match = self._find_preamble(stream, cursor, max_preamble_errors)
            if match is None:
                return frames
            index, errors = match
            header_start = index + _PREAMBLE_BITS
            length_end = header_start + _LENGTH_BITS
            header_end = length_end + _HEADER_CRC_BITS
            if header_end > len(stream):
                return frames
            length = _bits_to_int(stream[header_start:length_end])
            header_crc = _bits_to_int(stream[length_end:header_end])
            if (
                length > self.max_payload_bytes
                or header_crc != crc8(length.to_bytes(2, "big"))
            ):
                # Corrupt header; resume the scan one bit later.
                cursor = index + 1
                continue
            payload_end = header_end + 8 * length
            crc_end = payload_end + _CRC_BITS
            if crc_end > len(stream):
                # Truncated frame at the end of the stream.
                cursor = index + 1
                continue
            payload = bits_to_bytes(list(stream[header_end:payload_end]))
            received_crc = _bits_to_int(stream[payload_end:crc_end])
            expected_crc = crc16_ccitt(length.to_bytes(2, "big") + payload)
            frames.append(
                DecodedFrame(
                    payload=payload,
                    crc_ok=received_crc == expected_crc,
                    start_index=index,
                    preamble_errors=errors,
                )
            )
            cursor = crc_end
