"""Bit-stream utilities: payload conversion and the paper's test patterns.

The evaluation uses two fixed patterns: '0101...' for Figure 6 and the
128-bit '100100...' sequence for Figure 8; real payloads (the examples
exfiltrate text) need byte/bit conversion with a defined bit order.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "text_to_bits",
    "bits_to_text",
    "alternating_bits",
    "pattern_100100",
    "random_bits",
]


def bytes_to_bits(payload: bytes) -> List[int]:
    """MSB-first bit expansion of ``payload``."""
    bits: List[int] = []
    for byte in payload:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    out = bytearray()
    for index in range(0, len(bits), 8):
        byte = 0
        for bit in bits[index : index + 8]:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0/1, got {bit!r}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def text_to_bits(text: str) -> List[int]:
    """UTF-8 encode ``text`` and expand to bits."""
    return bytes_to_bits(text.encode("utf-8"))


def bits_to_text(bits: Sequence[int], errors: str = "replace") -> str:
    """Decode bits back to text; undecodable bytes are replaced by default
    (covert channels are noisy)."""
    return bits_to_bytes(bits).decode("utf-8", errors=errors)


def alternating_bits(count: int, start: int = 0) -> List[int]:
    """'0101...' (or '1010...'), the Figure 6 test sequence."""
    return [(start + i) % 2 for i in range(count)]


def pattern_100100(count: int = 128) -> List[int]:
    """The '100100...' sequence of Figure 8 (128 bits by default)."""
    base = [1, 0, 0]
    return [base[i % 3] for i in range(count)]


def random_bits(count: int, rng) -> List[int]:
    """Uniform random payload bits from a numpy generator."""
    return [int(b) for b in rng.integers(0, 2, size=count)]
