"""The spy's monitor-address discovery (paper Section 5.3).

The trojan and spy only pre-share the 512 B unit within a 4 KB page (the
"index in the consecutive versions data region").  The spy must then find,
among its own candidate addresses at that unit, one whose versions data
the trojan's eviction set actually evicts — the *monitor address*.

Discovery is cooperative: during a setup phase the trojan sweeps its
eviction set continuously; the spy primes each candidate, waits, and
re-probes.  A candidate that keeps coming back as a versions miss shares
the trojan's cache set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from ..errors import ChannelError
from ..sgx.timing import TimerMechanism, measured_access
from ..sim.ops import Access, Busy, Fence, Flush, Operation, OpResult
from .candidates import CandidateAddressSet
from .latency import ThresholdClassifier

__all__ = ["MonitorSearchResult", "find_monitor_address", "sweeper_body", "monitor_probe_body"]


@dataclass(frozen=True)
class MonitorSearchResult:
    """Outcome of the monitor search."""

    monitor: int
    miss_counts: tuple  # per candidate, how many probes came back evicted
    trials: int

    def eviction_ratio(self, index: int) -> float:
        """Eviction ratio observed for candidate ``index``."""
        return self.miss_counts[index] / self.trials


def sweeper_body(
    eviction_set: Sequence[int], duration_cycles: float
) -> Generator[Operation, OpResult, int]:
    """Trojan setup-phase body: sweep the eviction set until ``duration``.

    Returns:
        Number of completed sweeps.
    """
    elapsed = 0.0
    sweeps = 0
    addresses = list(eviction_set)
    while elapsed < duration_cycles:
        start_elapsed = elapsed
        # Rotate the order every sweep so pseudo-LRU cannot settle into a
        # cycle that spares the spy's primed line (see sweep_addresses).
        shift = sweeps % max(len(addresses), 1)
        order = addresses[shift:] + addresses[:shift]
        for vaddr in order:
            result = yield Access(vaddr)
            elapsed += result.latency
            yield Flush(vaddr)
            elapsed += 40
        yield Fence()
        for vaddr in reversed(order):
            result = yield Access(vaddr)
            elapsed += result.latency
            yield Flush(vaddr)
            elapsed += 40
        yield Fence()
        elapsed += 50
        sweeps += 1
        if elapsed <= start_elapsed:  # defensive: guarantee progress
            elapsed += 1000
    return sweeps


def monitor_probe_body(
    candidates: CandidateAddressSet,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    trials: int,
    wait_cycles: int,
    results_out: List[List[int]],
) -> Generator[Operation, OpResult, None]:
    """Spy setup-phase body: count evictions per candidate.

    For each candidate, ``trials`` times: prime (access + flush), wait one
    sweep-length, then re-probe through ``timer``.  Eviction counts per
    candidate are appended to ``results_out``.
    """
    counts = [0] * len(candidates)
    for index, vaddr in enumerate(candidates):
        for _ in range(trials):
            yield Access(vaddr)
            yield Flush(vaddr)
            yield Fence()
            yield Busy(wait_cycles)
            elapsed = yield from measured_access(timer, vaddr, flush_after=True)
            if classifier.is_miss(elapsed):
                counts[index] += 1
    results_out.append(counts)


def find_monitor_address(
    machine,
    spy_space,
    spy_enclave,
    trojan_space,
    trojan_enclave,
    eviction_set: Sequence[int],
    candidates: CandidateAddressSet,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    trials: int = 6,
    wait_cycles: int = 25_000,
    min_ratio: float = 0.7,
    spy_core: int = 1,
    trojan_core: int = 0,
) -> MonitorSearchResult:
    """Run the cooperative monitor search; return the chosen monitor.

    Args:
        eviction_set: the trojan's Algorithm 1 output.
        candidates: the spy's candidate addresses (same agreed unit).
        trials: probes per candidate.
        wait_cycles: spy wait between prime and probe (≥ one sweep).
        min_ratio: minimum eviction ratio to accept a monitor.

    Raises:
        ChannelError: when no candidate is evicted reliably enough —
            the spy should allocate more candidate pages and retry.
    """
    per_candidate_cycles = wait_cycles + 4000.0
    duration = trials * len(candidates) * per_candidate_cycles * 1.5
    results: List[List[int]] = []
    machine.spawn(
        "monitor-sweeper",
        sweeper_body(eviction_set, duration),
        core=trojan_core,
        space=trojan_space,
        enclave=trojan_enclave,
    )
    machine.spawn(
        "monitor-probe",
        monitor_probe_body(candidates, timer, classifier, trials, wait_cycles, results),
        core=spy_core,
        space=spy_space,
        enclave=spy_enclave,
    )
    machine.run()
    if not results:
        raise ChannelError("monitor probe produced no results")
    counts = results[0]
    best_index = max(range(len(counts)), key=lambda i: counts[i])
    if counts[best_index] < min_ratio * trials:
        raise ChannelError(
            f"no reliable monitor address: best candidate evicted "
            f"{counts[best_index]}/{trials} times (need {min_ratio:.0%})"
        )
    return MonitorSearchResult(
        monitor=candidates.addresses[best_index],
        miss_counts=tuple(counts),
        trials=trials,
    )
