"""Multi-lane MEE covert channel — a bandwidth extension beyond the paper.

The paper's channel sends one bit per timing window through one cache set.
But the versions layout offers eight independent set *families* — one per
512 B unit within a page (Figure 3) — and families never collide.  A
trojan that prepares one eviction set per unit can signal K bits per
window; the window must stretch to fit K sequential evictions (~9500
cycles each), so throughput scales sublinearly:

    K = 1: 15000 cycles/bit  -> 35.0 KBps (the paper)
    K = 2: 22000 cycles/2b   -> 47.7 KBps
    K = 3: 31500 cycles/3b   -> 50.0 KBps

Setup cost also scales (Algorithm 1 once per lane), which is why the
paper's single-lane design is the right default; this module quantifies
the trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from ..errors import ChannelError
from ..sgx.timing import CounterThreadTimer, TimerMechanism, measured_access
from ..sim.ops import Access, Fence, Flush, Operation, OpResult
from .candidates import allocate_candidate_pages
from .channel import ChannelConfig, wait_until
from .latency import LatencyCalibration, ThresholdClassifier, calibrate_classifier
from .metrics import ChannelMetrics
from .monitor import find_monitor_address
from .reverse_engineering import find_eviction_set, sweep_addresses

__all__ = ["MultiChannelResult", "MultiChannel", "lane_window_cycles"]

#: cycles one lane's eviction sweep needs inside a window
_SWEEP_BUDGET = 9_500
#: fixed window slack for probing and sync
_WINDOW_SLACK = 3_000


def lane_window_cycles(lanes: int) -> int:
    """Default window size fitting ``lanes`` sequential evictions."""
    return lanes * _SWEEP_BUDGET + _WINDOW_SLACK


@dataclass
class MultiChannelResult:
    """A multi-lane transmission: per-lane streams plus combined metrics."""

    sent: List[int]
    received: List[int]
    lanes: int
    window_cycles: int
    clock_hz: float
    per_lane_errors: List[int]
    metrics: ChannelMetrics = field(init=False)

    def __post_init__(self) -> None:
        metrics = ChannelMetrics.from_bits(
            self.sent, self.received, self.window_cycles, self.clock_hz
        )
        # One window carries `lanes` bits: divide the per-bit window cost.
        self.metrics = ChannelMetrics(
            bits=metrics.bits,
            errors=metrics.errors,
            window_cycles=self.window_cycles / self.lanes,
            clock_hz=self.clock_hz,
            false_ones=metrics.false_ones,
            false_zeros=metrics.false_zeros,
        )


def _multi_trojan_body(
    lane_bits: List[List[int]],
    lane_sets: List[List[int]],
    start_time: float,
    window_cycles: int,
    timer: TimerMechanism,
) -> Generator[Operation, OpResult, int]:
    """Sweep each '1' lane's eviction set within every window."""
    windows = len(lane_bits[0])
    yield from wait_until(timer, start_time)
    for index in range(windows):
        for lane, bits in enumerate(lane_bits):
            if bits[index] == 1:
                yield from sweep_addresses(lane_sets[lane], rotation=index)
        yield from wait_until(timer, start_time + (index + 1) * window_cycles)
    return windows


def _multi_spy_body(
    windows: int,
    monitors: List[int],
    start_time: float,
    window_cycles: int,
    probe_margin: int,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    lanes_out: List[List[int]],
) -> Generator[Operation, OpResult, int]:
    """Probe every lane's monitor near each window boundary."""
    for monitor in monitors:
        yield Access(monitor)
        yield Flush(monitor)
    yield Fence()
    for index in range(windows):
        deadline = start_time + index * window_cycles + (window_cycles - probe_margin)
        yield from wait_until(timer, deadline)
        for lane, monitor in enumerate(monitors):
            elapsed = yield from measured_access(timer, monitor, flush_after=True)
            lanes_out[lane].append(classifier.decode_bit(elapsed))
    return windows


class MultiChannel:
    """K independent lanes over K versions-set families."""

    def __init__(self, machine, lanes: int = 2, config: Optional[ChannelConfig] = None):
        if not 1 <= lanes <= 8:
            raise ChannelError(f"lanes must be 1..8 (one per 512 B unit), got {lanes}")
        self.machine = machine
        self.lanes = lanes
        self.config = config if config is not None else ChannelConfig()
        timers = machine.config.timers
        self.trojan_timer = CounterThreadTimer(timers.counter_thread_read_cycles)
        self.spy_timer = CounterThreadTimer(timers.counter_thread_read_cycles)
        self.trojan_space = machine.new_address_space("mc-trojan-proc")
        self.spy_space = machine.new_address_space("mc-spy-proc")
        self.trojan_enclave = machine.create_enclave("mc-trojan-enclave", self.trojan_space)
        self.spy_enclave = machine.create_enclave("mc-spy-enclave", self.spy_space)
        self.calibration: Optional[LatencyCalibration] = None
        self.lane_sets: List[List[int]] = []
        self.monitors: List[int] = []

    def setup(self) -> None:
        """Calibrate once; run Algorithm 1 + monitor search per lane."""
        config = self.config
        self.calibration = calibrate_classifier(
            self.machine,
            self.spy_space,
            self.spy_enclave,
            self.spy_timer,
            samples=config.calibration_samples,
            core=config.spy_core,
        )
        classifier = self.calibration.classifier
        for lane in range(self.lanes):
            candidates = allocate_candidate_pages(
                self.trojan_enclave, config.candidate_pool, unit=lane
            )
            eviction = find_eviction_set(
                self.machine,
                self.trojan_space,
                self.trojan_enclave,
                candidates,
                self.trojan_timer,
                classifier,
                repeats=config.repeats,
                core=config.trojan_core,
            )
            spy_candidates = allocate_candidate_pages(
                self.spy_enclave, config.monitor_candidates, unit=lane
            )
            monitor = find_monitor_address(
                self.machine,
                self.spy_space,
                self.spy_enclave,
                self.trojan_space,
                self.trojan_enclave,
                eviction.eviction_set,
                spy_candidates,
                self.spy_timer,
                classifier,
                trials=config.monitor_trials,
                spy_core=config.spy_core,
                trojan_core=config.trojan_core,
            )
            self.lane_sets.append(list(eviction.eviction_set))
            self.monitors.append(monitor.monitor)

    @property
    def is_ready(self) -> bool:
        return len(self.lane_sets) == self.lanes and self.calibration is not None

    def transmit(
        self, bits: Sequence[int], window_cycles: Optional[int] = None
    ) -> MultiChannelResult:
        """Stripe ``bits`` across the lanes and send them.

        Bits are padded to a whole number of windows with zeros; the
        result is truncated back to the original length.
        """
        if not self.is_ready:
            raise ChannelError("call setup() before transmit()")
        window = window_cycles if window_cycles is not None else lane_window_cycles(self.lanes)
        padded = list(bits) + [0] * ((-len(bits)) % self.lanes)
        lane_bits = [padded[lane :: self.lanes] for lane in range(self.lanes)]
        windows = len(lane_bits[0])
        probe_margin = self.lanes * 1_000 + 500
        start_time = self.machine.now + self.config.start_slack_cycles

        lanes_out: List[List[int]] = [[] for _ in range(self.lanes)]
        self.machine.spawn(
            "mc-trojan",
            _multi_trojan_body(lane_bits, self.lane_sets, start_time, window, self.trojan_timer),
            core=self.config.trojan_core,
            space=self.trojan_space,
            enclave=self.trojan_enclave,
        )
        self.machine.spawn(
            "mc-spy",
            _multi_spy_body(
                windows,
                self.monitors,
                start_time,
                window,
                probe_margin,
                self.spy_timer,
                self.calibration.classifier,
                lanes_out,
            ),
            core=self.config.spy_core,
            space=self.spy_space,
            enclave=self.spy_enclave,
        )
        self.machine.run()

        received_padded: List[int] = []
        for index in range(windows):
            for lane in range(self.lanes):
                received_padded.append(lanes_out[lane][index])
        received = received_padded[: len(bits)]
        per_lane_errors = [
            sum(1 for s, r in zip(lane_bits[lane], lanes_out[lane]) if s != r)
            for lane in range(self.lanes)
        ]
        return MultiChannelResult(
            sent=list(bits),
            received=received,
            lanes=self.lanes,
            window_cycles=window,
            clock_hz=self.machine.config.clock_hz,
            per_lane_errors=per_lane_errors,
        )
