"""Adaptive timing-window control: back off under faults, re-tighten after.

``examples/window_tuning.py`` picks one static operating point on the
Figure 7 trade-off.  That is the right call on a quiet machine, but under
preemption storms or DVFS jitter the knee moves: a 15000-cycle window that
absorbs the trojan's ~9000-cycle eviction with 4800 cycles to spare has no
slack left for a 20000-cycle stolen time slice, while a 60000-cycle window
shrugs it off.  This module promotes the tuning procedure into a run-time
controller, AIMD-flavored like congestion control:

* ``backoff_after`` *consecutive* failed frames (CRC reject / no preamble
  lock) multiply the window by ``backoff_factor``.  The streak requirement
  is the discriminator between noise regimes: ambient single-bit errors
  (interrupt slips) are independent of the window size and usually clear
  on a retry, while fault-induced failures persist at the same window —
  only the latter should trigger the backoff's rate cost;
* ``recover_after`` consecutive delivered frames multiply it by
  ``recover_factor`` (< 1), creeping back toward ``base_window_cycles``;
* the window is clamped to ``[base_window_cycles, max_window_cycles]`` and
  quantized to ``quantum_cycles`` so both endpoints can compute the exact
  same schedule from the shared delivery history — the trojan learns
  delivery outcomes via the attack's feedback channel (in the paper's
  setting, the spy's exfiltration backchannel; see
  :mod:`~repro.core.selfheal`).

The controller is a pure function of its delivery history: replaying the
same ok/fail sequence reproduces the same window sequence bit-for-bit,
which keeps fault-sweep trials deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = [
    "AdaptiveWindowConfig",
    "AdaptiveWindowController",
    "AdaptiveCodeRateConfig",
    "AdaptiveCodeRateController",
]


@dataclass(frozen=True)
class AdaptiveWindowConfig:
    """Knobs of the adaptive controller."""

    #: the quiet-machine operating point (paper: 15000 cycles -> 35 KBps)
    base_window_cycles: int = 15_000
    #: never back off beyond this (goodput floor the attacker accepts)
    max_window_cycles: int = 60_000
    #: multiplicative backoff once a failure streak completes
    backoff_factor: float = 1.6
    #: consecutive failed frames before the window widens one step
    backoff_after: int = 2
    #: multiplicative recovery per ``recover_after`` clean frames
    recover_factor: float = 0.85
    #: consecutive delivered frames before the window tightens one step
    recover_after: int = 2
    #: windows are rounded to multiples of this (keeps schedules alignable)
    quantum_cycles: int = 500

    def __post_init__(self) -> None:
        if self.base_window_cycles <= 0:
            raise ConfigurationError("base window must be positive")
        if self.max_window_cycles < self.base_window_cycles:
            raise ConfigurationError("max window must be >= base window")
        if self.backoff_factor <= 1.0:
            raise ConfigurationError("backoff factor must exceed 1.0")
        if self.backoff_after < 1:
            raise ConfigurationError("backoff_after must be >= 1")
        if not 0.0 < self.recover_factor < 1.0:
            raise ConfigurationError("recover factor must be in (0, 1)")
        if self.recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1")
        if self.quantum_cycles < 1:
            raise ConfigurationError("quantum must be >= 1")


class AdaptiveWindowController:
    """Tracks frame outcomes; yields the window for the next frame."""

    def __init__(self, config: AdaptiveWindowConfig = AdaptiveWindowConfig()):
        self.config = config
        self._window = float(config.base_window_cycles)
        self._clean_streak = 0
        self._fail_streak = 0
        #: (window_used, delivered) per recorded frame, oldest first
        self.history: List[tuple] = []

    @property
    def window_cycles(self) -> int:
        """The window the next frame should use."""
        quantum = self.config.quantum_cycles
        return int(round(self._window / quantum)) * quantum

    @property
    def backed_off(self) -> bool:
        """True while the controller sits above the base operating point."""
        return self.window_cycles > self.config.base_window_cycles

    def record_frame(self, delivered: bool) -> int:
        """Feed one frame outcome; return the window for the next frame."""
        config = self.config
        self.history.append((self.window_cycles, delivered))
        if delivered:
            self._fail_streak = 0
            self._clean_streak += 1
            if self._clean_streak >= config.recover_after:
                self._clean_streak = 0
                self._window = max(
                    self._window * config.recover_factor,
                    float(config.base_window_cycles),
                )
        else:
            self._clean_streak = 0
            self._fail_streak += 1
            if self._fail_streak >= config.backoff_after:
                self._fail_streak = 0
                self._window = min(
                    self._window * config.backoff_factor,
                    float(config.max_window_cycles),
                )
        return self.window_cycles

    def reset(self) -> None:
        """Return to the base operating point (new transmission)."""
        self._window = float(self.config.base_window_cycles)
        self._clean_streak = 0
        self._fail_streak = 0
        self.history.clear()


@dataclass(frozen=True)
class AdaptiveCodeRateConfig:
    """Knobs of the code-rate controller.

    The controller walks a *ladder* of redundancy rungs (lightest first —
    e.g. raw → SECDED → interleaved RS → heavy RS) using two signals per
    frame: whether the frame was delivered, and the *FEC load* — the
    smoothed fraction of the current code's correction budget the channel
    is consuming (from
    :class:`~repro.coding.ChannelQualityEstimator` telemetry).  Waiting
    for outright failures before hardening would waste a whole frame per
    lesson; the load signal hardens *before* the budget is exceeded, and
    refuses to relax while the lighter code would be operating near its
    own (smaller) budget.
    """

    #: consecutive stressed frames (lost, or load at/above the high water)
    #: before stepping one rung heavier; 3 keeps the quiet machine's
    #: independent ~0.3-0.4 frame-loss background (which retries clear at
    #: the *same* rung for free) from triggering spurious hardening, while
    #: a storm's near-1.0 loss rate still escalates within three frames
    harden_after: int = 3
    #: consecutive comfortable frames (delivered at/below the low water)
    #: before stepping one rung lighter; eager relaxing is cheap because a
    #: wrong step down is corrected by the next harden streak
    relax_after: int = 2
    #: FEC load that marks a frame as stressed even when it was delivered —
    #: high enough that a code absorbing half its budget per frame (which
    #: is the code doing its job) is left in place rather than escalated
    load_high_water: float = 0.75
    #: FEC load a delivered frame must stay under to count toward relaxing
    load_low_water: float = 0.15
    #: when the caller supplies per-rung efficiency scores (the model-based
    #: path), switch rungs only if the best rung beats the current one by
    #: this relative margin — hysteresis against estimator jitter flapping
    #: the schedule between near-tied rungs.  0.2 is wide enough that a
    #: failure-streak spike in the error estimate (which inflates every
    #: heavy rung's score for a few frames) does not buy an excursion the
    #: steady-state estimate immediately regrets, while regime changes —
    #: where the ranking shifts by integer factors — still switch promptly
    switch_margin: float = 0.2

    def __post_init__(self) -> None:
        if self.harden_after < 1 or self.relax_after < 1:
            raise ConfigurationError("harden_after/relax_after must be >= 1")
        if not 0.0 <= self.load_low_water < self.load_high_water <= 1.0:
            raise ConfigurationError(
                "need 0 <= load_low_water < load_high_water <= 1"
            )
        if self.switch_margin < 0.0:
            raise ConfigurationError("switch_margin must be >= 0")


class AdaptiveCodeRateController:
    """Selects the ladder rung for the next frame from delivery history.

    The ladder entries are opaque to the controller (the self-healing
    layer passes coding stacks; tests pass plain labels), which keeps
    :mod:`repro.core` free of a dependency on :mod:`repro.coding`.  Like
    the window controller, it is a pure function of its recorded history:
    both endpoints replay identical (delivered, load) sequences into
    identical rung schedules.
    """

    def __init__(
        self,
        ladder: Sequence,
        config: AdaptiveCodeRateConfig = AdaptiveCodeRateConfig(),
    ):
        if not ladder:
            raise ConfigurationError("code-rate ladder cannot be empty")
        self.ladder = tuple(ladder)
        self.config = config
        self.index = 0
        self._stress_streak = 0
        self._comfort_streak = 0
        #: (rung_index, delivered, load) per recorded frame, oldest first
        self.history: List[tuple] = []

    @property
    def current(self):
        """The ladder rung the next frame should use."""
        return self.ladder[self.index]

    @property
    def hardened(self) -> bool:
        """True while the controller sits above the lightest rung."""
        return self.index > 0

    def record_frame(
        self,
        delivered: bool,
        load: float,
        scores: Optional[Sequence[float]] = None,
    ):
        """Feed one frame outcome; return the rung for the next frame.

        Args:
            delivered: whether the frame passed its CRC (on any path).
            load: smoothed FEC-load estimate in [0, 1] — fraction of the
                current code's correction budget in use; for uncoded rungs
                the caller passes the frame-failure rate instead.
            scores: optional predicted goodput efficiency per rung (same
                order as the ladder), e.g. from
                :meth:`repro.coding.CodingStack.predicted_frame_failure`
                fed with channel-quality telemetry.  When given, the
                controller jumps straight to the best-scoring rung
                (subject to ``switch_margin`` hysteresis) instead of
                streak-walking one rung at a time — a failure streak can
                only ever *react* to a regime change, while the model
                *ranks* every rung from the same telemetry and pays no
                exploratory frames climbing through rungs that were never
                going to win.
        """
        config = self.config
        load = min(max(load, 0.0), 1.0)
        self.history.append((self.index, delivered, load))
        if scores is not None:
            if len(scores) != len(self.ladder):
                raise ConfigurationError(
                    "scores must provide one entry per ladder rung"
                )
            self._stress_streak = 0
            self._comfort_streak = 0
            best = max(range(len(scores)), key=lambda i: scores[i])
            if scores[best] > scores[self.index] * (1.0 + config.switch_margin):
                self.index = best
            return self.current
        stressed = (not delivered) or load >= config.load_high_water
        comfortable = delivered and load <= config.load_low_water
        if stressed:
            self._comfort_streak = 0
            self._stress_streak += 1
            if self._stress_streak >= config.harden_after:
                self._stress_streak = 0
                self.index = min(self.index + 1, len(self.ladder) - 1)
        elif comfortable:
            self._stress_streak = 0
            self._comfort_streak += 1
            if self._comfort_streak >= config.relax_after:
                self._comfort_streak = 0
                self.index = max(self.index - 1, 0)
        else:
            # Mid-band frames are evidence the current rung is earning its
            # keep — break both streaks, hold position.
            self._stress_streak = 0
            self._comfort_streak = 0
        return self.current

    def reset(self) -> None:
        """Return to the lightest rung (new transmission)."""
        self.index = 0
        self._stress_streak = 0
        self._comfort_streak = 0
        self.history.clear()
