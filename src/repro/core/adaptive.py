"""Adaptive timing-window control: back off under faults, re-tighten after.

``examples/window_tuning.py`` picks one static operating point on the
Figure 7 trade-off.  That is the right call on a quiet machine, but under
preemption storms or DVFS jitter the knee moves: a 15000-cycle window that
absorbs the trojan's ~9000-cycle eviction with 4800 cycles to spare has no
slack left for a 20000-cycle stolen time slice, while a 60000-cycle window
shrugs it off.  This module promotes the tuning procedure into a run-time
controller, AIMD-flavored like congestion control:

* ``backoff_after`` *consecutive* failed frames (CRC reject / no preamble
  lock) multiply the window by ``backoff_factor``.  The streak requirement
  is the discriminator between noise regimes: ambient single-bit errors
  (interrupt slips) are independent of the window size and usually clear
  on a retry, while fault-induced failures persist at the same window —
  only the latter should trigger the backoff's rate cost;
* ``recover_after`` consecutive delivered frames multiply it by
  ``recover_factor`` (< 1), creeping back toward ``base_window_cycles``;
* the window is clamped to ``[base_window_cycles, max_window_cycles]`` and
  quantized to ``quantum_cycles`` so both endpoints can compute the exact
  same schedule from the shared delivery history — the trojan learns
  delivery outcomes via the attack's feedback channel (in the paper's
  setting, the spy's exfiltration backchannel; see
  :mod:`~repro.core.selfheal`).

The controller is a pure function of its delivery history: replaying the
same ok/fail sequence reproduces the same window sequence bit-for-bit,
which keeps fault-sweep trials deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError

__all__ = ["AdaptiveWindowConfig", "AdaptiveWindowController"]


@dataclass(frozen=True)
class AdaptiveWindowConfig:
    """Knobs of the adaptive controller."""

    #: the quiet-machine operating point (paper: 15000 cycles -> 35 KBps)
    base_window_cycles: int = 15_000
    #: never back off beyond this (goodput floor the attacker accepts)
    max_window_cycles: int = 60_000
    #: multiplicative backoff once a failure streak completes
    backoff_factor: float = 1.6
    #: consecutive failed frames before the window widens one step
    backoff_after: int = 2
    #: multiplicative recovery per ``recover_after`` clean frames
    recover_factor: float = 0.85
    #: consecutive delivered frames before the window tightens one step
    recover_after: int = 2
    #: windows are rounded to multiples of this (keeps schedules alignable)
    quantum_cycles: int = 500

    def __post_init__(self) -> None:
        if self.base_window_cycles <= 0:
            raise ConfigurationError("base window must be positive")
        if self.max_window_cycles < self.base_window_cycles:
            raise ConfigurationError("max window must be >= base window")
        if self.backoff_factor <= 1.0:
            raise ConfigurationError("backoff factor must exceed 1.0")
        if self.backoff_after < 1:
            raise ConfigurationError("backoff_after must be >= 1")
        if not 0.0 < self.recover_factor < 1.0:
            raise ConfigurationError("recover factor must be in (0, 1)")
        if self.recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1")
        if self.quantum_cycles < 1:
            raise ConfigurationError("quantum must be >= 1")


class AdaptiveWindowController:
    """Tracks frame outcomes; yields the window for the next frame."""

    def __init__(self, config: AdaptiveWindowConfig = AdaptiveWindowConfig()):
        self.config = config
        self._window = float(config.base_window_cycles)
        self._clean_streak = 0
        self._fail_streak = 0
        #: (window_used, delivered) per recorded frame, oldest first
        self.history: List[tuple] = []

    @property
    def window_cycles(self) -> int:
        """The window the next frame should use."""
        quantum = self.config.quantum_cycles
        return int(round(self._window / quantum)) * quantum

    @property
    def backed_off(self) -> bool:
        """True while the controller sits above the base operating point."""
        return self.window_cycles > self.config.base_window_cycles

    def record_frame(self, delivered: bool) -> int:
        """Feed one frame outcome; return the window for the next frame."""
        config = self.config
        self.history.append((self.window_cycles, delivered))
        if delivered:
            self._fail_streak = 0
            self._clean_streak += 1
            if self._clean_streak >= config.recover_after:
                self._clean_streak = 0
                self._window = max(
                    self._window * config.recover_factor,
                    float(config.base_window_cycles),
                )
        else:
            self._clean_streak = 0
            self._fail_streak += 1
            if self._fail_streak >= config.backoff_after:
                self._fail_streak = 0
                self._window = min(
                    self._window * config.backoff_factor,
                    float(config.max_window_cycles),
                )
        return self.window_cycles

    def reset(self) -> None:
        """Return to the base operating point (new transmission)."""
        self._window = float(self.config.base_window_cycles)
        self._clean_streak = 0
        self._fail_streak = 0
        self.history.clear()
