"""The MEE-cache covert channel (paper Section 5 / Algorithm 2).

Role reversal is the paper's key protocol idea: the **trojan** holds the
full eviction set and sweeps it (forward then backward, to beat the
approximate-LRU replacement) to send a '1'; the **spy** probes just a
*single* address — its monitor address — so the decode signal is the clean
~300-cycle versions hit/miss gap rather than a noisy 8-access probe.

Timing: both parties divide time into windows of ``Tsync`` cycles anchored
at an agreed start.  The trojan evicts at the start of each window; the
spy probes near the *end* of the window (its probe doubles as the next
window's prime).  Both sides keep window alignment with the counter-thread
timer of Figure 2(c), so OS interrupts cause isolated bit errors rather
than permanent desynchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from ..errors import ChannelError
from ..sgx.timing import CounterThreadTimer, TimerMechanism, measured_access
from ..sim.ops import Access, Fence, Flush, Operation, OpResult
from .candidates import allocate_candidate_pages
from .latency import LatencyCalibration, ThresholdClassifier, calibrate_classifier
from .metrics import ChannelMetrics
from .monitor import MonitorSearchResult, find_monitor_address
from .reverse_engineering import EvictionSetResult, find_eviction_set, sweep_addresses

__all__ = [
    "ChannelConfig",
    "ChannelResult",
    "CovertChannel",
    "trojan_body",
    "spy_body",
    "wait_until",
]


def wait_until(
    timer: TimerMechanism, target: float
) -> Generator[Operation, OpResult, int]:
    """Busy-wait until the timer reads at least ``target`` cycles.

    Implements "busy loop for remaining time of Tsync" from Algorithm 2
    with *absolute* deadlines, so a stolen time slice slips one window
    instead of shifting every subsequent window.
    """
    from ..sim.ops import Busy  # local import to keep module deps flat

    now = yield from timer.read()
    while now < target:
        yield Busy(int(max(target - now, 1)))
        now = yield from timer.read()
    return now


def trojan_body(
    bits: Sequence[int],
    eviction_set: Sequence[int],
    start_time: float,
    window_cycles: int,
    timer: TimerMechanism,
    two_phase: bool = True,
) -> Generator[Operation, OpResult, int]:
    """Algorithm 2, trojan side.

    For every '1', sweep the eviction set forward and backward (access +
    flush each address, fenced); for every '0', stay idle.  Either way,
    busy-loop until the next window boundary.  ``two_phase=False`` drops
    the backward pass — the paper's discussion of why that is insufficient
    under approximate-LRU replacement is validated by the one-phase
    ablation benchmark.

    Returns:
        Number of bits transmitted.
    """
    yield from wait_until(timer, start_time)
    for index, bit in enumerate(bits):
        if bit == 1:
            # Per-bit rotation keeps pseudo-LRU from settling into a cycle
            # that spares the spy's monitor line (see sweep_addresses).
            yield from sweep_addresses(
                eviction_set, two_phase=two_phase, rotation=index
            )
        elif bit != 0:
            raise ChannelError(f"bits must be 0/1, got {bit!r}")
        yield from wait_until(timer, start_time + (index + 1) * window_cycles)
    return len(bits)


def spy_body(
    bit_count: int,
    monitor: int,
    start_time: float,
    window_cycles: int,
    probe_margin: int,
    timer: TimerMechanism,
    classifier: ThresholdClassifier,
    probe_times_out: List[float],
    bits_out: List[int],
) -> Generator[Operation, OpResult, int]:
    """Algorithm 2, spy side.

    Probes the monitor address once per window, ``probe_margin`` cycles
    before the boundary; the probe reloads the versions data, so it is
    also the prime for the next window (paper Section 5.3: "the probe and
    prime stage for the next communication bit is overlapped").

    Returns:
        Number of bits decoded.
    """
    # Initial prime so window 0 starts from a known cached state.
    yield Access(monitor)
    yield Flush(monitor)
    yield Fence()
    for index in range(bit_count):
        deadline = start_time + index * window_cycles + (window_cycles - probe_margin)
        yield from wait_until(timer, deadline)
        elapsed = yield from measured_access(timer, monitor, flush_after=True)
        probe_times_out.append(float(elapsed))
        bits_out.append(classifier.decode_bit(elapsed))
    return bit_count


@dataclass(frozen=True)
class ChannelConfig:
    """Protocol and setup parameters for one channel instance."""

    window_cycles: int = 15_000
    #: agreed 512 B unit within each 4 KB page (any value 0..7 works)
    unit: int = 3
    #: cycles before the window boundary at which the spy probes
    probe_margin: int = 1_200
    #: trojan-side candidate pool for Algorithm 1
    candidate_pool: int = 128
    #: spy-side candidates for the monitor search
    monitor_candidates: int = 64
    monitor_trials: int = 6
    calibration_samples: int = 64
    #: eviction-test repetitions inside Algorithm 1
    repeats: int = 3
    trojan_core: int = 0
    spy_core: int = 1
    #: lead time between setup completing and the first window
    start_slack_cycles: int = 50_000
    #: sweep the eviction set forward *and* backward (paper Section 5.3);
    #: False is the one-phase ablation
    eviction_two_phase: bool = True


@dataclass
class ChannelResult:
    """One transmission's full record."""

    sent: List[int]
    received: List[int]
    probe_times: List[float]
    window_cycles: int
    clock_hz: float
    #: bits the spy never probed before the run deadline (padded as 0s);
    #: nonzero only for deadline-bounded transmissions under heavy faults
    truncated: int = 0
    #: per-bit soft-decision confidences in [0, 1] (empty when the channel
    #: predates soft demodulation); truncated bits carry 0.0 — a never-made
    #: probe is the definitive erasure
    confidences: List[float] = field(default_factory=list)
    metrics: ChannelMetrics = field(init=False)

    def __post_init__(self) -> None:
        self.metrics = ChannelMetrics.from_bits(
            self.sent, self.received, self.window_cycles, self.clock_hz
        )

    @property
    def error_positions(self) -> List[int]:
        """Indices where received != sent (Figure 8's red circles)."""
        return [i for i, (s, r) in enumerate(zip(self.sent, self.received)) if s != r]


class CovertChannel:
    """End-to-end orchestration: setup once, transmit many times.

    Typical use::

        machine = Machine(skylake_i7_6700k())
        channel = CovertChannel(machine)
        channel.setup()
        result = channel.transmit([1, 0, 1, 1, 0])
    """

    def __init__(self, machine, config: Optional[ChannelConfig] = None):
        self.machine = machine
        self.config = config if config is not None else ChannelConfig()
        timers = machine.config.timers
        self.trojan_timer = CounterThreadTimer(timers.counter_thread_read_cycles)
        self.spy_timer = CounterThreadTimer(timers.counter_thread_read_cycles)

        self.trojan_space = machine.new_address_space("trojan-proc")
        self.spy_space = machine.new_address_space("spy-proc")
        self.trojan_enclave = machine.create_enclave("trojan-enclave", self.trojan_space)
        self.spy_enclave = machine.create_enclave("spy-enclave", self.spy_space)

        self.calibration: Optional[LatencyCalibration] = None
        self.eviction_result: Optional[EvictionSetResult] = None
        self.monitor_result: Optional[MonitorSearchResult] = None

    # -- setup ------------------------------------------------------------------

    def setup(self) -> None:
        """Calibrate, reverse-engineer the eviction set, find the monitor."""
        config = self.config
        self.calibration = calibrate_classifier(
            self.machine,
            self.spy_space,
            self.spy_enclave,
            self.spy_timer,
            samples=config.calibration_samples,
            core=config.spy_core,
        )
        classifier = self.calibration.classifier

        candidates = allocate_candidate_pages(
            self.trojan_enclave, config.candidate_pool, config.unit
        )
        self.eviction_result = find_eviction_set(
            self.machine,
            self.trojan_space,
            self.trojan_enclave,
            candidates,
            self.trojan_timer,
            classifier,
            repeats=config.repeats,
            core=config.trojan_core,
        )

        spy_candidates = allocate_candidate_pages(
            self.spy_enclave, config.monitor_candidates, config.unit
        )
        self.monitor_result = find_monitor_address(
            self.machine,
            self.spy_space,
            self.spy_enclave,
            self.trojan_space,
            self.trojan_enclave,
            self.eviction_result.eviction_set,
            spy_candidates,
            self.spy_timer,
            classifier,
            trials=config.monitor_trials,
            spy_core=config.spy_core,
            trojan_core=config.trojan_core,
        )

    @property
    def is_ready(self) -> bool:
        """True once setup() has produced an eviction set and a monitor."""
        return self.eviction_result is not None and self.monitor_result is not None

    # -- transmission -------------------------------------------------------------

    def transmit(
        self,
        bits: Sequence[int],
        window_cycles: Optional[int] = None,
        extra_processes: Sequence = (),
        deadline_slack_windows: Optional[int] = None,
    ) -> ChannelResult:
        """Send ``bits`` trojan→spy; returns the decoded stream + metrics.

        Args:
            bits: payload bits.
            window_cycles: override the configured ``Tsync``.
            extra_processes: ``(name, body, core, space, enclave)`` tuples
                spawned alongside the channel — the noise workloads of
                Figure 8 plug in here.
            deadline_slack_windows: when set, bound the run: the scheduler
                stops ``deadline_slack_windows`` windows past the nominal
                end of the transmission instead of draining every process.
                Needed when long-lived event sources (fault injectors,
                ambient noise) share the machine; a spy still stuck at the
                deadline is cancelled and its missing bits are padded as
                zeros (counted in :attr:`ChannelResult.truncated`).
        """
        if not self.is_ready:
            raise ChannelError("call setup() before transmit()")
        config = self.config
        window = window_cycles if window_cycles is not None else config.window_cycles
        classifier = self.calibration.classifier
        start_time = self.machine.now + config.start_slack_cycles

        probe_times: List[float] = []
        received: List[int] = []
        trojan = self.machine.spawn(
            "trojan",
            trojan_body(
                list(bits),
                list(self.eviction_result.eviction_set),
                start_time,
                window,
                self.trojan_timer,
                two_phase=config.eviction_two_phase,
            ),
            core=config.trojan_core,
            space=self.trojan_space,
            enclave=self.trojan_enclave,
        )
        spy = self.machine.spawn(
            "spy",
            spy_body(
                len(bits),
                self.monitor_result.monitor,
                start_time,
                window,
                config.probe_margin,
                self.spy_timer,
                classifier,
                probe_times,
                received,
            ),
            core=config.spy_core,
            space=self.spy_space,
            enclave=self.spy_enclave,
        )
        for name, body, core, space, enclave in extra_processes:
            self.machine.spawn(name, body, core=core, space=space, enclave=enclave)

        truncated = 0
        if deadline_slack_windows is None:
            self.machine.run()
        else:
            deadline = start_time + (len(bits) + deadline_slack_windows) * window
            self.machine.run(until=deadline)
            trojan.cancel()
            spy.cancel()
            if len(received) < len(bits):
                truncated = len(bits) - len(received)
                received.extend([0] * truncated)

        confidences = [classifier.confidence(t) for t in probe_times]
        confidences.extend([0.0] * (len(received) - len(confidences)))

        return ChannelResult(
            sent=list(bits),
            received=received,
            probe_times=probe_times,
            window_cycles=window,
            clock_hz=self.machine.config.clock_hz,
            truncated=truncated,
            confidences=confidences,
        )
