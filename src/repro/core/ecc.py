"""Error-correcting codes for the channel (extension beyond the paper).

The paper reports raw error rates "without any error handling"; a
practical channel would add coding.  We provide the two standard
lightweight options — Hamming(7,4) with single-error correction, and
N-fold repetition with majority vote — and use them in the examples and
the coding ablation benchmark.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "hamming74_encode",
    "hamming74_decode",
    "secded84_encode",
    "secded84_decode",
    "repetition_encode",
    "repetition_decode",
    "block_repetition_encode",
    "block_repetition_decode",
]

# Parity-check positions for Hamming(7,4), 1-indexed codeword layout:
# p1 p2 d1 p4 d2 d3 d4   (parity bits at positions 1, 2, 4)
_DATA_POSITIONS = (3, 5, 6, 7)
_PARITY_POSITIONS = (1, 2, 4)


def _check_bits(bits: Sequence[int]) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r}")


def hamming74_encode(bits: Sequence[int]) -> List[int]:
    """Encode data bits into Hamming(7,4) codewords.

    Input length must be a multiple of 4; output is 7/4 times longer.
    """
    _check_bits(bits)
    if len(bits) % 4 != 0:
        raise ValueError(f"Hamming(7,4) needs a multiple of 4 bits, got {len(bits)}")
    encoded: List[int] = []
    for start in range(0, len(bits), 4):
        nibble = bits[start : start + 4]
        word = [0] * 8  # 1-indexed; word[0] unused
        for position, bit in zip(_DATA_POSITIONS, nibble):
            word[position] = bit
        for parity in _PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity and position != parity:
                    value ^= word[position]
            word[parity] = value
        encoded.extend(word[1:])
    return encoded


def hamming74_decode(bits: Sequence[int]) -> Tuple[List[int], int]:
    """Decode Hamming(7,4), correcting single-bit errors per codeword.

    Returns:
        ``(data_bits, corrections)`` — the decoded bits and how many
        codewords needed a correction.  Double-bit errors *miscorrect*,
        as Hamming(7,4) inherently does; use :func:`secded84_decode`
        when double errors must be detected instead of silently mangled.
    """
    _check_bits(bits)
    if len(bits) % 7 != 0:
        raise ValueError(f"Hamming(7,4) codewords are 7 bits, got {len(bits)}")
    data: List[int] = []
    corrections = 0
    for start in range(0, len(bits), 7):
        word = [0] + list(bits[start : start + 7])  # 1-indexed
        syndrome = 0
        for parity in _PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity:
                    value ^= word[position]
            if value:
                syndrome += parity
        if syndrome:
            word[syndrome] ^= 1
            corrections += 1
        data.extend(word[position] for position in _DATA_POSITIONS)
    return data, corrections


def secded84_encode(bits: Sequence[int]) -> List[int]:
    """Encode data bits into extended-parity Hamming(8,4) codewords.

    Each Hamming(7,4) codeword gains an eighth bit — even parity over the
    whole word — lifting the code to SECDED: single errors are corrected,
    double errors are *detected* (and reported as erasures by
    :func:`secded84_decode`) instead of miscorrected.
    """
    encoded: List[int] = []
    inner = hamming74_encode(bits)
    for start in range(0, len(inner), 7):
        word = inner[start : start + 7]
        parity = 0
        for bit in word:
            parity ^= bit
        encoded.extend(word)
        encoded.append(parity)
    return encoded


def secded84_decode(bits: Sequence[int]) -> Tuple[List[int], int, List[int]]:
    """Decode Hamming(8,4) SECDED codewords.

    Returns:
        ``(data_bits, corrections, erasures)`` — the decoded bits, the
        number of codewords that needed a single-error correction, and
        the indices of codewords whose corruption was *detected but not
        correctable* (double errors).  Erased words contribute their raw
        data-position bits to ``data_bits`` — best-effort content the
        caller should treat as unreliable (e.g. hand to an outer code or
        trigger retransmission); nothing is silently miscorrected.
    """
    _check_bits(bits)
    if len(bits) % 8 != 0:
        raise ValueError(f"SECDED(8,4) codewords are 8 bits, got {len(bits)}")
    data: List[int] = []
    corrections = 0
    erasures: List[int] = []
    for word_index, start in enumerate(range(0, len(bits), 8)):
        word = [0] + list(bits[start : start + 8])  # 1-indexed; word[8] = parity
        syndrome = 0
        for parity in _PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity:
                    value ^= word[position]
            if value:
                syndrome += parity
        overall = 0
        for position in range(1, 9):
            overall ^= word[position]
        if syndrome and overall:
            # Single error among bits 1..7: correctable.
            word[syndrome] ^= 1
            corrections += 1
        elif syndrome and not overall:
            # Even number of flips with a nonzero syndrome: a double
            # error.  Correcting would mangle a third bit — report the
            # word as an erasure instead.
            erasures.append(word_index)
        elif not syndrome and overall:
            # The extended parity bit itself flipped; data is intact.
            corrections += 1
        data.extend(word[position] for position in _DATA_POSITIONS)
    return data, corrections, erasures


def repetition_encode(bits: Sequence[int], factor: int = 3) -> List[int]:
    """Repeat every bit ``factor`` times (odd factors decode unambiguously)."""
    _check_bits(bits)
    if factor < 1 or factor % 2 == 0:
        raise ValueError(f"repetition factor must be odd and >= 1, got {factor}")
    out: List[int] = []
    for bit in bits:
        out.extend([bit] * factor)
    return out


def repetition_decode(bits: Sequence[int], factor: int = 3) -> List[int]:
    """Majority-vote decode of :func:`repetition_encode` output."""
    _check_bits(bits)
    if factor < 1 or factor % 2 == 0:
        raise ValueError(f"repetition factor must be odd and >= 1, got {factor}")
    if len(bits) % factor != 0:
        raise ValueError(f"bit count {len(bits)} not a multiple of {factor}")
    data: List[int] = []
    for start in range(0, len(bits), factor):
        group = bits[start : start + factor]
        data.append(1 if sum(group) * 2 > factor else 0)
    return data


def block_repetition_encode(bits: Sequence[int], copies: int = 3) -> List[int]:
    """Transmit the whole payload ``copies`` times back to back.

    Unlike per-bit repetition, the copies of one bit sit a full payload
    apart, so a *burst* of channel errors (an OS time slice garbling a few
    adjacent windows) lands in at most one copy — the natural interleaving
    for this channel's error process.
    """
    _check_bits(bits)
    if copies < 1 or copies % 2 == 0:
        raise ValueError(f"copies must be odd and >= 1, got {copies}")
    return list(bits) * copies


def block_repetition_decode(bits: Sequence[int], copies: int = 3) -> List[int]:
    """Positionwise majority vote across the payload copies."""
    _check_bits(bits)
    if copies < 1 or copies % 2 == 0:
        raise ValueError(f"copies must be odd and >= 1, got {copies}")
    if len(bits) % copies != 0:
        raise ValueError(f"bit count {len(bits)} not a multiple of {copies}")
    length = len(bits) // copies
    data: List[int] = []
    for position in range(length):
        votes = sum(bits[copy * length + position] for copy in range(copies))
        data.append(1 if votes * 2 > copies else 0)
    return data
