"""Error-correcting codes for the channel (extension beyond the paper).

The paper reports raw error rates "without any error handling"; a
practical channel would add coding.  We provide the two standard
lightweight options — Hamming(7,4) with single-error correction, and
N-fold repetition with majority vote — and use them in the examples and
the coding ablation benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "hamming74_encode",
    "hamming74_decode",
    "repetition_encode",
    "repetition_decode",
    "block_repetition_encode",
    "block_repetition_decode",
]

# Parity-check positions for Hamming(7,4), 1-indexed codeword layout:
# p1 p2 d1 p4 d2 d3 d4   (parity bits at positions 1, 2, 4)
_DATA_POSITIONS = (3, 5, 6, 7)
_PARITY_POSITIONS = (1, 2, 4)


def _check_bits(bits: Sequence[int]) -> None:
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit!r}")


def hamming74_encode(bits: Sequence[int]) -> List[int]:
    """Encode data bits into Hamming(7,4) codewords.

    Input length must be a multiple of 4; output is 7/4 times longer.
    """
    _check_bits(bits)
    if len(bits) % 4 != 0:
        raise ValueError(f"Hamming(7,4) needs a multiple of 4 bits, got {len(bits)}")
    encoded: List[int] = []
    for start in range(0, len(bits), 4):
        nibble = bits[start : start + 4]
        word = [0] * 8  # 1-indexed; word[0] unused
        for position, bit in zip(_DATA_POSITIONS, nibble):
            word[position] = bit
        for parity in _PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity and position != parity:
                    value ^= word[position]
            word[parity] = value
        encoded.extend(word[1:])
    return encoded


def hamming74_decode(bits: Sequence[int]) -> tuple:
    """Decode Hamming(7,4), correcting single-bit errors per codeword.

    Returns:
        ``(data_bits, corrections)`` — the decoded bits and how many
        codewords needed a correction.  Double-bit errors miscorrect, as
        Hamming(7,4) inherently does.
    """
    _check_bits(bits)
    if len(bits) % 7 != 0:
        raise ValueError(f"Hamming(7,4) codewords are 7 bits, got {len(bits)}")
    data: List[int] = []
    corrections = 0
    for start in range(0, len(bits), 7):
        word = [0] + list(bits[start : start + 7])  # 1-indexed
        syndrome = 0
        for parity in _PARITY_POSITIONS:
            value = 0
            for position in range(1, 8):
                if position & parity:
                    value ^= word[position]
            if value:
                syndrome += parity
        if syndrome:
            word[syndrome] ^= 1
            corrections += 1
        data.extend(word[position] for position in _DATA_POSITIONS)
    return data, corrections


def repetition_encode(bits: Sequence[int], factor: int = 3) -> List[int]:
    """Repeat every bit ``factor`` times (odd factors decode unambiguously)."""
    _check_bits(bits)
    if factor < 1 or factor % 2 == 0:
        raise ValueError(f"repetition factor must be odd and >= 1, got {factor}")
    out: List[int] = []
    for bit in bits:
        out.extend([bit] * factor)
    return out


def repetition_decode(bits: Sequence[int], factor: int = 3) -> List[int]:
    """Majority-vote decode of :func:`repetition_encode` output."""
    _check_bits(bits)
    if factor < 1 or factor % 2 == 0:
        raise ValueError(f"repetition factor must be odd and >= 1, got {factor}")
    if len(bits) % factor != 0:
        raise ValueError(f"bit count {len(bits)} not a multiple of {factor}")
    data: List[int] = []
    for start in range(0, len(bits), factor):
        group = bits[start : start + factor]
        data.append(1 if sum(group) * 2 > factor else 0)
    return data


def block_repetition_encode(bits: Sequence[int], copies: int = 3) -> List[int]:
    """Transmit the whole payload ``copies`` times back to back.

    Unlike per-bit repetition, the copies of one bit sit a full payload
    apart, so a *burst* of channel errors (an OS time slice garbling a few
    adjacent windows) lands in at most one copy — the natural interleaving
    for this channel's error process.
    """
    _check_bits(bits)
    if copies < 1 or copies % 2 == 0:
        raise ValueError(f"copies must be odd and >= 1, got {copies}")
    return list(bits) * copies


def block_repetition_decode(bits: Sequence[int], copies: int = 3) -> List[int]:
    """Positionwise majority vote across the payload copies."""
    _check_bits(bits)
    if copies < 1 or copies % 2 == 0:
        raise ValueError(f"copies must be odd and >= 1, got {copies}")
    if len(bits) % copies != 0:
        raise ValueError(f"bit count {len(bits)} not a multiple of {copies}")
    length = len(bits) // copies
    data: List[int] = []
    for position in range(length):
        votes = sum(bits[copy * length + position] for copy in range(copies))
        data.append(1 if votes * 2 > copies else 0)
    return data
