"""Histogram construction for latency distributions (paper Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Histogram", "latency_histogram"]


@dataclass(frozen=True)
class Histogram:
    """Fixed-width histogram over a numeric sample."""

    bin_edges: tuple  # len == len(counts) + 1
    counts: tuple

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def bin_centers(self) -> List[float]:
        """Midpoints of the bins."""
        edges = self.bin_edges
        return [(edges[i] + edges[i + 1]) / 2.0 for i in range(len(self.counts))]

    def mode_bin(self) -> Tuple[float, int]:
        """(center, count) of the most populated bin."""
        index = int(np.argmax(self.counts))
        return self.bin_centers()[index], int(self.counts[index])

    def peaks(self, min_separation: int = 2, min_count: int = 1) -> List[float]:
        """Bin centers of local maxima, for locating latency classes.

        A bin is a peak when it is at least ``min_count`` high and strictly
        greater than every bin within ``min_separation`` on each side.
        """
        counts = self.counts
        centers = self.bin_centers()
        found: List[float] = []
        for i, count in enumerate(counts):
            if count < min_count:
                continue
            lo = max(0, i - min_separation)
            hi = min(len(counts), i + min_separation + 1)
            neighborhood = list(counts[lo:i]) + list(counts[i + 1 : hi])
            if all(count > other for other in neighborhood):
                found.append(centers[i])
        return found


def latency_histogram(
    samples: Sequence[float], bin_width: float = 25.0, lo: float = None, hi: float = None
) -> Histogram:
    """Bin latency samples at ``bin_width`` cycles.

    Bounds default to the sample range, expanded to bin-width multiples.
    """
    if len(samples) == 0:
        raise ValueError("cannot histogram an empty sample")
    data = np.asarray(samples, dtype=float)
    if lo is None:
        lo = float(np.floor(data.min() / bin_width) * bin_width)
    if hi is None:
        hi = float(np.ceil(data.max() / bin_width) * bin_width)
    if hi <= lo:
        hi = lo + bin_width
    bins = int(round((hi - lo) / bin_width))
    counts, edges = np.histogram(data, bins=bins, range=(lo, hi))
    return Histogram(bin_edges=tuple(float(e) for e in edges), counts=tuple(int(c) for c in counts))
