"""Analysis helpers: histograms, summary statistics, ASCII rendering.

The benchmark harness prints every figure and table as text; these
utilities keep that rendering consistent and testable.
"""

from .histogram import Histogram, latency_histogram
from .render import render_curve, render_histogram, render_series, render_table
from .robustness import (
    CodingFrontierPoint,
    RobustnessCurvePoint,
    aggregate_coding_point,
    aggregate_point,
    render_coding_frontier,
    render_robustness_table,
)
from .stats import SummaryStats, summarize
from .timeline import ChannelTimeline, WindowActivity, build_timeline

__all__ = [
    "ChannelTimeline",
    "CodingFrontierPoint",
    "Histogram",
    "RobustnessCurvePoint",
    "SummaryStats",
    "WindowActivity",
    "aggregate_coding_point",
    "aggregate_point",
    "build_timeline",
    "latency_histogram",
    "render_coding_frontier",
    "render_curve",
    "render_histogram",
    "render_robustness_table",
    "render_series",
    "render_table",
    "summarize",
]
