"""Summary statistics for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    median: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} sd={self.std:.1f} "
            f"min={self.minimum:.1f} p5={self.p5:.1f} med={self.median:.1f} "
            f"p95={self.p95:.1f} max={self.maximum:.1f}"
        )


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Build a :class:`SummaryStats` from a non-empty sample."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    data = np.asarray(samples, dtype=float)
    return SummaryStats(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        p5=float(np.percentile(data, 5)),
        median=float(np.median(data)),
        p95=float(np.percentile(data, 95)),
        maximum=float(data.max()),
    )
