"""Robustness-curve rendering: channel degradation vs fault intensity.

The fault sweep (:mod:`repro.experiments.fault_sweep`) produces, per fault
intensity and per window policy, a set of
:class:`~repro.core.metrics.RobustnessMetrics`.  This module aggregates
those into rows of a degradation table and renders it — the robustness
analogue of the Figure 7 trade-off table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .render import render_table

__all__ = [
    "RobustnessCurvePoint",
    "aggregate_point",
    "render_robustness_table",
    "CodingFrontierPoint",
    "aggregate_coding_point",
    "render_coding_frontier",
]


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


@dataclass(frozen=True)
class RobustnessCurvePoint:
    """One (policy, fault intensity) cell, averaged over trials."""

    policy: str
    intensity: float
    trials: int
    delivery_rate: float  # fraction of trials with the full message intact
    goodput_kbps: float
    frame_error_rate: float
    resyncs: float  # mean per trial
    retransmissions: float  # mean per trial
    time_to_recover_ms: float  # mean over trials that had any failure

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "intensity": self.intensity,
            "trials": self.trials,
            "delivery_rate": self.delivery_rate,
            "goodput_kbps": self.goodput_kbps,
            "frame_error_rate": self.frame_error_rate,
            "resyncs": self.resyncs,
            "retransmissions": self.retransmissions,
            "time_to_recover_ms": self.time_to_recover_ms,
        }


def aggregate_point(
    policy: str, intensity: float, metrics_dicts: Sequence[Dict]
) -> RobustnessCurvePoint:
    """Collapse per-trial ``RobustnessMetrics.to_dict()`` records into one
    curve point."""
    if not metrics_dicts:
        raise ValueError("cannot aggregate an empty trial set")
    ttr_ms = [
        m["time_to_recover_cycles"] / m["clock_hz"] * 1e3
        for m in metrics_dicts
        if not math.isnan(m["time_to_recover_cycles"])
    ]
    return RobustnessCurvePoint(
        policy=policy,
        intensity=intensity,
        trials=len(metrics_dicts),
        delivery_rate=_mean([1.0 if m["delivered"] else 0.0 for m in metrics_dicts]),
        goodput_kbps=_mean([m["goodput_kbps"] for m in metrics_dicts]),
        frame_error_rate=_mean([m["frame_error_rate"] for m in metrics_dicts]),
        resyncs=_mean([float(m["resyncs"]) for m in metrics_dicts]),
        retransmissions=_mean([float(m["retransmissions"]) for m in metrics_dicts]),
        time_to_recover_ms=_mean(ttr_ms) if ttr_ms else math.nan,
    )


@dataclass(frozen=True)
class CodingFrontierPoint:
    """One (coding stack, fault intensity) cell of the coding-gain frontier.

    Two measurements per cell: the *FEC-only* phase (single shot, no
    retransmission — what the code alone buys in residual BER) and the
    *hybrid-ARQ* phase (FEC + CRC-triggered selective repeat — what the
    full stack delivers).  ``residual_ber``/``raw_ber`` are NaN for the
    adaptive policy, which only exists at the ARQ layer.
    """

    stack: str
    intensity: float
    trials: int
    #: payload-bit error rate after FEC decode, no ARQ (phase A)
    residual_ber: float
    #: wire-bit error rate before decoding — the channel itself (phase A)
    raw_ber: float
    #: wire bits per payload bit (1.0 = no redundancy)
    expansion: float
    #: hybrid-ARQ delivered-payload rate in KBps (phase B)
    goodput_kbps: float
    #: fraction of trials whose full message arrived CRC-verified (phase B)
    delivery_rate: float
    frame_error_rate: float
    #: mean frames rescued by FEC alone / by retransmission, per trial
    fec_corrected_frames: float
    arq_recovered_frames: float
    retransmissions: float

    def to_dict(self) -> dict:
        return {
            "stack": self.stack,
            "intensity": self.intensity,
            "trials": self.trials,
            "residual_ber": self.residual_ber,
            "raw_ber": self.raw_ber,
            "expansion": self.expansion,
            "goodput_kbps": self.goodput_kbps,
            "delivery_rate": self.delivery_rate,
            "frame_error_rate": self.frame_error_rate,
            "fec_corrected_frames": self.fec_corrected_frames,
            "arq_recovered_frames": self.arq_recovered_frames,
            "retransmissions": self.retransmissions,
        }


def aggregate_coding_point(
    stack: str, intensity: float, trial_records: Sequence[Dict]
) -> CodingFrontierPoint:
    """Collapse per-trial coding-sweep records into one frontier point.

    Each record carries ``fec`` (phase A dict or None) and ``arq`` (the
    :meth:`~repro.core.metrics.RobustnessMetrics.to_dict` form).
    """
    if not trial_records:
        raise ValueError("cannot aggregate an empty trial set")
    fec = [r["fec"] for r in trial_records if r.get("fec") is not None]
    arq = [r["arq"] for r in trial_records]
    return CodingFrontierPoint(
        stack=stack,
        intensity=intensity,
        trials=len(trial_records),
        residual_ber=_mean([f["residual_ber"] for f in fec]) if fec else math.nan,
        raw_ber=_mean([f["raw_ber"] for f in fec]) if fec else math.nan,
        expansion=_mean([f["expansion"] for f in fec]) if fec else math.nan,
        goodput_kbps=_mean([m["goodput_kbps"] for m in arq]),
        delivery_rate=_mean([1.0 if m["delivered"] else 0.0 for m in arq]),
        frame_error_rate=_mean([m["frame_error_rate"] for m in arq]),
        fec_corrected_frames=_mean(
            [float(m["fec_corrected_frames"]) for m in arq]
        ),
        arq_recovered_frames=_mean(
            [float(m["arq_recovered_frames"]) for m in arq]
        ),
        retransmissions=_mean([float(m["retransmissions"]) for m in arq]),
    )


def render_coding_frontier(points: Sequence[CodingFrontierPoint]) -> str:
    """Coding-gain frontier table plus per-intensity gain headlines.

    The headline number is the *coding gain*: raw stack residual BER over
    each coded stack's residual BER at the same intensity (∞ when the code
    drove the residual to zero).
    """

    def fmt_ber(value: float) -> str:
        if math.isnan(value):
            return "-"
        if value == 0.0:
            return "0"
        return f"{value:.2e}"

    headers = [
        "stack",
        "intensity",
        "trials",
        "expand",
        "raw BER",
        "resid BER",
        "goodput KBps",
        "delivered",
        "FER",
        "FEC saves",
        "ARQ saves",
        "retx",
    ]
    rows: List[List[object]] = []
    for p in sorted(points, key=lambda p: (p.intensity, p.stack)):
        rows.append(
            [
                p.stack,
                f"{p.intensity:g}",
                p.trials,
                "-" if math.isnan(p.expansion) else f"{p.expansion:.2f}x",
                fmt_ber(p.raw_ber),
                fmt_ber(p.residual_ber),
                f"{p.goodput_kbps:.3f}",
                f"{p.delivery_rate:.2f}",
                f"{p.frame_error_rate:.3f}",
                f"{p.fec_corrected_frames:.1f}",
                f"{p.arq_recovered_frames:.1f}",
                f"{p.retransmissions:.1f}",
            ]
        )
    lines = [render_table(headers, rows)]

    by_intensity: Dict[float, List[CodingFrontierPoint]] = {}
    for p in points:
        by_intensity.setdefault(p.intensity, []).append(p)
    for intensity in sorted(by_intensity):
        cell = by_intensity[intensity]
        baseline = next((p for p in cell if p.stack == "raw"), None)
        if baseline is None or math.isnan(baseline.residual_ber):
            continue
        gains = []
        for p in sorted(cell, key=lambda p: p.stack):
            if p.stack == "raw" or math.isnan(p.residual_ber):
                continue
            if p.residual_ber == 0.0:
                gains.append(f"{p.stack} clean" if baseline.residual_ber > 0
                             else f"{p.stack} 1x")
            else:
                gains.append(
                    f"{p.stack} {baseline.residual_ber / p.residual_ber:.0f}x"
                )
        if gains:
            lines.append(
                f"coding gain @ intensity {intensity:g} "
                f"(raw BER {fmt_ber(baseline.residual_ber)}): "
                + ", ".join(gains)
            )
    return "\n".join(lines)


def render_robustness_table(points: Sequence[RobustnessCurvePoint]) -> str:
    """Fixed-width degradation table, one row per (policy, intensity)."""
    headers = [
        "policy",
        "intensity",
        "trials",
        "delivered",
        "goodput KBps",
        "FER",
        "resyncs",
        "retx",
        "TTR ms",
    ]
    rows: List[List[object]] = []
    for p in sorted(points, key=lambda p: (p.intensity, p.policy)):
        rows.append(
            [
                p.policy,
                f"{p.intensity:g}",
                p.trials,
                f"{p.delivery_rate:.2f}",
                f"{p.goodput_kbps:.3f}",
                f"{p.frame_error_rate:.3f}",
                f"{p.resyncs:.1f}",
                f"{p.retransmissions:.1f}",
                "-" if math.isnan(p.time_to_recover_ms) else f"{p.time_to_recover_ms:.2f}",
            ]
        )
    return render_table(headers, rows)
