"""Robustness-curve rendering: channel degradation vs fault intensity.

The fault sweep (:mod:`repro.experiments.fault_sweep`) produces, per fault
intensity and per window policy, a set of
:class:`~repro.core.metrics.RobustnessMetrics`.  This module aggregates
those into rows of a degradation table and renders it — the robustness
analogue of the Figure 7 trade-off table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .render import render_table

__all__ = ["RobustnessCurvePoint", "aggregate_point", "render_robustness_table"]


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


@dataclass(frozen=True)
class RobustnessCurvePoint:
    """One (policy, fault intensity) cell, averaged over trials."""

    policy: str
    intensity: float
    trials: int
    delivery_rate: float  # fraction of trials with the full message intact
    goodput_kbps: float
    frame_error_rate: float
    resyncs: float  # mean per trial
    retransmissions: float  # mean per trial
    time_to_recover_ms: float  # mean over trials that had any failure

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "intensity": self.intensity,
            "trials": self.trials,
            "delivery_rate": self.delivery_rate,
            "goodput_kbps": self.goodput_kbps,
            "frame_error_rate": self.frame_error_rate,
            "resyncs": self.resyncs,
            "retransmissions": self.retransmissions,
            "time_to_recover_ms": self.time_to_recover_ms,
        }


def aggregate_point(
    policy: str, intensity: float, metrics_dicts: Sequence[Dict]
) -> RobustnessCurvePoint:
    """Collapse per-trial ``RobustnessMetrics.to_dict()`` records into one
    curve point."""
    if not metrics_dicts:
        raise ValueError("cannot aggregate an empty trial set")
    ttr_ms = [
        m["time_to_recover_cycles"] / m["clock_hz"] * 1e3
        for m in metrics_dicts
        if not math.isnan(m["time_to_recover_cycles"])
    ]
    return RobustnessCurvePoint(
        policy=policy,
        intensity=intensity,
        trials=len(metrics_dicts),
        delivery_rate=_mean([1.0 if m["delivered"] else 0.0 for m in metrics_dicts]),
        goodput_kbps=_mean([m["goodput_kbps"] for m in metrics_dicts]),
        frame_error_rate=_mean([m["frame_error_rate"] for m in metrics_dicts]),
        resyncs=_mean([float(m["resyncs"]) for m in metrics_dicts]),
        retransmissions=_mean([float(m["retransmissions"]) for m in metrics_dicts]),
        time_to_recover_ms=_mean(ttr_ms) if ttr_ms else math.nan,
    )


def render_robustness_table(points: Sequence[RobustnessCurvePoint]) -> str:
    """Fixed-width degradation table, one row per (policy, intensity)."""
    headers = [
        "policy",
        "intensity",
        "trials",
        "delivered",
        "goodput KBps",
        "FER",
        "resyncs",
        "retx",
        "TTR ms",
    ]
    rows: List[List[object]] = []
    for p in sorted(points, key=lambda p: (p.intensity, p.policy)):
        rows.append(
            [
                p.policy,
                f"{p.intensity:g}",
                p.trials,
                f"{p.delivery_rate:.2f}",
                f"{p.goodput_kbps:.3f}",
                f"{p.frame_error_rate:.3f}",
                f"{p.resyncs:.1f}",
                f"{p.retransmissions:.1f}",
                "-" if math.isnan(p.time_to_recover_ms) else f"{p.time_to_recover_ms:.2f}",
            ]
        )
    return render_table(headers, rows)
