"""Window-aligned timelines: reconstruct what each party did per window.

Debugging a covert channel means asking "what happened in window 17?".
This module folds a machine trace onto the channel's window grid and
summarizes per-window activity — trojan evictions, spy probes and their
verdicts — which is how the peel-phase and eviction-reliability bugs in
this repository's own development were located.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["WindowActivity", "ChannelTimeline", "build_timeline"]


@dataclass
class WindowActivity:
    """Everything observed within one timing window."""

    index: int
    start: float
    accesses: int = 0
    evictions: int = 0
    hit_levels: List[int] = field(default_factory=list)
    by_process: Dict[str, int] = field(default_factory=dict)

    @property
    def versions_misses(self) -> int:
        return sum(1 for level in self.hit_levels if level > 0)

    def describe(self) -> str:
        processes = ",".join(f"{name}:{count}" for name, count in sorted(self.by_process.items()))
        return (
            f"w{self.index:04d} +{self.start:.0f}: {self.accesses} acc "
            f"({self.versions_misses} vmiss, {self.evictions} evict) [{processes}]"
        )


@dataclass(frozen=True)
class ChannelTimeline:
    """A sequence of window activities plus grid metadata."""

    windows: tuple
    window_cycles: float
    start_time: float

    def window_of(self, time: float) -> Optional[WindowActivity]:
        """The window containing ``time``, or None when out of range."""
        index = int((time - self.start_time) // self.window_cycles)
        if 0 <= index < len(self.windows):
            return self.windows[index]
        return None

    def busiest(self) -> WindowActivity:
        """The window with the most accesses."""
        return max(self.windows, key=lambda w: w.accesses)

    def quiet_windows(self) -> List[int]:
        """Indices of windows with no MEE activity at all."""
        return [w.index for w in self.windows if w.accesses == 0]

    def render(self, limit: int = 40) -> str:
        """Text view of up to ``limit`` windows."""
        lines = [w.describe() for w in self.windows[:limit]]
        if len(self.windows) > limit:
            lines.append(f"... ({len(self.windows) - limit} more windows)")
        return "\n".join(lines)


def build_timeline(
    machine,
    start_time: float,
    window_cycles: float,
    window_count: int,
    processes: Optional[Sequence[str]] = None,
) -> ChannelTimeline:
    """Fold the machine trace onto a window grid.

    Args:
        machine: machine whose trace (``kind == "access"``) was recorded.
        start_time: grid origin in reference cycles (the channel's t0).
        window_cycles: grid pitch (``Tsync``).
        window_count: number of windows to materialize.
        processes: optional filter — only count these process names.

    Returns:
        The assembled :class:`ChannelTimeline`.
    """
    names = set(processes) if processes is not None else None
    windows = [
        WindowActivity(index=i, start=start_time + i * window_cycles)
        for i in range(window_count)
    ]
    for event in machine.trace.of_kind("access"):
        if names is not None and event.process not in names:
            continue
        outcome = event.detail
        if outcome.mee is None:
            continue
        index = int((event.time - start_time) // window_cycles)
        if not 0 <= index < window_count:
            continue
        window = windows[index]
        window.accesses += 1
        window.hit_levels.append(outcome.mee.hit_level)
        window.evictions += len(outcome.mee.evicted_lines)
        window.by_process[event.process] = window.by_process.get(event.process, 0) + 1
    return ChannelTimeline(
        windows=tuple(windows), window_cycles=window_cycles, start_time=start_time
    )
