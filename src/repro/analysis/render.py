"""ASCII rendering of figures and tables for the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence

from .histogram import Histogram

__all__ = ["render_table", "render_histogram", "render_curve", "render_series"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Left-padded fixed-width table with a header rule."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
        cells.append([str(value) for value in row])
    widths = [max(len(row[col]) for row in cells) for col in range(columns)]
    lines: List[str] = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_histogram(histogram: Histogram, width: int = 50, label: str = "cycles") -> str:
    """Horizontal bar rendering of a histogram."""
    peak = max(histogram.counts) if histogram.counts else 1
    peak = max(peak, 1)
    lines: List[str] = []
    for center, count in zip(histogram.bin_centers(), histogram.counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"{center:8.0f} {label} | {bar} {count}")
    return "\n".join(lines)


def render_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str,
    y_label: str,
    y_max: float = 1.0,
    width: int = 40,
) -> str:
    """One bar per x point, scaled to ``y_max`` (e.g. probability curves)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    lines = [f"{y_label} vs {x_label}"]
    for x, y in zip(xs, ys):
        bar = "#" * max(0, round(width * y / y_max)) if y_max > 0 else ""
        lines.append(f"{x:>10} | {bar} {y:.3f}")
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    marks: Sequence[int] = (),
    width: int = 40,
    lo: float = None,
    hi: float = None,
) -> str:
    """Time-series dots (the probe-time plots of Figures 6 and 8).

    ``marks`` indexes are flagged with ``*`` — used for error bits, like
    the paper's red circles.
    """
    if not values:
        return "(empty series)"
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = max(hi - lo, 1e-9)
    marked = set(marks)
    lines: List[str] = []
    for index, value in enumerate(values):
        position = round((value - lo) / span * (width - 1))
        position = min(max(position, 0), width - 1)
        row = [" "] * width
        row[position] = "*" if index in marked else "o"
        flag = "  <-- error" if index in marked else ""
        lines.append(f"{index:4d} |{''.join(row)}| {value:7.0f}{flag}")
    return "\n".join(lines)
