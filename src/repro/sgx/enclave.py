"""Enclave model: protected allocations plus enclave-mode restrictions."""

from __future__ import annotations

from typing import List

from ..errors import EnclaveError
from ..mem.paging import AddressSpace, MappedRegion
from ..units import PAGE_SIZE, align_up
from .epc import EnclavePageCache

__all__ = ["Enclave"]


class Enclave:
    """One SGX enclave hosted inside a process's address space.

    Semantics enforced (paper Section 3):

    * enclave memory comes from the EPC / MEE protected region and is the
      only memory whose accesses traverse the MEE;
    * **no hugepages** — ``alloc`` always uses 4 KB pages (challenge 3);
    * code running inside the enclave may still *read* the host process's
      non-enclave memory directly — the property the counter-thread timer
      exploits (challenge 4, Figure 2c);
    * ``rdtsc`` faults in enclave mode — enforced by the machine model for
      any process whose ``enclave`` attribute is set.
    """

    def __init__(self, name: str, host_space: AddressSpace, epc: EnclavePageCache):
        self.name = name
        self.host_space = host_space
        self.epc = epc
        self.regions: List[MappedRegion] = []
        self._destroyed = False

    def alloc(self, size: int) -> MappedRegion:
        """Allocate enclave (protected) memory, 4 KB pages only.

        Args:
            size: bytes; rounded up to whole pages.

        Returns:
            The protected :class:`~repro.mem.paging.MappedRegion`.

        Raises:
            EnclaveError: after :meth:`destroy`.
            EPCError: when the EPC is exhausted.
        """
        self._check_alive()
        pages = align_up(max(size, 1), PAGE_SIZE) // PAGE_SIZE
        self.epc.reserve(self.name, pages)
        region = self.host_space.mmap(pages * PAGE_SIZE, protected=True, hugepage=False)
        self.regions.append(region)
        return region

    def alloc_hugepage(self, size: int) -> MappedRegion:
        """Always fails: SGX provides no hugepages (challenge 3)."""
        raise EnclaveError(
            f"enclave {self.name!r}: hugepages are not available in enclave mode"
        )

    def owns(self, vaddr: int) -> bool:
        """True when ``vaddr`` falls inside one of this enclave's regions."""
        return any(vaddr in region for region in self.regions)

    def destroy(self) -> None:
        """Tear the enclave down, releasing EPC pages and unmapping regions."""
        self._check_alive()
        for region in list(self.regions):
            self.host_space.munmap(region)
        self.regions.clear()
        self.epc.release(self.name)
        self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError(f"enclave {self.name!r} was destroyed")

    def __repr__(self) -> str:
        pages = self.epc.usage_of(self.name)
        return f"Enclave({self.name!r}, pages={pages}, regions={len(self.regions)})"
