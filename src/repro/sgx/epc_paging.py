"""EPC oversubscription: the EWB/ELDU paging path.

When enclaves commit more pages than the kernel lets stay resident, SGX
swaps enclave pages to regular DRAM: ``EWB`` encrypts and evicts a page
(with a versioning entry so it cannot be replayed), ``ELDU`` decrypts,
verifies and reloads it.  Both cost tens of thousands of cycles, and a
reloaded page's integrity metadata must be rebuilt — its stale MEE-cache
lines are gone.

The pager is **off by default** (the paper's 128 MB MEE region is never
oversubscribed in its experiments); it exists so the substrate is complete
and so EPC-thrashing scenarios can be studied.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import EPCError
from ..units import PAGE_SIZE

__all__ = ["EPCPagerStats", "EPCPager"]


@dataclass
class EPCPagerStats:
    """Paging activity counters."""

    faults: int = 0
    writebacks: int = 0
    resident_peak: int = 0


class EPCPager:
    """LRU residency control over protected page frames.

    Attributes:
        resident_limit: maximum protected pages resident at once.
        eldu_cycles: reload (decrypt + verify + rebuild metadata) cost.
        ewb_cycles: evict (encrypt + version) cost, paid by the access
            that triggers the eviction — the kernel does the work, the
            faulting thread waits.
    """

    def __init__(
        self,
        resident_limit: int,
        eldu_cycles: float = 40_000.0,
        ewb_cycles: float = 32_000.0,
    ):
        if resident_limit < 1:
            raise EPCError("resident limit must be at least one page")
        self.resident_limit = resident_limit
        self.eldu_cycles = eldu_cycles
        self.ewb_cycles = ewb_cycles
        # frame paddr -> None, in LRU order (oldest first)
        self._resident: OrderedDict = OrderedDict()
        self.stats = EPCPagerStats()

    def _frame_of(self, paddr: int) -> int:
        return paddr - (paddr % PAGE_SIZE)

    def is_resident(self, paddr: int) -> bool:
        """True when the page holding ``paddr`` is in the EPC right now."""
        return self._frame_of(paddr) in self._resident

    def touch(self, paddr: int) -> tuple:
        """Record an access; return (extra_cycles, evicted_frame_or_None).

        A non-resident page faults: ELDU for the page itself plus, when
        the resident set is full, EWB of the LRU victim.
        """
        frame = self._frame_of(paddr)
        if frame in self._resident:
            self._resident.move_to_end(frame)
            return 0.0, None

        extra = self.eldu_cycles
        self.stats.faults += 1
        evicted = None
        if len(self._resident) >= self.resident_limit:
            evicted, _ = self._resident.popitem(last=False)
            extra += self.ewb_cycles
            self.stats.writebacks += 1
        self._resident[frame] = None
        self.stats.resident_peak = max(self.stats.resident_peak, len(self._resident))
        return extra, evicted

    def evict_burst(self, count: int) -> list:
        """Forcibly EWB the ``count`` least-recently-used resident pages.

        Models kernel EPC pressure from *other* enclaves: the victim pages
        leave the EPC (they will fault back in on next touch) and their
        integrity-tree metadata must be scrubbed by the caller, exactly as
        on the demand-paging path.

        Returns:
            The evicted frame addresses, oldest first.
        """
        evicted = []
        for _ in range(min(count, len(self._resident))):
            frame, _ = self._resident.popitem(last=False)
            evicted.append(frame)
            self.stats.writebacks += 1
        return evicted

    def drop(self, paddr: int) -> bool:
        """Remove a page from the resident set (enclave teardown)."""
        frame = self._frame_of(paddr)
        if frame not in self._resident:
            return False
        del self._resident[frame]
        return True

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def export_state(self) -> dict:
        """JSON-safe snapshot: resident frames in LRU order plus counters."""
        return {
            "resident": list(self._resident.keys()),
            "stats": {
                "faults": self.stats.faults,
                "writebacks": self.stats.writebacks,
                "resident_peak": self.stats.resident_peak,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._resident = OrderedDict((int(frame), None) for frame in state["resident"])
        stats = state["stats"]
        self.stats = EPCPagerStats(
            faults=int(stats["faults"]),
            writebacks=int(stats["writebacks"]),
            resident_peak=int(stats["resident_peak"]),
        )
