"""OCALL cost model.

OCALLs let enclave code call out to untrusted functions — e.g. to execute
``rdtsc`` (paper Figure 2b) — but the enclave exit/re-entry costs 8000 to
15000 cycles, far too coarse to time a single ~500-cycle memory access.
That overhead is what forces the paper onto the counter-thread timer.
"""

from __future__ import annotations

import numpy as np

from ..config import TimerConfig

__all__ = ["OCallModel"]


class OCallModel:
    """Samples enclave exit + untrusted call + re-entry costs."""

    def __init__(self, config: TimerConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng
        self.calls = 0

    def sample_cost(self) -> int:
        """Total round-trip cycles for one OCALL.

        Uniform over the paper's measured 8000–15000 range; the mass near
        the ends models warm vs. cold transitions.
        """
        self.calls += 1
        low = self.config.ocall_min_cycles
        high = self.config.ocall_max_cycles
        return int(self._rng.integers(low, high + 1))

    def split_cost(self) -> tuple:
        """(exit_cycles, reentry_cycles) for one OCALL round trip.

        The untrusted function runs between the two halves; splitting lets
        the timer model place the ``rdtsc`` at the instant it truly executes.
        """
        total = self.sample_cost()
        exit_fraction = float(self._rng.uniform(0.45, 0.55))
        exit_cycles = int(total * exit_fraction)
        return exit_cycles, total - exit_cycles
