"""The three timing mechanisms of paper Figure 2, as yieldable helpers.

Attack code measures latency by bracketing an access between two timer
reads.  Each mechanism is a small generator meant to be driven with
``yield from`` inside a simulated process:

* :class:`DirectRdtscTimer` — plain ``rdtsc``; faults inside an enclave
  (Figure 2a).
* :class:`OCallTimer` — exit the enclave, ``rdtsc``, re-enter; 8000–15000
  cycles of overhead per read (Figure 2b).
* :class:`CounterThreadTimer` — read the counter a non-enclave hyperthread
  keeps in shared memory; ~50 cycles and slightly stale (Figure 2c).
"""

from __future__ import annotations

from typing import Generator

from ..sim.ops import Access, Busy, Flush, Operation, OpResult, Rdtsc, ReadTimer
from .ocall import OCallModel

__all__ = [
    "TimerMechanism",
    "DirectRdtscTimer",
    "OCallTimer",
    "CounterThreadTimer",
    "measured_access",
]


class TimerMechanism:
    """Base class: a timer is something whose ``read()`` yields ops and
    returns a timestamp in cycles."""

    name = "abstract"

    def read(self) -> Generator[Operation, OpResult, int]:
        """Yield the operations of one timestamp read; return the value."""
        raise NotImplementedError

    def overhead_estimate(self) -> float:
        """Approximate cycles one read costs (for protocol budgeting)."""
        raise NotImplementedError


class DirectRdtscTimer(TimerMechanism):
    """Figure 2(a): a plain ``rdtsc`` — non-enclave code only."""

    name = "rdtsc"

    def __init__(self, rdtsc_cycles: int = 24):
        self._cost = rdtsc_cycles

    def read(self) -> Generator[Operation, OpResult, int]:
        result = yield Rdtsc()
        return int(result.value)

    def overhead_estimate(self) -> float:
        return float(self._cost)


class OCallTimer(TimerMechanism):
    """Figure 2(b): OCALL out of the enclave to run ``rdtsc``.

    Functionally correct but uselessly expensive (8000–15000 cycles), which
    is exactly the point the paper makes.
    """

    name = "ocall"

    def __init__(self, model: OCallModel):
        self._model = model

    def read(self) -> Generator[Operation, OpResult, int]:
        exit_cycles, reentry_cycles = self._model.split_cost()
        yield Busy(exit_cycles)
        result = yield Rdtsc(via_ocall=True)
        yield Busy(reentry_cycles)
        return int(result.value)

    def overhead_estimate(self) -> float:
        cfg = self._model.config
        return (cfg.ocall_min_cycles + cfg.ocall_max_cycles) / 2.0


class CounterThreadTimer(TimerMechanism):
    """Figure 2(c): hyperthread keeps a counter in non-enclave memory.

    The helper thread spins executing ``rdtsc`` and storing the value; the
    enclave thread reads that shared (non-enclave) location directly at
    cache-hit cost.  The machine model prices the read at ~50 cycles and
    returns a value up to one update interval stale.
    """

    name = "counter-thread"

    def __init__(self, read_cycles: int = 50):
        self._cost = read_cycles

    def read(self) -> Generator[Operation, OpResult, int]:
        result = yield ReadTimer()
        return int(result.value)

    def overhead_estimate(self) -> float:
        return float(self._cost)


def measured_access(
    timer: TimerMechanism, vaddr: int, flush_after: bool = True
) -> Generator[Operation, OpResult, int]:
    """Time one load of ``vaddr`` with ``timer``; optionally clflush after.

    This is the probe primitive of Algorithm 1 / Algorithm 2: access,
    measure, flush so the next access goes to memory again.

    Returns:
        The measured latency in cycles (including timer-read error).
    """
    start = yield from timer.read()
    yield Access(vaddr)
    end = yield from timer.read()
    if flush_after:
        yield Flush(vaddr)
    return end - start
