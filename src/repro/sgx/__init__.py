"""SGX substrate: enclaves, the EPC, and enclave-mode restrictions.

Models exactly the SGX properties the paper's Section 3 identifies as
challenges: enclave data lives in the MEE-protected region (challenge 1);
enclaves get only 4 KB pages (challenge 3); ``rdtsc`` faults in enclave
mode, making OCALL-based timing expensive and motivating the hyperthread
counter-thread timer (challenge 4, Figure 2).
"""

from .enclave import Enclave
from .epc import EnclavePageCache
from .epc_paging import EPCPager
from .ocall import OCallModel
from .timing import (
    CounterThreadTimer,
    DirectRdtscTimer,
    OCallTimer,
    TimerMechanism,
    measured_access,
)

__all__ = [
    "CounterThreadTimer",
    "DirectRdtscTimer",
    "EPCPager",
    "Enclave",
    "EnclavePageCache",
    "OCallModel",
    "OCallTimer",
    "TimerMechanism",
    "measured_access",
]
