"""The Enclave Page Cache: accounting for the protected region.

The paper's platform reserves 128 MB of DRAM as the MEE region; enclave
pages are carved out of it.  This class tracks per-enclave consumption so
over-commit fails the way real ``ECREATE``/``EADD`` would.
"""

from __future__ import annotations

from typing import Dict

from ..errors import EPCError
from ..units import PAGE_SIZE

__all__ = ["EnclavePageCache"]


class EnclavePageCache:
    """Page-budget accounting over the MEE protected region."""

    def __init__(self, total_bytes: int):
        if total_bytes % PAGE_SIZE != 0:
            raise EPCError("EPC size must be page aligned")
        self.total_pages = total_bytes // PAGE_SIZE
        self._used: Dict[str, int] = {}

    @property
    def used_pages(self) -> int:
        """Pages currently committed across all enclaves."""
        return sum(self._used.values())

    @property
    def free_pages(self) -> int:
        """Pages still available."""
        return self.total_pages - self.used_pages

    def reserve(self, enclave_name: str, pages: int) -> None:
        """Commit ``pages`` to an enclave; raises EPCError when oversubscribed."""
        if pages < 0:
            raise EPCError("cannot reserve a negative page count")
        if pages > self.free_pages:
            raise EPCError(
                f"EPC exhausted: {enclave_name} wants {pages} pages, "
                f"{self.free_pages} free"
            )
        self._used[enclave_name] = self._used.get(enclave_name, 0) + pages

    def release(self, enclave_name: str) -> int:
        """Tear down an enclave, freeing its pages; returns pages released."""
        return self._used.pop(enclave_name, 0)

    def usage_of(self, enclave_name: str) -> int:
        """Pages committed to one enclave."""
        return self._used.get(enclave_name, 0)

    def export_state(self) -> dict:
        """JSON-safe snapshot of per-enclave page commitments."""
        return {"used": dict(self._used)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._used = {name: int(pages) for name, pages in state["used"].items()}
