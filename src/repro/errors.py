"""Exception hierarchy for the MEE covert-channel reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from simulated-hardware faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AddressError(ReproError):
    """A virtual or physical address is malformed or unmapped."""


class PagingError(AddressError):
    """Page-table manipulation failed (double map, exhausted frames, ...)."""


class EnclaveError(ReproError):
    """An enclave-mode restriction was violated or an enclave misused."""


class InstructionNotAvailableError(EnclaveError):
    """An instruction (e.g. ``rdtsc``) was executed where the simulated
    hardware forbids it (paper Section 3, challenge 4)."""


class EPCError(EnclaveError):
    """The Enclave Page Cache / MEE protected region is exhausted or the
    requested allocation does not fit."""


class IntegrityError(ReproError):
    """The simulated MEE detected an integrity or freshness violation."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime invariant checker caught the simulated machine in an
    inconsistent state (duplicate cache tags, stale holder maps, a
    non-monotonic clock, ...).

    Attributes:
        checker: name of the checker that fired (``"cache"``, ``"mee"``...).
        dump: minimized state dump — only the offending structures, keyed
            by a short description, so the failure is debuggable without
            the live machine.
    """

    def __init__(self, checker: str, message: str, dump: dict = None):
        super().__init__(f"[{checker}] {message}")
        self.checker = checker
        self.dump = dict(dump) if dump else {}


class OracleDivergence(InvariantViolation):
    """The fast-path cache and the slow reference model disagreed on the
    outcome of an operation (differential-oracle mode)."""


class SnapshotError(SimulationError):
    """A machine snapshot could not be restored: unsupported version,
    malformed payload, or a post-restore fingerprint mismatch (corruption)."""


class ProcessError(SimulationError):
    """A simulated process yielded an operation the scheduler cannot run."""


class ChannelError(ReproError):
    """Covert-channel setup failed (no eviction set, no monitor address...)."""


class CodingError(ChannelError):
    """A reliability-stack codec was misused (invalid geometry, wrong
    block length) or a decode exceeded the code's correction capacity —
    a :class:`ChannelError` because coding failures surface to callers as
    channel-delivery failures."""


class FaultError(ReproError):
    """A fault plan is malformed or a fault could not be injected (unknown
    fault kind, core out of range, overlapping modifier on one core...)."""


class TrialError(ReproError):
    """An experiment trial failed; carries enough context (seed, cause) to
    replay the trial in isolation."""


class TrialTimeoutError(TrialError):
    """An experiment trial exceeded its wall-clock budget and was abandoned
    (the worker may have been killed mid-trial)."""
