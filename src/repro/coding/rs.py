"""Systematic Reed-Solomon over GF(256) with errors-and-erasures decoding.

The channel's fault-induced error process is *bursty*: a stolen time
slice garbles a run of adjacent windows (bits), which packs into one or
two adjacent byte symbols.  Reed-Solomon corrects whole symbols, so a
burst costs the same budget as a single bit flip inside it — the reason
RS (and not a bit-oriented code) is the right FEC for this channel.

A codeword with ``nsym`` parity symbols corrects ``e`` symbol errors and
``f`` erasures whenever ``2e + f <= nsym``; erasure positions come from
the soft-decision demodulator (probe latencies too close to the hit/miss
threshold of Figure 5), so a symbol the channel already knows it fumbled
costs half the budget of one it must locate itself.

Decoding is the textbook pipeline: syndromes → Forney syndromes (erasure
contribution divided out) → Berlekamp-Massey error locator → Chien search
→ errata evaluator → Forney magnitudes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CodingError
from .gf256 import gf_div, gf_inverse, gf_mul, gf_pow, poly_eval, poly_mul

__all__ = ["ReedSolomon"]

#: symbols per codeword can never exceed the field's multiplicative order
MAX_CODEWORD_SYMBOLS = 255


def _conv(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Polynomial product for lowest-degree-first coefficient lists."""
    out = [0] * (len(p) + len(q) - 1)
    for i, pc in enumerate(p):
        if pc:
            for j, qc in enumerate(q):
                out[i + j] ^= gf_mul(pc, qc)
    return out


def _eval_low(p: Sequence[int], x: int) -> int:
    """Evaluate a lowest-degree-first polynomial at ``x``."""
    value = 0
    for coef in reversed(p):
        value = gf_mul(value, x) ^ coef
    return value


class ReedSolomon:
    """RS(k + nsym, k) codec on byte symbols, shortened-code friendly.

    ``encode`` appends ``nsym`` parity symbols to any message of up to
    ``255 - nsym`` symbols; shorter messages behave as shortened codes
    with the same correction capacity.  ``decode`` repairs up to
    ``nsym // 2`` symbol errors, or more when erasure positions are
    supplied (``2 * errors + erasures <= nsym``), and raises
    :class:`~repro.errors.CodingError` — never returns silently wrong
    data — when the corruption exceeds that budget and is detectable.
    """

    def __init__(self, nsym: int):
        if nsym < 2 or nsym % 2 != 0:
            raise CodingError(f"nsym must be even and >= 2, got {nsym}")
        if nsym >= MAX_CODEWORD_SYMBOLS:
            raise CodingError(f"nsym must be < {MAX_CODEWORD_SYMBOLS}, got {nsym}")
        self.nsym = nsym
        generator = [1]
        for power in range(nsym):
            generator = poly_mul(generator, [1, gf_pow(2, power)])
        self._generator = generator

    # -- encode ------------------------------------------------------------

    def encode(self, data: Sequence[int]) -> List[int]:
        """``data`` symbols followed by ``nsym`` parity symbols."""
        data = list(data)
        if not data:
            raise CodingError("cannot encode an empty message")
        if len(data) + self.nsym > MAX_CODEWORD_SYMBOLS:
            raise CodingError(
                f"{len(data)} data + {self.nsym} parity symbols exceed the "
                f"{MAX_CODEWORD_SYMBOLS}-symbol codeword limit"
            )
        for symbol in data:
            if not 0 <= symbol <= 255:
                raise CodingError(f"symbols must be bytes 0..255, got {symbol!r}")
        # Polynomial long division of data * x^nsym by the generator; the
        # remainder is the parity block (systematic encoding).
        remainder = data + [0] * self.nsym
        for index in range(len(data)):
            lead = remainder[index]
            if lead == 0:
                continue
            for offset, coef in enumerate(self._generator):
                if coef:
                    remainder[index + offset] ^= gf_mul(coef, lead)
        return data + remainder[len(data) :]

    # -- decode ------------------------------------------------------------

    def _syndromes(self, word: Sequence[int]) -> List[int]:
        """``S_i = word(alpha^i)`` for ``i`` in 0..nsym-1 (lowest first)."""
        return [poly_eval(word, gf_pow(2, power)) for power in range(self.nsym)]

    def _forney_syndromes(
        self, syndromes: Sequence[int], erase_coefs: Sequence[int]
    ) -> List[int]:
        """Syndromes with the erasure contribution divided out, so
        Berlekamp-Massey sees only the unknown-position errors."""
        modified = list(syndromes)
        for coef in erase_coefs:
            x = gf_pow(2, coef)
            for index in range(len(modified) - 1):
                modified[index] = gf_mul(modified[index], x) ^ modified[index + 1]
            modified.pop()
        return modified

    def _berlekamp_massey(self, syndromes: Sequence[int], budget: int) -> List[int]:
        """Error-locator polynomial (highest degree first), degree capped
        by the remaining correction ``budget``."""
        locator = [1]
        previous = [1]
        for step in range(len(syndromes)):
            previous = previous + [0]
            delta = syndromes[step]
            for index in range(1, len(locator)):
                delta ^= gf_mul(
                    locator[len(locator) - 1 - index], syndromes[step - index]
                )
            if delta != 0:
                if len(previous) > len(locator):
                    swapped = [gf_mul(coef, delta) for coef in previous]
                    previous = [gf_div(coef, delta) for coef in locator]
                    locator = swapped
                scaled = [gf_mul(coef, delta) for coef in previous]
                padded = [0] * (len(locator) - len(scaled)) + scaled
                locator = [a ^ b for a, b in zip(locator, padded)]
        while len(locator) > 1 and locator[0] == 0:
            locator.pop(0)
        if len(locator) - 1 > budget:
            raise CodingError(
                f"corruption exceeds correction capacity: {len(locator) - 1} "
                f"errors located with budget for {budget}"
            )
        return locator

    def _chien_search(self, locator: Sequence[int], length: int) -> List[int]:
        """Coefficient positions (degrees) where the locator's roots sit."""
        reciprocal = list(reversed(locator))  # roots at X_i instead of 1/X_i
        coefs = [
            coef
            for coef in range(length)
            if poly_eval(reciprocal, gf_pow(2, coef)) == 0
        ]
        if len(coefs) != len(locator) - 1:
            raise CodingError(
                "error locator roots do not match its degree — corruption "
                "beyond the code's correction capacity"
            )
        return coefs

    def decode(
        self, word: Sequence[int], erase_pos: Sequence[int] = ()
    ) -> Tuple[List[int], List[int]]:
        """Correct up to ``nsym//2`` errors plus the given erasures.

        Args:
            word: received codeword (data + parity symbols).
            erase_pos: indices into ``word`` the demodulator flagged as
                unreliable; each costs one budget unit instead of two.

        Returns:
            ``(data_symbols, corrected_positions)`` — the repaired message
            with parity stripped, and every word index whose symbol was
            changed.

        Raises:
            CodingError: corruption beyond ``2e + f <= nsym`` where
                detected (residual syndromes are always re-checked, so a
                miscorrection slipping through requires beating the code's
                minimum distance, not a library bug).
        """
        word = list(word)
        if len(word) <= self.nsym:
            raise CodingError(
                f"codeword of {len(word)} symbols has no data (nsym={self.nsym})"
            )
        if len(word) > MAX_CODEWORD_SYMBOLS:
            raise CodingError(f"codeword longer than {MAX_CODEWORD_SYMBOLS} symbols")
        erase_pos = sorted(set(erase_pos))
        if erase_pos and (erase_pos[0] < 0 or erase_pos[-1] >= len(word)):
            raise CodingError(f"erasure positions out of range for {len(word)} symbols")
        if len(erase_pos) > self.nsym:
            raise CodingError(
                f"{len(erase_pos)} erasures exceed the {self.nsym}-symbol budget"
            )
        syndromes = self._syndromes(word)
        if max(syndromes) == 0:
            return word[: -self.nsym], []

        # Word indexes count from the left; locator arithmetic wants the
        # coefficient position (degree) counted from the right.
        erase_coefs = [len(word) - 1 - position for position in erase_pos]
        forney = self._forney_syndromes(syndromes, erase_coefs)
        budget = (self.nsym - len(erase_pos)) // 2
        error_locator = self._berlekamp_massey(forney, budget)
        error_coefs = self._chien_search(error_locator, len(word))
        all_coefs = sorted(set(error_coefs) | set(erase_coefs))

        # Errata locator Lambda(x) = prod (1 - X_i x) and evaluator
        # Omega(x) = S(x) Lambda(x) mod x^nsym, both lowest degree first.
        errata = [1]
        for coef in all_coefs:
            errata = _conv(errata, [1, gf_pow(2, coef)])
        omega = _conv(syndromes, errata)[: self.nsym]

        corrected: List[int] = []
        for coef in all_coefs:
            x = gf_pow(2, coef)
            x_inverse = gf_inverse(x)
            denominator = 1
            for other in all_coefs:
                if other != coef:
                    denominator = gf_mul(
                        denominator, 1 ^ gf_mul(x_inverse, gf_pow(2, other))
                    )
            if denominator == 0:
                raise CodingError("repeated errata location — uncorrectable word")
            # Forney with first consecutive root alpha^0: the X_i factor of
            # Lambda'(1/X_i) cancels the X_i^{1-b} numerator term exactly.
            magnitude = gf_div(_eval_low(omega, x_inverse), denominator)
            if magnitude:
                position = len(word) - 1 - coef
                word[position] ^= magnitude
                corrected.append(position)

        if max(self._syndromes(word)) != 0:
            raise CodingError(
                "residual syndromes after correction — corruption beyond "
                "the code's capacity"
            )
        return word[: -self.nsym], sorted(corrected)
