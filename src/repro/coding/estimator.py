"""Channel-quality estimation from FEC decoder telemetry.

The receiver cannot see the storm directly — it sees its *consequences*:
how many symbols each frame's FEC had to repair, how many erasures the
soft demodulator flagged, and which frames still failed their CRC.  The
estimator folds that per-frame telemetry into exponentially weighted
rates, giving the adaptive code-rate controller
(:class:`~repro.core.adaptive.AdaptiveCodeRateController`) a smoothed,
deterministic view of the error process: replaying the same frame
history reproduces the same estimates bit for bit.
"""

from __future__ import annotations

from typing import List

from ..errors import CodingError

__all__ = ["ChannelQualityEstimator"]

#: regime cutoffs on the smoothed symbol-error estimate
_QUIET_BELOW = 0.02
_STORM_ABOVE = 0.12


class ChannelQualityEstimator:
    """EWMA tracker of symbol-error, erasure, and frame-failure rates."""

    def __init__(self, alpha: float = 0.25):
        if not 0.0 < alpha <= 1.0:
            raise CodingError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._symbol_error_rate = 0.0
        self._erasure_rate = 0.0
        self._failure_rate = 0.0
        self.frames_observed = 0
        #: (symbol_error_rate, erasure_rate, failure_rate) after each frame
        self.history: List[tuple] = []

    def _blend(self, current: float, sample: float) -> float:
        if self.frames_observed == 0:
            return sample
        return (1.0 - self.alpha) * current + self.alpha * sample

    def observe_frame(
        self,
        symbols: int,
        corrected: int,
        erasures: int,
        delivered: bool,
    ) -> None:
        """Fold one frame attempt's decoder telemetry into the estimates.

        Args:
            symbols: wire symbols (or bits, for bit-oriented schemes) the
                frame occupied — the denominator.
            corrected: symbols the FEC repaired; for a failed frame this
                undercounts the true corruption, so a failure pins the
                sample at the full correction budget's worth of damage.
            erasures: soft-decision erasure flags consumed.
            delivered: whether the frame ultimately passed its CRC.
        """
        if symbols < 1:
            raise CodingError(f"frame must span at least one symbol, got {symbols}")
        if corrected < 0 or erasures < 0:
            raise CodingError("corrected/erasures cannot be negative")
        error_sample = min(corrected / symbols, 1.0)
        if not delivered:
            # The decoder only reports what it *could* fix; an undelivered
            # frame means the corruption exceeded that, so saturate well
            # above the storm threshold instead of underreporting.  The
            # floor scales with the smoothed failure rate: an isolated
            # failure (quiet-machine background loss) pins the sample just
            # past the storm cutoff, while a persistent failure streak —
            # every sample censored, the channel plausibly far worse than
            # any decoder can report — raises it toward the regime where
            # only the heaviest codes survive.
            floor = 2.0 * _STORM_ABOVE + 0.5 * max(0.0, self._failure_rate - 0.6)
            error_sample = max(error_sample, floor)
        self._symbol_error_rate = self._blend(self._symbol_error_rate, error_sample)
        self._erasure_rate = self._blend(
            self._erasure_rate, min(erasures / symbols, 1.0)
        )
        self._failure_rate = self._blend(
            self._failure_rate, 0.0 if delivered else 1.0
        )
        self.frames_observed += 1
        self.history.append(
            (self._symbol_error_rate, self._erasure_rate, self._failure_rate)
        )

    @property
    def symbol_error_rate(self) -> float:
        """Smoothed fraction of wire symbols the FEC repairs per frame."""
        return self._symbol_error_rate

    @property
    def erasure_rate(self) -> float:
        """Smoothed fraction of wire symbols flagged as erasures."""
        return self._erasure_rate

    @property
    def frame_failure_rate(self) -> float:
        """Smoothed fraction of frame attempts that failed their CRC."""
        return self._failure_rate

    @property
    def regime(self) -> str:
        """``"quiet"``, ``"moderate"``, or ``"storm"`` — the qualitative
        operating regime implied by the smoothed error estimate."""
        if self._symbol_error_rate < _QUIET_BELOW:
            return "quiet"
        if self._symbol_error_rate > _STORM_ABOVE:
            return "storm"
        return "moderate"
