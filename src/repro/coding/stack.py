"""Pluggable reliability stacks: profile → encode/decode pipeline.

A :class:`CodingProfile` names one rung of the redundancy ladder — from
``raw`` (the paper's no-error-handling channel) through SECDED Hamming
to interleaved Reed-Solomon — and :class:`CodingStack` turns it into a
bit-in/bit-out pipeline the link layer can swap at frame granularity:

* ``raw``         — identity; errors surface to the frame CRC;
* ``repetition``  — per-bit repetition with (soft) majority vote;
* ``secded``      — Hamming(8,4): corrects singles, *detects* doubles
  and reports the words as erasures instead of miscorrecting;
* ``rs``          — byte-symbol Reed-Solomon split over
  ``interleave_depth`` codewords transmitted column-major, with
  soft-decision erasure flagging (probe latencies too close to the
  Figure 5 hit/miss threshold) feeding the errors-and-erasures decoder.

Geometry is derived per message: the payload's symbols are split evenly
across ``interleave_depth`` codewords, so short link frames do not pay
for a fixed block size.  Both endpoints derive the identical geometry
from the agreed payload length — nothing about the stack needs to be
negotiated in-band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.ecc import (
    repetition_encode,
    secded84_decode,
    secded84_encode,
)
from ..errors import CodingError
from .interleave import deinterleave, interleave
from .rs import MAX_CODEWORD_SYMBOLS, ReedSolomon

__all__ = [
    "CodingProfile",
    "CodingStack",
    "StackDecode",
    "PROFILES",
    "DEFAULT_LADDER",
    "profile_by_name",
]

_SCHEMES = ("raw", "repetition", "secded", "rs")
#: bits per RS symbol
_SYMBOL_BITS = 8


@dataclass(frozen=True)
class CodingProfile:
    """One reliability configuration, identified by ``name``.

    Attributes:
        scheme: pipeline kind (see module docstring).
        repetition_factor: copies per bit for ``repetition``.
        rs_parity_symbols: parity symbols per RS codeword (corrects
            ``nsym // 2`` errors, ``nsym`` erasures).
        interleave_depth: RS codewords the payload is split across and
            interleaved over; a channel burst of ``b`` symbols costs each
            codeword only ``ceil(b / depth)`` of its budget.
        erasure_confidence: soft-decision cutoff — a symbol whose least
            confident bit falls below this is offered to the RS decoder
            as an erasure (half the budget of an unlocated error).
    """

    name: str
    scheme: str
    repetition_factor: int = 3
    rs_parity_symbols: int = 8
    interleave_depth: int = 1
    erasure_confidence: float = 0.35

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise CodingError(f"unknown coding scheme {self.scheme!r}")
        if self.scheme == "repetition" and (
            self.repetition_factor < 1 or self.repetition_factor % 2 == 0
        ):
            raise CodingError("repetition factor must be odd and >= 1")
        if self.scheme == "rs":
            if self.rs_parity_symbols < 2 or self.rs_parity_symbols % 2:
                raise CodingError("rs_parity_symbols must be even and >= 2")
            if self.interleave_depth < 1:
                raise CodingError("interleave_depth must be >= 1")
        if not 0.0 <= self.erasure_confidence <= 1.0:
            raise CodingError("erasure_confidence must be in [0, 1]")


@dataclass(frozen=True)
class StackDecode:
    """Outcome of one stack decode.

    ``bits`` always has the requested payload length — blocks the FEC
    could not repair pass their systematic symbols through unchanged, so
    the frame CRC (not the codec) stays the final arbiter of integrity.
    """

    bits: List[int]
    #: symbols (rs) / codewords (secded) / bit-groups (repetition) repaired
    corrected: int = 0
    #: erasure positions the decoder actually consumed
    erasures_used: int = 0
    #: blocks whose corruption exceeded the correction budget
    failed_blocks: int = 0

    @property
    def ok(self) -> bool:
        """True when no block exceeded its correction capacity."""
        return self.failed_blocks == 0


def _binomial_tail(n: int, p: float, threshold: int) -> float:
    """P(Binomial(n, p) > threshold), computed exactly."""
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0 if n > threshold else 0.0
    return sum(
        math.comb(n, k) * p**k * (1.0 - p) ** (n - k)
        for k in range(threshold + 1, n + 1)
    )


def _bits_to_symbols(bits: Sequence[int]) -> List[int]:
    symbols = []
    for start in range(0, len(bits), _SYMBOL_BITS):
        value = 0
        for bit in bits[start : start + _SYMBOL_BITS]:
            value = (value << 1) | bit
        symbols.append(value)
    return symbols


def _symbols_to_bits(symbols: Sequence[int]) -> List[int]:
    bits: List[int] = []
    for symbol in symbols:
        bits.extend((symbol >> shift) & 1 for shift in range(_SYMBOL_BITS - 1, -1, -1))
    return bits


class CodingStack:
    """Encode/decode pipeline for one :class:`CodingProfile`."""

    def __init__(self, profile: CodingProfile):
        self.profile = profile
        self._rs: Optional[ReedSolomon] = (
            ReedSolomon(profile.rs_parity_symbols) if profile.scheme == "rs" else None
        )

    # -- geometry ----------------------------------------------------------

    def _rs_geometry(self, data_bits: int) -> Tuple[int, int, int]:
        """(codewords, data symbols per codeword, total wire symbols)."""
        profile = self.profile
        symbols = max(1, -(-data_bits // _SYMBOL_BITS))
        depth = profile.interleave_depth
        width = -(-symbols // depth)
        if width + profile.rs_parity_symbols > MAX_CODEWORD_SYMBOLS:
            raise CodingError(
                f"{data_bits} data bits need {width}-symbol codewords at "
                f"depth {depth}: over the {MAX_CODEWORD_SYMBOLS}-symbol limit"
            )
        return depth, width, depth * (width + profile.rs_parity_symbols)

    def encoded_length(self, data_bits: int) -> int:
        """Wire bits a ``data_bits``-bit payload occupies under this stack."""
        if data_bits < 1:
            raise CodingError(f"payload must be at least one bit, got {data_bits}")
        scheme = self.profile.scheme
        if scheme == "raw":
            return data_bits
        if scheme == "repetition":
            return data_bits * self.profile.repetition_factor
        if scheme == "secded":
            return -(-data_bits // 4) * 8
        _, _, wire_symbols = self._rs_geometry(data_bits)
        return wire_symbols * _SYMBOL_BITS

    def correction_capacity(self, data_bits: int) -> int:
        """Unknown-position errors the stack can repair in one payload —
        the normalizer for the adaptive controller's FEC-load signal."""
        scheme = self.profile.scheme
        if scheme == "raw":
            return 0
        if scheme == "repetition":
            return data_bits * (self.profile.repetition_factor // 2)
        if scheme == "secded":
            return -(-data_bits // 4)
        depth, _, _ = self._rs_geometry(data_bits)
        return depth * (self.profile.rs_parity_symbols // 2)

    # -- prediction --------------------------------------------------------

    def predicted_frame_failure(
        self,
        data_bits: int,
        symbol_error_rate: float,
        erasure_rate: float = 0.0,
    ) -> float:
        """Probability a ``data_bits`` frame survives decoding wrong.

        A small channel model for code-rate selection: given the measured
        symbol error rate ``q`` (8-bit symbols; from
        :class:`~repro.coding.ChannelQualityEstimator`), predict the
        chance that corruption exceeds this stack's correction budget —
        independent symbol errors, binomial tails over each block.
        ``erasure_rate`` credits the soft demodulator: flagged symbols
        cost an RS codeword half the budget of an unlocated error, so the
        effective budget grows with the fraction of errors arriving
        pre-located.  The prediction lets an adaptive controller rank
        rungs *before* paying a failed frame to learn the same lesson.
        """
        q = min(max(symbol_error_rate, 0.0), 1.0)
        if q == 0.0:
            return 0.0
        # per-bit rate implied by the symbol rate
        p = 1.0 - (1.0 - q) ** (1.0 / _SYMBOL_BITS)
        scheme = self.profile.scheme
        if scheme == "raw":
            return 1.0 - (1.0 - p) ** data_bits
        if scheme == "repetition":
            factor = self.profile.repetition_factor
            group = _binomial_tail(factor, p, factor // 2)
            return 1.0 - (1.0 - group) ** data_bits
        if scheme == "secded":
            words = -(-data_bits // 4)
            word = _binomial_tail(8, p, 1)
            return 1.0 - (1.0 - word) ** words
        depth, width, _ = self._rs_geometry(data_bits)
        nsym = self.profile.rs_parity_symbols
        block = width + nsym
        budget = nsym // 2 + int(round(
            min(max(erasure_rate, 0.0), 1.0) * block / 2.0
        ))
        budget = min(budget, nsym)
        per_block = _binomial_tail(block, q, budget)
        return 1.0 - (1.0 - per_block) ** depth

    # -- encode ------------------------------------------------------------

    def encode(self, bits: Sequence[int]) -> List[int]:
        """Payload bits → wire bits (padded to the scheme's granularity)."""
        bits = list(bits)
        if not bits:
            raise CodingError("cannot encode an empty payload")
        scheme = self.profile.scheme
        if scheme == "raw":
            return bits
        if scheme == "repetition":
            return repetition_encode(bits, factor=self.profile.repetition_factor)
        if scheme == "secded":
            padded = bits + [0] * (-len(bits) % 4)
            return secded84_encode(padded)
        depth, width, _ = self._rs_geometry(len(bits))
        padded = bits + [0] * (-len(bits) % _SYMBOL_BITS)
        symbols = _bits_to_symbols(padded)
        symbols += [0] * (depth * width - len(symbols))
        codewords: List[int] = []
        for row in range(depth):
            codewords.extend(self._rs.encode(symbols[row * width : (row + 1) * width]))
        return _symbols_to_bits(interleave(codewords, depth))

    # -- decode ------------------------------------------------------------

    def _decode_rs(
        self,
        bits: Sequence[int],
        data_bits: int,
        confidences: Optional[Sequence[float]],
    ) -> StackDecode:
        profile = self.profile
        depth, width, wire_symbols = self._rs_geometry(data_bits)
        symbols = _bits_to_symbols(bits)
        if confidences is not None:
            symbol_confidence = [
                min(confidences[start : start + _SYMBOL_BITS])
                for start in range(0, len(confidences), _SYMBOL_BITS)
            ]
        else:
            symbol_confidence = [1.0] * len(symbols)
        symbols = deinterleave(symbols, depth)
        symbol_confidence = deinterleave(symbol_confidence, depth)

        block_length = width + profile.rs_parity_symbols
        nsym = profile.rs_parity_symbols
        recovered: List[int] = []
        corrected = erasures_used = failed = 0
        for row in range(depth):
            block = symbols[row * block_length : (row + 1) * block_length]
            confidence = symbol_confidence[
                row * block_length : (row + 1) * block_length
            ]
            doubtful = sorted(
                (
                    index
                    for index, value in enumerate(confidence)
                    if value < profile.erasure_confidence
                ),
                key=lambda index: confidence[index],
            )[:nsym]
            try:
                data, fixed = self._rs.decode(block, erase_pos=doubtful)
                corrected += len(fixed)
                erasures_used += len(doubtful)
            except CodingError:
                # Mislabelled erasures can sink a decodable word; fall back
                # to errors-only before declaring the block lost.
                try:
                    data, fixed = self._rs.decode(block)
                    corrected += len(fixed)
                except CodingError:
                    data = block[:width]
                    failed += 1
            recovered.extend(data)
        return StackDecode(
            bits=_symbols_to_bits(recovered)[:data_bits],
            corrected=corrected,
            erasures_used=erasures_used,
            failed_blocks=failed,
        )

    def _decode_repetition(
        self,
        bits: Sequence[int],
        data_bits: int,
        confidences: Optional[Sequence[float]],
    ) -> StackDecode:
        factor = self.profile.repetition_factor
        decoded: List[int] = []
        corrected = 0
        for group in range(data_bits):
            votes = bits[group * factor : (group + 1) * factor]
            if confidences is not None:
                weights = confidences[group * factor : (group + 1) * factor]
                score = sum(w if bit else -w for bit, w in zip(votes, weights))
                value = 1 if score > 0 else 0 if score < 0 else (
                    1 if sum(votes) * 2 > factor else 0
                )
            else:
                value = 1 if sum(votes) * 2 > factor else 0
            if any(bit != value for bit in votes):
                corrected += 1
            decoded.append(value)
        return StackDecode(bits=decoded, corrected=corrected)

    def decode(
        self,
        bits: Sequence[int],
        data_bits: int,
        confidences: Optional[Sequence[float]] = None,
    ) -> StackDecode:
        """Wire bits → payload bits plus a correction/failure report.

        Args:
            bits: received wire bits (length must equal
                :meth:`encoded_length` of ``data_bits``).
            data_bits: payload length both endpoints agreed on.
            confidences: optional per-wire-bit demodulation confidences in
                [0, 1] (:attr:`~repro.core.channel.ChannelResult.confidences`);
                enables erasure flagging (rs) and soft voting (repetition).
        """
        expected = self.encoded_length(data_bits)
        if len(bits) != expected:
            raise CodingError(
                f"wire length {len(bits)} != {expected} expected for "
                f"{data_bits} data bits under {self.profile.name!r}"
            )
        if confidences is not None and len(confidences) != len(bits):
            raise CodingError("confidences must align with the wire bits")
        scheme = self.profile.scheme
        if scheme == "raw":
            return StackDecode(bits=list(bits))
        if scheme == "repetition":
            return self._decode_repetition(bits, data_bits, confidences)
        if scheme == "secded":
            data, corrections, erasures = secded84_decode(list(bits))
            return StackDecode(
                bits=data[:data_bits],
                corrected=corrections,
                erasures_used=len(erasures),
                failed_blocks=len(erasures),
            )
        return self._decode_rs(bits, data_bits, confidences)


#: the named stacks experiments sweep and the ladder draws from
PROFILES = {
    profile.name: profile
    for profile in (
        CodingProfile(name="raw", scheme="raw"),
        CodingProfile(name="repetition3", scheme="repetition", repetition_factor=3),
        CodingProfile(name="secded84", scheme="secded"),
        CodingProfile(name="rs_light", scheme="rs", rs_parity_symbols=4),
        CodingProfile(name="rs", scheme="rs", rs_parity_symbols=8),
        CodingProfile(
            name="rs_interleaved", scheme="rs", rs_parity_symbols=8, interleave_depth=2
        ),
        CodingProfile(
            name="rs_heavy", scheme="rs", rs_parity_symbols=16, interleave_depth=4
        ),
    )
}

#: redundancy ladder for adaptive code-rate control: none → Hamming →
#: RS(n, k), lightest first.  The RS rungs are the *interleaved* variants:
#: storm corruption is bursty (a preemption stall or a deadline-truncated
#: tail corrupts a run of adjacent windows), and the rate-selection model
#: assumes independent symbol errors — interleaving is what makes that
#: assumption safe, while an un-interleaved codeword of equal parity can
#: be killed by one burst the model never priced in.
DEFAULT_LADDER = (
    PROFILES["raw"],
    PROFILES["secded84"],
    PROFILES["rs_interleaved"],
    PROFILES["rs_heavy"],
)


def profile_by_name(name: str) -> CodingProfile:
    """Look up a registry profile; raises :class:`CodingError` on typos."""
    try:
        return PROFILES[name]
    except KeyError:
        raise CodingError(
            f"unknown coding profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
