"""Layered channel reliability: FEC codecs, interleaving, coding stacks.

The paper reports the raw channel "without any error handling" (35 KBps
at 1.7% BER on a quiet machine); the fault-injection work showed that a
hostile machine produces *bursty* error processes that zero out the raw
channel entirely.  This package is the reliability layer between those
two worlds:

* :mod:`~repro.coding.gf256` / :mod:`~repro.coding.rs` — GF(2^8)
  arithmetic and a systematic Reed-Solomon codec with errors-and-erasures
  decoding;
* :mod:`~repro.coding.interleave` — block interleaving that scatters a
  preemption-storm burst across codewords;
* :mod:`~repro.coding.stack` — named, pluggable coding profiles (raw →
  SECDED Hamming → interleaved RS) behind one encode/decode pipeline;
* :mod:`~repro.coding.estimator` — channel-quality estimation from FEC
  telemetry, feeding the adaptive code-rate controller in
  :mod:`repro.core.adaptive`.

The hybrid-ARQ wiring — FEC first, CRC-triggered selective retransmission
second — lives in :mod:`repro.core.selfheal`, which consumes these stacks
per frame.
"""

from .estimator import ChannelQualityEstimator
from .gf256 import gf_add, gf_div, gf_inverse, gf_mul, gf_pow
from .interleave import deinterleave, interleave
from .rs import ReedSolomon
from .stack import (
    DEFAULT_LADDER,
    PROFILES,
    CodingProfile,
    CodingStack,
    StackDecode,
    profile_by_name,
)

__all__ = [
    "ChannelQualityEstimator",
    "CodingProfile",
    "CodingStack",
    "DEFAULT_LADDER",
    "PROFILES",
    "ReedSolomon",
    "StackDecode",
    "deinterleave",
    "gf_add",
    "gf_div",
    "gf_inverse",
    "gf_mul",
    "gf_pow",
    "interleave",
    "profile_by_name",
]
