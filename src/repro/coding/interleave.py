"""Block interleaving: scatter channel bursts across RS codewords.

A preemption-storm burst garbles a *run* of windows — tens of adjacent
bits, i.e. several adjacent symbols.  One RS codeword absorbs at most
``nsym // 2`` unknown errors, so a single storm can sink the codeword it
lands on while its neighbours sail through untouched.  The fix is the
classic one: transmit ``depth`` codewords column-major (symbol 0 of every
codeword, then symbol 1 of every codeword, ...), so a burst of ``b``
adjacent channel symbols degrades into at most ``ceil(b / depth)`` errors
*per codeword* — scattered, correctable damage instead of one dead block.

The permutation is data-agnostic, so the same reordering applies to the
soft-decision confidence stream: erasure flags travel with their symbols
through :func:`deinterleave`.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from ..errors import CodingError

__all__ = ["interleave", "deinterleave"]

T = TypeVar("T")


def _check(length: int, depth: int) -> int:
    if depth < 1:
        raise CodingError(f"interleave depth must be >= 1, got {depth}")
    if length % depth != 0:
        raise CodingError(
            f"cannot interleave {length} items at depth {depth}: not a multiple"
        )
    return length // depth


def interleave(items: Sequence[T], depth: int) -> List[T]:
    """Reorder ``depth`` consecutive blocks into column-major wire order.

    ``items`` is read as ``depth`` back-to-back blocks (codewords) of
    equal length; the output emits position 0 of every block, then
    position 1 of every block, and so on.  ``depth=1`` is the identity.
    """
    width = _check(len(items), depth)
    return [items[row * width + column] for column in range(width) for row in range(depth)]


def deinterleave(items: Sequence[T], depth: int) -> List[T]:
    """Invert :func:`interleave` with the same ``depth``."""
    width = _check(len(items), depth)
    return [items[column * depth + row] for row in range(depth) for column in range(width)]
