"""GF(2^8) arithmetic for the Reed-Solomon codec.

The field is built over the AES-unrelated primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) with generator element 2 — the
conventional choice for byte-oriented Reed-Solomon (CCSDS, QR codes,
RAID-6).  Multiplication and division go through exp/log tables computed
once at import; the tables are doubled so products of two logs index
without a modulo in the hot path.

Everything here is pure python on ints 0..255 — the codec exists for
*robustness* of the covert channel, not throughput, and frames are tens
of symbols long.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "GF_PRIMITIVE_POLY",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_pow",
    "gf_inverse",
    "poly_add",
    "poly_mul",
    "poly_scale",
    "poly_eval",
]

#: primitive polynomial of the field (x^8 + x^4 + x^3 + x^2 + 1)
GF_PRIMITIVE_POLY = 0x11D
#: multiplicative order of the field's generator
_FIELD_ORDER = 255


def _build_tables() -> tuple:
    exp = [0] * (_FIELD_ORDER * 2)
    log = [0] * 256
    value = 1
    for power in range(_FIELD_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= GF_PRIMITIVE_POLY
    for power in range(_FIELD_ORDER, _FIELD_ORDER * 2):
        exp[power] = exp[power - _FIELD_ORDER]
    return tuple(exp), tuple(log)


_EXP, _LOG = _build_tables()


def _check_element(value: int) -> None:
    if not 0 <= value <= 255:
        raise ValueError(f"GF(256) elements are 0..255, got {value!r}")


def gf_add(a: int, b: int) -> int:
    """Addition (== subtraction) in GF(2^8): XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Quotient ``a / b``; division by zero raises ZeroDivisionError."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % _FIELD_ORDER]


def gf_pow(a: int, power: int) -> int:
    """``a`` raised to an (arbitrary-sign) integer power."""
    if a == 0:
        if power <= 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    return _EXP[(_LOG[a] * power) % _FIELD_ORDER]


def gf_inverse(a: int) -> int:
    """Multiplicative inverse of ``a``."""
    return gf_div(1, a)


# -- polynomials over GF(256), coefficient lists, highest degree first ---------


def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Sum of two polynomials."""
    out = [0] * max(len(p), len(q))
    out[len(out) - len(p) :] = list(p)
    for index, coef in enumerate(q):
        out[index + len(out) - len(q)] ^= coef
    return out


def poly_mul(p: Sequence[int], q: Sequence[int]) -> List[int]:
    """Product of two polynomials."""
    out = [0] * (len(p) + len(q) - 1)
    for i, pc in enumerate(p):
        if pc == 0:
            continue
        for j, qc in enumerate(q):
            out[i + j] ^= gf_mul(pc, qc)
    return out


def poly_scale(p: Sequence[int], factor: int) -> List[int]:
    """Polynomial times a scalar."""
    return [gf_mul(coef, factor) for coef in p]


def poly_eval(p: Sequence[int], x: int) -> int:
    """Evaluate the polynomial at ``x`` (Horner's method)."""
    value = 0
    for coef in p:
        value = gf_mul(value, x) ^ coef
    return value
