"""A generic physically-indexed set-associative cache.

Used for L1/L2/LLC *and* (with the parity-preserving layout of
:mod:`repro.mee.layout`) for the MEE cache itself.  The cache stores line
addresses only — simulated programs never read real data through it, they
only observe timing — which keeps the model fast while remaining exact
about hits, misses and evictions.

This is the innermost loop of every experiment (one cache probe per
hierarchy level per simulated memory operation), so the implementation
favors precomputed shift/mask geometry, flat per-set state and cheap
result objects over abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import CacheGeometry
from ..units import is_power_of_two
from .replacement import ReplacementPolicy, RRIPPolicy, policy_class

__all__ = ["CacheStats", "EvictionRecord", "SetAssociativeCache"]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass(slots=True)
class EvictionRecord:
    """Describes a line pushed out by a fill."""

    line_addr: int
    set_index: int
    way: int


@dataclass(slots=True)
class AccessResult:
    """Outcome of :meth:`SetAssociativeCache.access`."""

    hit: bool
    set_index: int
    way: int
    evicted: Optional[EvictionRecord]


class _CacheSet:
    """Tags and replacement state for one set.

    The policy's three hot methods are re-bound as direct slots so the
    per-access call is one attribute load instead of the
    ``set.policy.touch`` chain.  For the default 2-bit SRRIP policy the
    RRPV list itself is additionally exposed (``rrpv``), letting the cache
    inline touch/fill/victim as plain list operations; the list object is
    shared with the policy instance, never copied or rebound, so the two
    views cannot diverge.
    """

    __slots__ = ("tags", "policy", "lookup", "touch", "policy_fill", "victim", "rrpv")

    def __init__(self, tags: List[Optional[int]], policy: ReplacementPolicy):
        self.tags = tags
        self.policy = policy
        self.lookup = {}  # line_addr -> way
        self.touch = policy.touch
        self.policy_fill = policy.fill
        self.victim = policy.victim
        self.rrpv = policy._rrpv if type(policy) is RRIPPolicy else None


class SetAssociativeCache:
    """Set-associative cache over 64 B (configurable) line addresses."""

    def __init__(self, geometry: CacheGeometry, rng: Optional[np.random.Generator] = None):
        self.geometry = geometry
        self._rng = rng
        self.stats = CacheStats()
        num_sets = geometry.num_sets
        line_bytes = geometry.line_bytes
        self._num_sets = num_sets
        self._line_bytes = line_bytes
        # num_sets is validated to be a power of two; line_bytes almost
        # always is too, enabling pure shift/mask address decomposition.
        self._pow2 = is_power_of_two(line_bytes)
        self._line_mask = ~(line_bytes - 1)
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self._ways = geometry.ways
        self._policy_cls = policy_class(geometry.policy)
        # Subclasses that override _fill (e.g. the way-partitioned defense
        # cache) must keep receiving misses through it; only the base class
        # may take the inlined fill below.
        self._inline_fill = type(self)._fill is SetAssociativeCache._fill
        # Dense per-set table (lazily populated) — list indexing beats a
        # dict keyed by set index on every access.
        self._sets: List[Optional[_CacheSet]] = [None] * num_sets

    # -- geometry helpers -------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        if self._pow2:
            return addr & self._line_mask
        return addr - (addr % self._line_bytes)

    def set_index_of(self, addr: int) -> int:
        """Set index the line containing ``addr`` maps to."""
        if self._pow2:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self._line_bytes) % self._num_sets

    def _set_for(self, set_index: int) -> _CacheSet:
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = _CacheSet(
                tags=[None] * self._ways,
                policy=self._policy_cls(self._ways, rng=self._rng),
            )
            self._sets[set_index] = cache_set
        return cache_set

    # -- operations --------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True when the line holding ``addr`` is cached (no state change)."""
        if self._pow2:
            line = addr & self._line_mask
            cache_set = self._sets[(addr >> self._line_shift) & self._set_mask]
        else:
            line = self.line_of(addr)
            cache_set = self._sets[self.set_index_of(addr)]
        return cache_set is not None and line in cache_set.lookup

    def probe(self, addr: int) -> bool:
        """Touch-if-present: count a hit and update replacement state when
        the line holding ``addr`` is cached, do nothing on a miss.

        This is the single-lookup replacement for the ``contains()`` +
        ``access()`` double probe the hierarchy used to issue per level: a
        miss leaves the cache (and its statistics) untouched so the caller
        can try the next level, while a hit behaves exactly like
        :meth:`access`.
        """
        if self._pow2:
            line = addr & self._line_mask
            cache_set = self._sets[(addr >> self._line_shift) & self._set_mask]
        else:
            line = self.line_of(addr)
            cache_set = self._sets[self.set_index_of(addr)]
        if cache_set is None:
            return False
        way = cache_set.lookup.get(line)
        if way is None:
            return False
        rrpv = cache_set.rrpv
        if rrpv is not None:
            rrpv[way] = 0  # inline RRIPPolicy.touch
        else:
            cache_set.touch(way)
        self.stats.hits += 1
        return True

    def access(self, addr: int) -> AccessResult:
        """Look up (and on miss, fill) the line containing ``addr``.

        Returns an :class:`AccessResult` with the hit flag and any eviction
        caused by the fill.
        """
        if self._pow2:
            line = addr & self._line_mask
            set_index = (addr >> self._line_shift) & self._set_mask
        else:
            line = self.line_of(addr)
            set_index = self.set_index_of(addr)
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = self._set_for(set_index)

        lookup = cache_set.lookup
        way = lookup.get(line)
        stats = self.stats
        rrpv = cache_set.rrpv
        if way is not None:
            if rrpv is not None:
                rrpv[way] = 0  # inline RRIPPolicy.touch
            else:
                cache_set.touch(way)
            stats.hits += 1
            return AccessResult(True, set_index, way, None)

        # Miss: fill in place (same logic as _fill, inlined with the SRRIP
        # policy unrolled — this is the single hottest path in the whole
        # simulator).
        stats.misses += 1
        if not self._inline_fill:
            evicted = self._fill(cache_set, set_index, line)
            return AccessResult(False, set_index, lookup[line], evicted)
        tags = cache_set.tags
        evicted = None
        if len(lookup) < self._ways:
            target_way = tags.index(None)
        else:
            if rrpv is not None:
                # inline RRIPPolicy.victim (index + one-shot in-place aging)
                try:
                    target_way = rrpv.index(3)
                except ValueError:
                    step = 3 - max(rrpv)
                    for i in range(self._ways):
                        rrpv[i] += step
                    target_way = rrpv.index(3)
            else:
                target_way = cache_set.victim()
            old = tags[target_way]
            del lookup[old]
            evicted = EvictionRecord(old, set_index, target_way)
            stats.evictions += 1
        tags[target_way] = line
        lookup[line] = target_way
        if rrpv is not None:
            rrpv[target_way] = 2  # inline RRIPPolicy.fill
        else:
            cache_set.policy_fill(target_way)
        return AccessResult(False, set_index, target_way, evicted)

    def fill(self, addr: int) -> Optional[EvictionRecord]:
        """Insert the line containing ``addr`` without counting an access.

        Used for lines brought in as side effects (inclusive back-fills,
        PD_Tag co-fetch).  No-op when the line is already present (the
        replacement state is still touched).
        """
        if self._pow2:
            line = addr & self._line_mask
            set_index = (addr >> self._line_shift) & self._set_mask
        else:
            line = self.line_of(addr)
            set_index = self.set_index_of(addr)
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = self._set_for(set_index)
        way = cache_set.lookup.get(line)
        if way is not None:
            cache_set.touch(way)
            return None
        return self._fill(cache_set, set_index, line)

    def _fill(self, cache_set: _CacheSet, set_index: int, line: int) -> Optional[EvictionRecord]:
        """Place ``line`` into ``cache_set``; return the evicted line if any."""
        tags = cache_set.tags
        lookup = cache_set.lookup
        evicted: Optional[EvictionRecord] = None
        # lookup and the non-None tags are kept in bijection, so a free way
        # exists exactly when the set is not full.
        if len(lookup) < len(tags):
            target_way = tags.index(None)
        else:
            target_way = cache_set.victim()
            old = tags[target_way]
            del lookup[old]
            evicted = EvictionRecord(old, set_index, target_way)
            self.stats.evictions += 1
        tags[target_way] = line
        lookup[line] = target_way
        cache_set.policy_fill(target_way)
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; True if it was present."""
        if self._pow2:
            line = addr & self._line_mask
            cache_set = self._sets[(addr >> self._line_shift) & self._set_mask]
        else:
            line = self.line_of(addr)
            cache_set = self._sets[self.set_index_of(addr)]
        if cache_set is None:
            return False
        way = cache_set.lookup.pop(line, None)
        if way is None:
            return False
        cache_set.tags[way] = None
        self.stats.flushes += 1
        return True

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in ``set_index``."""
        cache_set = self._sets[set_index]
        if cache_set is None:
            return 0
        return len(cache_set.lookup)

    def resident_lines(self, set_index: int) -> List[int]:
        """Line addresses currently resident in ``set_index`` (any order)."""
        cache_set = self._sets[set_index]
        if cache_set is None:
            return []
        return list(cache_set.lookup.keys())

    def clear(self) -> None:
        """Empty the cache (power-on state); statistics are kept."""
        self._sets = [None] * self._num_sets

    # -- introspection and snapshot ----------------------------------------

    def iter_set_states(self):
        """Yield ``(set_index, tags, lookup, policy)`` for populated sets.

        Read-only view for invariant checkers and fingerprinting; callers
        must not mutate the yielded structures.
        """
        for set_index, cache_set in enumerate(self._sets):
            if cache_set is not None:
                yield set_index, cache_set.tags, cache_set.lookup, cache_set.policy

    def export_state(self) -> dict:
        """JSON-safe snapshot of tags, replacement state and statistics."""
        return {
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "flushes": self.stats.flushes,
            },
            "sets": {
                str(set_index): {
                    "tags": list(tags),
                    "policy": policy.export_state(),
                }
                for set_index, tags, _lookup, policy in self.iter_set_states()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state` (same geometry)."""
        stats = state["stats"]
        self.stats = CacheStats(
            hits=int(stats["hits"]),
            misses=int(stats["misses"]),
            evictions=int(stats["evictions"]),
            flushes=int(stats["flushes"]),
        )
        self._sets = [None] * self._num_sets
        for key, payload in state["sets"].items():
            policy = self._policy_cls(self._ways, rng=self._rng)
            policy.restore_state(payload["policy"])
            tags = [None if tag is None else int(tag) for tag in payload["tags"]]
            cache_set = _CacheSet(tags=tags, policy=policy)
            for way, tag in enumerate(tags):
                if tag is not None:
                    cache_set.lookup[tag] = way
            self._sets[int(key)] = cache_set

    def __len__(self) -> int:
        """Total valid lines across all sets."""
        return sum(len(s.lookup) for s in self._sets if s is not None)
