"""A generic physically-indexed set-associative cache.

Used for L1/L2/LLC *and* (with the parity-preserving layout of
:mod:`repro.mee.layout`) for the MEE cache itself.  The cache stores line
addresses only — simulated programs never read real data through it, they
only observe timing — which keeps the model fast while remaining exact
about hits, misses and evictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import CacheGeometry
from .replacement import ReplacementPolicy, make_policy

__all__ = ["CacheStats", "EvictionRecord", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass(frozen=True)
class EvictionRecord:
    """Describes a line pushed out by a fill."""

    line_addr: int
    set_index: int
    way: int


@dataclass
class _CacheSet:
    """Tags and replacement state for one set."""

    tags: List[Optional[int]]
    policy: ReplacementPolicy
    lookup: Dict[int, int] = field(default_factory=dict)  # line_addr -> way


class SetAssociativeCache:
    """Set-associative cache over 64 B (configurable) line addresses."""

    def __init__(self, geometry: CacheGeometry, rng: Optional[np.random.Generator] = None):
        self.geometry = geometry
        self._rng = rng
        self._sets: Dict[int, _CacheSet] = {}
        self.stats = CacheStats()

    # -- geometry helpers -------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line-aligned address containing ``addr``."""
        return addr - (addr % self.geometry.line_bytes)

    def set_index_of(self, addr: int) -> int:
        """Set index the line containing ``addr`` maps to."""
        return (addr // self.geometry.line_bytes) % self.geometry.num_sets

    def _set_for(self, set_index: int) -> _CacheSet:
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = _CacheSet(
                tags=[None] * self.geometry.ways,
                policy=make_policy(self.geometry.policy, self.geometry.ways, rng=self._rng),
            )
            self._sets[set_index] = cache_set
        return cache_set

    # -- operations --------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True when the line holding ``addr`` is cached (no state change)."""
        line = self.line_of(addr)
        cache_set = self._sets.get(self.set_index_of(addr))
        return cache_set is not None and line in cache_set.lookup

    def access(self, addr: int) -> "AccessResult":
        """Look up (and on miss, fill) the line containing ``addr``.

        Returns an :class:`AccessResult` with the hit flag and any eviction
        caused by the fill.
        """
        line = self.line_of(addr)
        set_index = self.set_index_of(addr)
        cache_set = self._set_for(set_index)

        way = cache_set.lookup.get(line)
        if way is not None:
            cache_set.policy.touch(way)
            self.stats.hits += 1
            return AccessResult(hit=True, set_index=set_index, way=way, evicted=None)

        self.stats.misses += 1
        evicted = self._fill(cache_set, set_index, line)
        way = cache_set.lookup[line]
        return AccessResult(hit=False, set_index=set_index, way=way, evicted=evicted)

    def fill(self, addr: int) -> Optional[EvictionRecord]:
        """Insert the line containing ``addr`` without counting an access.

        Used for lines brought in as side effects (inclusive back-fills,
        PD_Tag co-fetch).  No-op when the line is already present (the
        replacement state is still touched).
        """
        line = self.line_of(addr)
        set_index = self.set_index_of(addr)
        cache_set = self._set_for(set_index)
        way = cache_set.lookup.get(line)
        if way is not None:
            cache_set.policy.touch(way)
            return None
        return self._fill(cache_set, set_index, line)

    def _fill(self, cache_set: _CacheSet, set_index: int, line: int) -> Optional[EvictionRecord]:
        """Place ``line`` into ``cache_set``; return the evicted line if any."""
        evicted: Optional[EvictionRecord] = None
        for way, tag in enumerate(cache_set.tags):
            if tag is None:
                target_way = way
                break
        else:
            target_way = cache_set.policy.victim()
            old = cache_set.tags[target_way]
            del cache_set.lookup[old]
            evicted = EvictionRecord(line_addr=old, set_index=set_index, way=target_way)
            self.stats.evictions += 1
        cache_set.tags[target_way] = line
        cache_set.lookup[line] = target_way
        cache_set.policy.fill(target_way)
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; True if it was present."""
        line = self.line_of(addr)
        cache_set = self._sets.get(self.set_index_of(addr))
        if cache_set is None:
            return False
        way = cache_set.lookup.pop(line, None)
        if way is None:
            return False
        cache_set.tags[way] = None
        self.stats.flushes += 1
        return True

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in ``set_index``."""
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            return 0
        return len(cache_set.lookup)

    def resident_lines(self, set_index: int) -> List[int]:
        """Line addresses currently resident in ``set_index`` (any order)."""
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            return []
        return list(cache_set.lookup.keys())

    def clear(self) -> None:
        """Empty the cache (power-on state); statistics are kept."""
        self._sets.clear()

    def __len__(self) -> int:
        """Total valid lines across all sets."""
        return sum(len(s.lookup) for s in self._sets.values())


@dataclass(frozen=True)
class AccessResult:
    """Outcome of :meth:`SetAssociativeCache.access`."""

    hit: bool
    set_index: int
    way: int
    evicted: Optional[EvictionRecord]
