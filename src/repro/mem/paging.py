"""Virtual memory: frame allocation, page tables and address spaces.

The OS model matters to the attack: SGX enclaves only get 4 KB pages whose
physical frames are effectively random (paper Section 3, challenge 3), so
the attacker cannot build eviction sets from virtual addresses alone —
that is what makes Figure 4 probabilistic and Algorithm 1 necessary.
Non-enclave code may additionally map 2 MB hugepages with physically
contiguous frames, which is what classic LLC Prime+Probe attacks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import AddressError, PagingError
from ..units import HUGEPAGE_SIZE, PAGE_SIZE, align_up

__all__ = ["FrameAllocator", "PageTable", "MappedRegion", "AddressSpace"]


class FrameAllocator:
    """Allocates physical 4 KB frames from one region.

    With ``randomize=True`` (the realistic default) frames are handed out
    in a random permutation, mimicking a long-running OS's fragmented free
    list.  ``randomize=False`` gives ascending frames — useful for tests
    and for the "what if mappings were contiguous" ablation.
    """

    def __init__(
        self,
        base: int,
        num_frames: int,
        randomize: bool = True,
        rng: Optional[np.random.Generator] = None,
        cluster_mean_run: Optional[int] = None,
    ):
        if base % PAGE_SIZE != 0:
            raise PagingError(f"frame-pool base {base:#x} not page aligned")
        self.base = base
        self.num_frames = num_frames
        self._rng = rng if rng is not None else np.random.default_rng(0)
        if randomize and cluster_mean_run:
            order = self._clustered_order(cluster_mean_run)
        elif randomize:
            order = self._rng.permutation(num_frames)
        else:
            order = np.arange(num_frames)
        self._free: List[int] = [int(f) for f in order[::-1]]  # pop() from end
        self._allocated: set = set()

    def _clustered_order(self, mean_run: int) -> np.ndarray:
        """Sequential runs of geometric length, shuffled — models the SGX
        driver's EPC free list: mostly-ascending with fragmentation.

        This is what gives the paper's candidate address sets (consecutive
        virtual pages) near-uniform coverage of the 8 possible versions
        sets, letting Figure 4's eviction probability reach 1.0 at 64
        addresses.
        """
        runs = []
        start = 0
        while start < self.num_frames:
            length = 1 + int(self._rng.geometric(1.0 / max(mean_run, 1)))
            runs.append(np.arange(start, min(start + length, self.num_frames)))
            start += length
        self._rng.shuffle(runs)
        return np.concatenate(runs)

    @property
    def free_frames(self) -> int:
        """Frames still available."""
        return len(self._free)

    def allocate(self) -> int:
        """Return the physical base address of a fresh frame."""
        if not self._free:
            raise PagingError("physical frame pool exhausted")
        frame = self._free.pop()
        self._allocated.add(frame)
        return self.base + frame * PAGE_SIZE

    def allocate_contiguous(self, count: int) -> int:
        """Allocate ``count`` physically contiguous frames (hugepages).

        Scans the free list for a contiguous run; raises when fragmentation
        prevents it — the same failure mode a real OS hits.
        """
        free_set = set(self._free)
        for start in range(0, self.num_frames - count + 1):
            if all((start + i) in free_set for i in range(count)):
                for i in range(count):
                    self._free.remove(start + i)
                    self._allocated.add(start + i)
                return self.base + start * PAGE_SIZE
        raise PagingError(f"no contiguous run of {count} frames available")

    def free(self, paddr: int) -> None:
        """Return the frame containing ``paddr`` to the pool."""
        frame = (paddr - self.base) // PAGE_SIZE
        if frame not in self._allocated:
            raise PagingError(f"double free of frame at {paddr:#x}")
        self._allocated.remove(frame)
        self._free.append(frame)


class PageTable:
    """Maps virtual page numbers to physical frame base addresses."""

    def __init__(self) -> None:
        self._entries: Dict[int, int] = {}

    def map(self, vpage: int, frame_paddr: int) -> None:
        """Install a translation; double-mapping a page is an error."""
        if vpage in self._entries:
            raise PagingError(f"virtual page {vpage:#x} already mapped")
        if frame_paddr % PAGE_SIZE != 0:
            raise PagingError(f"frame {frame_paddr:#x} not page aligned")
        self._entries[vpage] = frame_paddr

    def unmap(self, vpage: int) -> int:
        """Remove a translation, returning the frame it pointed to."""
        try:
            return self._entries.pop(vpage)
        except KeyError:
            raise PagingError(f"virtual page {vpage:#x} not mapped") from None

    def translate(self, vaddr: int) -> int:
        """Virtual to physical address."""
        entry = self._entries.get(vaddr // PAGE_SIZE)
        if entry is None:
            raise AddressError(f"virtual address {vaddr:#x} not mapped")
        return entry + (vaddr % PAGE_SIZE)

    def is_mapped(self, vaddr: int) -> bool:
        """True when ``vaddr`` has a translation."""
        return (vaddr // PAGE_SIZE) in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class MappedRegion:
    """One mmap'd virtual region."""

    base: int
    size: int
    protected: bool
    hugepage: bool

    @property
    def end(self) -> int:
        return self.base + self.size

    def __contains__(self, vaddr: int) -> bool:
        return self.base <= vaddr < self.end


class AddressSpace:
    """A process's virtual address space.

    Regions are laid out upward from ``0x10000`` with unmapped guard gaps.
    ``protected=True`` regions draw frames from the protected (EPC) pool
    and are the only memory the MEE guards.
    """

    _GUARD = 16 * PAGE_SIZE

    def __init__(
        self,
        general_frames: FrameAllocator,
        protected_frames: FrameAllocator,
        name: str = "proc",
    ):
        self.name = name
        self._general = general_frames
        self._protected = protected_frames
        self.page_table = PageTable()
        self.regions: List[MappedRegion] = []
        self._next_base = 0x10000

    def mmap(self, size: int, protected: bool = False, hugepage: bool = False) -> MappedRegion:
        """Map a fresh region of at least ``size`` bytes.

        Args:
            size: requested bytes (rounded up to page/hugepage granularity).
            protected: allocate inside the MEE protected region.
            hugepage: use 2 MB pages with contiguous frames.  Enclave-side
                callers must not set this — SGX has no hugepages; the
                :mod:`repro.sgx` layer enforces that restriction.

        Returns:
            The new :class:`MappedRegion`.
        """
        granule = HUGEPAGE_SIZE if hugepage else PAGE_SIZE
        size = align_up(max(size, 1), granule)
        base = align_up(self._next_base, granule)
        allocator = self._protected if protected else self._general

        pages = size // PAGE_SIZE
        if hugepage:
            pages_per_huge = HUGEPAGE_SIZE // PAGE_SIZE
            for huge_index in range(size // HUGEPAGE_SIZE):
                frame_base = allocator.allocate_contiguous(pages_per_huge)
                for i in range(pages_per_huge):
                    vpage = (base // PAGE_SIZE) + huge_index * pages_per_huge + i
                    self.page_table.map(vpage, frame_base + i * PAGE_SIZE)
        else:
            for i in range(pages):
                self.page_table.map((base // PAGE_SIZE) + i, allocator.allocate())

        region = MappedRegion(base=base, size=size, protected=protected, hugepage=hugepage)
        self.regions.append(region)
        self._next_base = region.end + self._GUARD
        return region

    def munmap(self, region: MappedRegion) -> None:
        """Unmap a region, returning its frames to the pool."""
        if region not in self.regions:
            raise PagingError("region does not belong to this address space")
        for i in range(region.size // PAGE_SIZE):
            frame = self.page_table.unmap((region.base // PAGE_SIZE) + i)
            allocator = self._protected if region.protected else self._general
            allocator.free(frame)
        self.regions.remove(region)

    def translate(self, vaddr: int) -> int:
        """Virtual to physical address."""
        return self.page_table.translate(vaddr)

    def region_of(self, vaddr: int) -> Optional[MappedRegion]:
        """The region containing ``vaddr``, or None."""
        for region in self.regions:
            if vaddr in region:
                return region
        return None
