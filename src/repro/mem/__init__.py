"""Memory-system substrate: addressing, paging, caches and DRAM.

This package implements everything below the MEE that the attack depends
on: 4 KB paging with randomized frame placement (the reason eviction-set
construction is probabilistic — paper Figure 4), an inclusive L1/L2/LLC
hierarchy with ``clflush`` (challenge 1 of Section 3), and a DRAM timing
model whose jitter is why full-set Prime+Probe fails (Figure 6a).
"""

from .address import (
    PhysicalLayout,
    chunk_index,
    chunk_offset_in_page,
    line_index,
    page_index,
    page_offset,
)
from .cache import CacheStats, SetAssociativeCache
from .dram import DRAMModel
from .hierarchy import AccessLevel, CacheHierarchy
from .paging import AddressSpace, FrameAllocator, MappedRegion, PageTable
from .replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)

__all__ = [
    "AccessLevel",
    "AddressSpace",
    "CacheHierarchy",
    "CacheStats",
    "DRAMModel",
    "FrameAllocator",
    "LRUPolicy",
    "MappedRegion",
    "PageTable",
    "PhysicalLayout",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "TreePLRUPolicy",
    "chunk_index",
    "chunk_offset_in_page",
    "line_index",
    "make_policy",
    "page_index",
    "page_offset",
]
