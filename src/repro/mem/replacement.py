"""Per-set replacement policies: SRRIP, true LRU, tree-PLRU and random.

The MEE cache's policy is undocumented; the paper assumes an "approximate
LRU" (Section 5.3), under which a single forward eviction sweep is not
reliable — that is why Algorithm 2 sweeps forward *and* backward.  We use
2-bit SRRIP (the approximate-LRU family deployed in Intel LLCs of the same
era) as the MEE default: a freshly *primed* line (inserted at long
re-reference interval) is evicted by the first conflicting fill, while a
*hit-promoted* line survives the first aging wave and needs a second miss
— mechanistically reproducing both the channel's reliable eviction and the
paper's observed need for two-phase sweeps.  Tree-PLRU, true LRU and
random are provided for ablation studies.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from ..errors import ConfigurationError
from ..units import is_power_of_two

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "TreePLRUPolicy",
    "RRIPPolicy",
    "RandomPolicy",
    "make_policy",
]


class ReplacementPolicy(Protocol):
    """State for one cache set.

    ``touch(way)`` records a hit; ``fill(way)`` records an insertion (many
    policies treat both identically); ``victim()`` names the way to evict
    when all ways are occupied.
    """

    def touch(self, way: int) -> None:
        ...

    def fill(self, way: int) -> None:
        ...

    def victim(self) -> int:
        ...

    def export_state(self) -> dict:
        ...

    def restore_state(self, state: dict) -> None:
        ...


class LRUPolicy:
    """Exact least-recently-used ordering."""

    def __init__(self, ways: int, rng: Optional[np.random.Generator] = None):
        self.ways = ways
        # order[0] is MRU, order[-1] is LRU
        self._order = list(range(ways))

    def touch(self, way: int) -> None:
        """Move ``way`` to MRU position."""
        self._order.remove(way)
        self._order.insert(0, way)

    def fill(self, way: int) -> None:
        """Insertions go straight to MRU under true LRU."""
        self.touch(way)

    def victim(self) -> int:
        """The least recently used way."""
        return self._order[-1]

    def recency_order(self) -> list:
        """MRU-to-LRU way order (diagnostics and tests)."""
        return list(self._order)

    def export_state(self) -> dict:
        """JSON-safe snapshot of the recency order."""
        return {"order": list(self._order)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._order = [int(way) for way in state["order"]]


class TreePLRUPolicy:
    """Binary-tree pseudo-LRU, the common hardware approximation.

    Each internal node of a complete binary tree holds one bit pointing
    toward the *less* recently used half.  A touch flips the bits on the
    path to the touched way to point away from it; the victim is found by
    following the bits from the root.
    """

    def __init__(self, ways: int, rng: Optional[np.random.Generator] = None):
        if not is_power_of_two(ways):
            raise ConfigurationError(f"tree-PLRU requires power-of-two ways, got {ways}")
        self.ways = ways
        self._bits = [0] * max(ways - 1, 1)

    def touch(self, way: int) -> None:
        """Update path bits so they point away from ``way``."""
        node = 0
        span = self.ways
        base = 0
        while span > 1:
            half = span // 2
            if way < base + half:
                self._bits[node] = 1  # LRU side is the right half
                node = 2 * node + 1
                span = half
            else:
                self._bits[node] = 0  # LRU side is the left half
                node = 2 * node + 2
                base += half
                span = half

    def victim(self) -> int:
        """Follow the PLRU bits from the root to a leaf."""
        node = 0
        span = self.ways
        base = 0
        while span > 1:
            half = span // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                span = half
            else:
                node = 2 * node + 2
                base += half
                span = half
        return base

    def fill(self, way: int) -> None:
        """Insertions update path bits exactly like hits under tree-PLRU."""
        self.touch(way)

    def bits(self) -> list:
        """Current PLRU bit vector (diagnostics and tests)."""
        return list(self._bits)

    def export_state(self) -> dict:
        """JSON-safe snapshot of the PLRU bit vector."""
        return {"bits": list(self._bits)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self._bits = [int(bit) for bit in state["bits"]]


class RRIPPolicy:
    """2-bit Static RRIP (Jaleel et al.), the MEE-cache default.

    Each way carries a re-reference prediction value (RRPV, 0..3).  Hits
    promote to 0; fills insert at 2 (long interval — scan resistance);
    the victim is the lowest-indexed way at RRPV 3, aging every way until
    one qualifies.
    """

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def __init__(self, ways: int, rng: Optional[np.random.Generator] = None):
        self.ways = ways
        self._rrpv = [self.MAX_RRPV] * ways

    def touch(self, way: int) -> None:
        """A hit predicts near-immediate re-reference."""
        self._rrpv[way] = 0

    def fill(self, way: int) -> None:
        """Insertions are assumed distant re-references (scan resistance)."""
        self._rrpv[way] = self.INSERT_RRPV

    def victim(self) -> int:
        """Lowest-indexed way at RRPV 3, aging the set as needed.

        Aging one round at a time until a way qualifies is equivalent to
        aging every way by ``MAX_RRPV - max(rrpv)`` in one shot, so the
        search is two C-speed ``list`` operations instead of nested Python
        loops (this runs once per eviction — the hottest policy call).
        """
        rrpv = self._rrpv
        try:
            return rrpv.index(self.MAX_RRPV)
        except ValueError:
            # Age in place: the list object is shared with _CacheSet's
            # inlined fast path, so it must never be rebound.
            step = self.MAX_RRPV - max(rrpv)
            for way in range(self.ways):
                rrpv[way] += step
            return rrpv.index(self.MAX_RRPV)

    def rrpv_values(self) -> list:
        """Current RRPVs (diagnostics and tests)."""
        return list(self._rrpv)

    def export_state(self) -> dict:
        """JSON-safe snapshot of the RRPVs."""
        return {"rrpv": list(self._rrpv)}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`.

        Mutates the RRPV list in place — the list object is shared with
        the cache's inlined fast path and must never be rebound.
        """
        values = [int(v) for v in state["rrpv"]]
        if len(values) != self.ways:
            raise ConfigurationError(
                f"RRIP snapshot has {len(values)} ways, policy has {self.ways}"
            )
        self._rrpv[:] = values


class RandomPolicy:
    """Uniform random victim selection (mitigation ablation)."""

    def __init__(self, ways: int, rng: Optional[np.random.Generator] = None):
        self.ways = ways
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def touch(self, way: int) -> None:
        """Random replacement keeps no recency state."""

    def fill(self, way: int) -> None:
        """Random replacement keeps no insertion state either."""

    def victim(self) -> int:
        """A uniformly random way."""
        return int(self._rng.integers(0, self.ways))

    def export_state(self) -> dict:
        """Random replacement has no per-set state (the RNG stream is
        snapshotted at machine level)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Nothing to restore (see :meth:`export_state`)."""


_POLICIES = {
    "lru": LRUPolicy,
    "plru": TreePLRUPolicy,
    "rrip": RRIPPolicy,
    "random": RandomPolicy,
}


def policy_class(name: str) -> type:
    """Resolve a policy class by configuration name.

    Callers that create many per-set policy instances (one per cache set)
    resolve the class once instead of paying the lookup on every set.
    """
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigurationError(f"unknown replacement policy {name!r}") from None


def make_policy(
    name: str, ways: int, rng: Optional[np.random.Generator] = None
) -> ReplacementPolicy:
    """Instantiate a replacement policy by configuration name."""
    return policy_class(name)(ways, rng=rng)
