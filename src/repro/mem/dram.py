"""DRAM timing model: mean latency, Gaussian jitter and a heavy tail.

The tail (row-buffer conflicts, refresh, controller queueing) is the
mechanistic reason the paper's Figure 6(a) Prime+Probe attempt fails: a
full-set probe sums eight DRAM latencies, so its variance swamps the
~300-cycle MEE-cache hit/miss signal.  Bus contention from stressor
processes (Figure 8(b)) raises the mean without touching the MEE cache.
"""

from __future__ import annotations

import numpy as np

from ..config import DRAMConfig

__all__ = ["DRAMModel"]


class DRAMModel:
    """Samples per-line-fetch latencies."""

    def __init__(self, config: DRAMConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng
        #: number of currently running bus-stressor processes
        self.active_stressors = 0
        #: total fetches sampled (diagnostics)
        self.fetches = 0

    def register_stressor(self) -> None:
        """A memory-stress process started (raises contention)."""
        self.active_stressors += 1

    def unregister_stressor(self) -> None:
        """A memory-stress process stopped."""
        if self.active_stressors > 0:
            self.active_stressors -= 1

    @property
    def mean_latency(self) -> float:
        """Current mean fetch latency including contention."""
        return (
            self.config.access_cycles
            + self.active_stressors * self.config.contention_cycles_per_stressor
        )

    def sample(self) -> float:
        """One line-fetch latency in cycles (never below 60% of nominal)."""
        self.fetches += 1
        latency = self.mean_latency + self._rng.normal(0.0, self.config.jitter_sigma)
        if self.config.tail_probability > 0.0 and (
            self._rng.random() < self.config.tail_probability
        ):
            latency += self._rng.exponential(self.config.tail_mean_cycles)
        floor = 0.6 * self.config.access_cycles
        return float(max(latency, floor))

    def export_state(self) -> dict:
        """JSON-safe snapshot of contention and accounting state."""
        return {"active_stressors": self.active_stressors, "fetches": self.fetches}

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state`."""
        self.active_stressors = int(state["active_stressors"])
        self.fetches = int(state["fetches"])

    def sample_many(self, count: int) -> np.ndarray:
        """Vectorized sampling for workload generators."""
        base = self.mean_latency + self._rng.normal(
            0.0, self.config.jitter_sigma, size=count
        )
        tails = self._rng.random(count) < self.config.tail_probability
        base[tails] += self._rng.exponential(
            self.config.tail_mean_cycles, size=int(tails.sum())
        )
        self.fetches += count
        floor = 0.6 * self.config.access_cycles
        return np.maximum(base, floor)
