"""Address arithmetic and the machine's physical memory layout.

Physical memory is split into a *general* region (ordinary DRAM) and the
*MEE/protected* region (the 128 MB carve-out holding enclave data), followed
by the integrity-tree metadata arrays that the MEE itself reads.  Paper
Figure 1 shows the same split: general region vs. protected data region vs.
integrity tree region.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import AddressError, ConfigurationError
from ..units import CACHE_LINE, CHUNK_SIZE, MIB, PAGE_SIZE, align_up

__all__ = [
    "page_index",
    "page_offset",
    "line_index",
    "chunk_index",
    "chunk_offset_in_page",
    "PhysicalLayout",
]


def page_index(addr: int) -> int:
    """4 KB page number containing ``addr``."""
    return addr // PAGE_SIZE


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its 4 KB page."""
    return addr % PAGE_SIZE


def line_index(addr: int) -> int:
    """64 B cache-line number containing ``addr``."""
    return addr // CACHE_LINE


def chunk_index(addr: int) -> int:
    """512 B protected-region chunk number containing ``addr``.

    One 64 B versions node guards exactly one such chunk (paper §4.1).
    """
    return addr // CHUNK_SIZE


def chunk_offset_in_page(addr: int) -> int:
    """Which of the 8 chunks within its page ``addr`` falls into (0..7)."""
    return (addr % PAGE_SIZE) // CHUNK_SIZE


@dataclass(frozen=True)
class PhysicalLayout:
    """Physical address map of the simulated machine.

    Layout (all region bases page-aligned, metadata bases aligned so the
    MEE-cache set parity of versions/PD_Tag lines is preserved)::

        [0, general_bytes)                      general DRAM
        [protected_base, +protected_bytes)      MEE protected data region
        [meta_base, +meta_bytes)                versions + PD_Tag lines
        [l0_base, ...)(l1, l2)                  integrity-tree level arrays

    The chained region bases are ``cached_property``s: the layout is frozen,
    so each base is computed once and then read back as a plain attribute —
    :meth:`is_protected` sits on the per-access hot path.
    """

    general_bytes: int = 1024 * MIB
    protected_bytes: int = 128 * MIB

    def __post_init__(self) -> None:
        if self.general_bytes % PAGE_SIZE or self.protected_bytes % PAGE_SIZE:
            raise ConfigurationError("regions must be page aligned")

    @cached_property
    def protected_base(self) -> int:
        """Start of the protected (enclave) data region."""
        return self.general_bytes

    @cached_property
    def protected_pages(self) -> int:
        """Number of 4 KB pages in the protected region."""
        return self.protected_bytes // PAGE_SIZE

    @cached_property
    def meta_base(self) -> int:
        """Start of the interleaved versions/PD_Tag metadata array.

        Aligned to 8 KB (= 128 lines) so that versions lines keep odd and
        PD_Tag lines keep even MEE-cache set indices.
        """
        return align_up(self.protected_base + self.protected_bytes, 128 * CACHE_LINE)

    @cached_property
    def meta_bytes(self) -> int:
        """Size of the versions/PD_Tag array: 16 lines per protected page."""
        return self.protected_pages * 16 * CACHE_LINE

    @cached_property
    def l0_base(self) -> int:
        """Start of the level-0 integrity-tree node array (one per page)."""
        return align_up(self.meta_base + self.meta_bytes, 128 * CACHE_LINE)

    # Tree-level arrays are laid out at a 2-line stride so every node sits
    # on even set parity (see repro.mee.layout module docstring); the
    # arrays therefore span twice their payload size.

    @cached_property
    def l0_bytes(self) -> int:
        return self.protected_pages * 2 * CACHE_LINE

    @cached_property
    def l1_base(self) -> int:
        """Start of the level-1 array (one node per 8 pages / 32 KB)."""
        return align_up(self.l0_base + self.l0_bytes, 128 * CACHE_LINE)

    @cached_property
    def l1_bytes(self) -> int:
        return align_up(self.protected_pages, 8) // 8 * 2 * CACHE_LINE

    @cached_property
    def l2_base(self) -> int:
        """Start of the level-2 array (one node per 64 pages / 256 KB)."""
        return align_up(self.l1_base + self.l1_bytes, 128 * CACHE_LINE)

    @cached_property
    def l2_bytes(self) -> int:
        return align_up(self.protected_pages, 64) // 64 * 2 * CACHE_LINE

    @cached_property
    def total_bytes(self) -> int:
        """One past the highest physical address in use."""
        return self.l2_base + self.l2_bytes

    @cached_property
    def protected_end(self) -> int:
        """One past the protected data region."""
        return self.general_bytes + self.protected_bytes

    def is_protected(self, paddr: int) -> bool:
        """True when ``paddr`` lies in the MEE protected data region."""
        return self.general_bytes <= paddr < self.protected_end

    def is_metadata(self, paddr: int) -> bool:
        """True when ``paddr`` lies in any integrity-tree array."""
        return self.meta_base <= paddr < self.total_bytes

    def check(self, paddr: int) -> None:
        """Validate a physical address against the layout."""
        if not 0 <= paddr < self.total_bytes:
            raise AddressError(f"physical address {paddr:#x} outside memory")
        gap_start = self.general_bytes
        if gap_start <= paddr < self.protected_base and gap_start != self.protected_base:
            raise AddressError(f"physical address {paddr:#x} in unmapped gap")
