"""The on-chip data-cache hierarchy: per-core L1/L2 plus an inclusive LLC.

``clflush`` (paper Section 3, challenge 1) removes a line from every level
of this hierarchy but — by construction — cannot touch the MEE cache, since
integrity-tree nodes never live here.  LLC inclusivity is modeled: evicting
a line from the LLC back-invalidates all private copies, the property LLC
Prime+Probe attacks rely on (Section 2.1).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

import numpy as np

from ..config import HierarchyConfig
from .cache import SetAssociativeCache

__all__ = ["AccessLevel", "CacheHierarchy"]


class AccessLevel(enum.Enum):
    """Where a data access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    MEMORY = "memory"


class CacheHierarchy:
    """L1D + L2 per core, one shared inclusive LLC."""

    def __init__(
        self,
        config: HierarchyConfig,
        cores: int,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self.cores = cores
        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1, rng=rng) for _ in range(cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l2, rng=rng) for _ in range(cores)
        ]
        self.llc = SetAssociativeCache(config.llc, rng=rng)
        # line -> set of cores that may hold it privately (for inclusivity)
        self._private_holders: Dict[int, set] = {}

    def access(self, core: int, paddr: int) -> AccessLevel:
        """Perform a data access from ``core``; return the level that hit.

        On a miss the line is filled into LLC, L2 and L1 (inclusive fill).
        LLC evictions back-invalidate private copies on every core.
        """
        line = self.llc.line_of(paddr)
        if self.l1[core].contains(paddr):
            self.l1[core].access(paddr)
            return AccessLevel.L1
        if self.l2[core].contains(paddr):
            self.l2[core].access(paddr)
            self._fill_private(self.l1[core], core, paddr)
            return AccessLevel.L2
        if self.llc.contains(paddr):
            self.llc.access(paddr)
            self._fill_private(self.l2[core], core, paddr)
            self._fill_private(self.l1[core], core, paddr)
            self._private_holders.setdefault(line, set()).add(core)
            return AccessLevel.LLC

        # Full miss: fill every level, honoring inclusivity.
        result = self.llc.access(paddr)
        if result.evicted is not None:
            self._back_invalidate(result.evicted.line_addr)
        self._fill_private(self.l2[core], core, paddr)
        self._fill_private(self.l1[core], core, paddr)
        self._private_holders.setdefault(line, set()).add(core)
        return AccessLevel.MEMORY

    def _fill_private(self, cache: SetAssociativeCache, core: int, paddr: int) -> None:
        """Fill a private cache; private evictions need no global action."""
        cache.fill(paddr)

    def _back_invalidate(self, line_addr: int) -> None:
        """Inclusive LLC eviction: purge the line from all private caches."""
        holders = self._private_holders.pop(line_addr, None)
        if not holders:
            holders = range(self.cores)
        for core in holders:
            self.l1[core].invalidate(line_addr)
            self.l2[core].invalidate(line_addr)

    def flush(self, paddr: int) -> bool:
        """``clflush``: drop the line from every level on every core.

        Returns True when the line was present anywhere.
        """
        line = self.llc.line_of(paddr)
        present = self.llc.invalidate(paddr)
        for core in range(self.cores):
            present |= self.l1[core].invalidate(paddr)
            present |= self.l2[core].invalidate(paddr)
        self._private_holders.pop(line, None)
        return present

    def latency_of(self, level: AccessLevel) -> int:
        """Hit latency in cycles for a level satisfied on-chip.

        ``AccessLevel.MEMORY`` has no fixed latency here — the machine adds
        uncore + DRAM (+ MEE) costs — so asking for it is an error.
        """
        if level is AccessLevel.L1:
            return self.config.l1.hit_cycles
        if level is AccessLevel.L2:
            return self.config.l2.hit_cycles
        if level is AccessLevel.LLC:
            return self.config.llc.hit_cycles
        raise ValueError("memory accesses are priced by the machine model")
