"""The on-chip data-cache hierarchy: per-core L1/L2 plus an inclusive LLC.

``clflush`` (paper Section 3, challenge 1) removes a line from every level
of this hierarchy but — by construction — cannot touch the MEE cache, since
integrity-tree nodes never live here.  LLC inclusivity is modeled: evicting
a line from the LLC back-invalidates all private copies, the property LLC
Prime+Probe attacks rely on (Section 2.1).

Private copies are tracked per line: every private fill (both the initial
LLC fill and later LLC-hit promotions) records the filling core, so
back-invalidation and ``clflush`` walk only the cores that may actually
hold the line — O(holders), never O(cores).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

import numpy as np

from ..config import HierarchyConfig
from .cache import SetAssociativeCache

__all__ = ["AccessLevel", "CacheHierarchy"]


class AccessLevel(enum.Enum):
    """Where a data access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    MEMORY = "memory"


class CacheHierarchy:
    """L1D + L2 per core, one shared inclusive LLC."""

    def __init__(
        self,
        config: HierarchyConfig,
        cores: int,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self.cores = cores
        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1, rng=rng) for _ in range(cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l2, rng=rng) for _ in range(cores)
        ]
        self.llc = SetAssociativeCache(config.llc, rng=rng)
        # line -> set of cores that may hold it privately (for inclusivity).
        # Maintained as a superset: cores are added on every private fill
        # and the entry is dropped when the line leaves the LLC, so a line
        # with no entry has no private copies anywhere.
        self._private_holders: Dict[int, Set[int]] = {}

    def access(self, core: int, paddr: int) -> AccessLevel:
        """Perform a data access from ``core``; return the level that hit.

        On a miss the line is filled into LLC, L2 and L1 (inclusive fill).
        LLC evictions back-invalidate private copies on every holding core.
        """
        l1 = self.l1[core]
        if l1.probe(paddr):
            return AccessLevel.L1
        l2 = self.l2[core]
        if l2.probe(paddr):
            l1.fill(paddr)
            return AccessLevel.L2
        llc = self.llc
        line = llc.line_of(paddr)
        if llc.probe(paddr):
            l2.fill(paddr)
            l1.fill(paddr)
            self._record_holder(line, core)
            return AccessLevel.LLC

        # Full miss: fill every level, honoring inclusivity.
        result = llc.access(paddr)
        if result.evicted is not None:
            self._back_invalidate(result.evicted.line_addr)
        l2.fill(paddr)
        l1.fill(paddr)
        self._record_holder(line, core)
        return AccessLevel.MEMORY

    def _record_holder(self, line: int, core: int) -> None:
        """Note that ``core`` just filled ``line`` into its private caches."""
        holders = self._private_holders.get(line)
        if holders is None:
            self._private_holders[line] = {core}
        else:
            holders.add(core)

    def _back_invalidate(self, line_addr: int) -> None:
        """Inclusive LLC eviction: purge the line from its private holders.

        Holder tracking covers every private fill, so a line without a
        recorded holder has no private copies and nothing to do — the
        all-core fallback scan this used to need is gone.
        """
        holders = self._private_holders.pop(line_addr, None)
        if holders:
            l1 = self.l1
            l2 = self.l2
            for core in holders:
                l1[core].invalidate(line_addr)
                l2[core].invalidate(line_addr)

    def flush(self, paddr: int) -> bool:
        """``clflush``: drop the line from every level on every holding core.

        Returns True when the line was present anywhere.
        """
        line = self.llc.line_of(paddr)
        present = self.llc.invalidate(paddr)
        holders = self._private_holders.pop(line, None)
        if holders:
            for core in holders:
                present |= self.l1[core].invalidate(line)
                present |= self.l2[core].invalidate(line)
        return present

    def flush_core(self, core: int, include_l2: bool = False) -> None:
        """Drop every line from ``core``'s private L1 (and optionally L2).

        Models context-switch/AEX pollution: the SSA writeback and the
        incoming context evict the previous occupant's private working set.
        Holder bookkeeping stays a superset (documented above), so the
        inclusive-LLC invariants are untouched.
        """
        self.l1[core].clear()
        if include_l2:
            self.l2[core].clear()

    def holder_map(self) -> Dict[int, Set[int]]:
        """Copy of the line -> private-holder-cores map (checkers, tests).

        The map is a documented *superset*: a listed core may have since
        lost its copy, but a line absent from the map has no private copies
        anywhere.
        """
        return {line: set(cores) for line, cores in self._private_holders.items()}

    def export_state(self) -> dict:
        """JSON-safe snapshot of every cache level plus the holder map."""
        return {
            "l1": [cache.export_state() for cache in self.l1],
            "l2": [cache.export_state() for cache in self.l2],
            "llc": self.llc.export_state(),
            "holders": {
                str(line): sorted(cores)
                for line, cores in self._private_holders.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`export_state` (same config)."""
        for cache, payload in zip(self.l1, state["l1"]):
            cache.restore_state(payload)
        for cache, payload in zip(self.l2, state["l2"]):
            cache.restore_state(payload)
        self.llc.restore_state(state["llc"])
        self._private_holders = {
            int(line): {int(core) for core in cores}
            for line, cores in state["holders"].items()
        }

    def latency_of(self, level: AccessLevel) -> int:
        """Hit latency in cycles for a level satisfied on-chip.

        ``AccessLevel.MEMORY`` has no fixed latency here — the machine adds
        uncore + DRAM (+ MEE) costs — so asking for it is an error.
        """
        if level is AccessLevel.L1:
            return self.config.l1.hit_cycles
        if level is AccessLevel.L2:
            return self.config.l2.hit_cycles
        if level is AccessLevel.LLC:
            return self.config.llc.hit_cycles
        raise ValueError("memory accesses are priced by the machine model")
